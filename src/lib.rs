//! # stash — reproduction of the ICDCS 2023 paper
//! *"Stash: A Comprehensive Stall-Centric Characterization of Public
//! Cloud VMs for Distributed Deep Learning"*
//!
//! This facade re-exports the whole workspace:
//!
//! | module | crate | role |
//! |--------|-------|------|
//! | [`simkit`] | `stash-simkit` | deterministic discrete-event engine |
//! | [`flowsim`] | `stash-flowsim` | max-min fair flow-level links |
//! | [`hwtopo`] | `stash-hwtopo` | GPUs, interconnects, AWS catalog |
//! | [`dnn`] | `stash-dnn` | models, the Table II zoo, datasets |
//! | [`gpucompute`] | `stash-gpucompute` | roofline timing + memory |
//! | [`datapipe`] | `stash-datapipe` | disk/cache/CPU input pipeline |
//! | [`collectives`] | `stash-collectives` | bucketing + all-reduce |
//! | [`ddl`] | `stash-ddl` | the DDP training engine |
//! | [`core`] | `stash-core` | **the Stash profiler** |
//! | [`trace`] | `stash-trace` | span tracing, Chrome export, metrics |
//! | [`faults`] | `stash-faults` | deterministic fault-injection plans |
//! | [`telemetry`] | `stash-telemetry` | simulator self-telemetry + flight recorder |
//! | [`store`] | `stash-store` | checksummed result store, I/O fault injection, retry |
//!
//! # Quickstart
//!
//! ```
//! use stash::prelude::*;
//!
//! let stash = Stash::new(zoo::resnet18())
//!     .with_batch(32)
//!     .with_sampled_iterations(3)
//!     .with_epoch_samples(10_000);
//! let report = stash.profile(&ClusterSpec::single(p3_16xlarge()))?;
//! println!("{report}");
//! # Ok::<(), stash::core::error::ProfileError>(())
//! ```

#![warn(missing_docs)]

pub use stash_collectives as collectives;
pub use stash_core as core;
pub use stash_datapipe as datapipe;
pub use stash_ddl as ddl;
pub use stash_dnn as dnn;
pub use stash_faults as faults;
pub use stash_flowsim as flowsim;
pub use stash_gpucompute as gpucompute;
pub use stash_hwtopo as hwtopo;
pub use stash_simkit as simkit;
pub use stash_store as store;
pub use stash_telemetry as telemetry;
pub use stash_trace as trace;

/// One-stop import of the public API.
pub mod prelude {
    pub use stash_collectives::prelude::*;
    pub use stash_core::prelude::*;
    pub use stash_datapipe::prelude::*;
    pub use stash_ddl::prelude::*;
    pub use stash_dnn::prelude::*;
    pub use stash_faults::prelude::*;
    pub use stash_flowsim::prelude::*;
    pub use stash_gpucompute::prelude::*;
    pub use stash_hwtopo::prelude::*;
    pub use stash_simkit::prelude::*;
    pub use stash_store::prelude::*;
    pub use stash_trace::prelude::*;
}
