//! `stash` — the command-line profiler.
//!
//! ```text
//! stash catalog                          list the AWS instance catalog
//! stash models                           list the model zoo
//! stash profile <model> <cluster> [-b N] run the 5-step methodology
//! stash advise <model> [-b N] [--cost]   rank all candidate clusters
//! stash probe <instance>                 per-GPU PCIe bandwidth probe
//! stash trace <instance> <model>         traced epoch + Chrome trace JSON
//!             [--out PATH] [-b N]        (either argument order works)
//! stash report <instance> <model>        critical-path stall report:
//!             [--out PATH] [-b N]        self-contained HTML + JSON
//! stash diff <baseline.json> <cur.json>  flag per-category stall
//!             [--threshold FRAC]         regressions (non-zero exit)
//! ```
//!
//! Cluster syntax matches the paper: `p3.16xlarge` or `p3.8xlarge*2`.

use std::process::ExitCode;

use stash::prelude::*;

fn parse_cluster(spec: &str) -> Result<ClusterSpec, String> {
    ClusterSpec::parse(spec).map_err(|e| {
        format!(
            "{e} (known instances: {})",
            catalog()
                .iter()
                .map(|i| i.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        )
    })
}

fn parse_batch(args: &[String]) -> u64 {
    args.iter()
        .position(|a| a == "-b" || a == "--batch")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

fn stash_for(model: Model, batch: u64) -> Stash {
    let dataset = if model.name.starts_with("BERT") {
        DatasetSpec::squad2()
    } else {
        DatasetSpec::imagenet1k()
    };
    Stash::new(model).with_batch(batch).with_dataset(dataset)
}

fn cmd_catalog() -> ExitCode {
    println!(
        "{:<13} {:>10} {:>6} {:<14} {:>9} {:>8}",
        "instance", "gpus", "vcpus", "interconnect", "net_gbps", "$/hr"
    );
    for i in catalog() {
        println!(
            "{:<13} {:>10} {:>6} {:<14} {:>9} {:>8.2}",
            i.name,
            format!("{}x{}", i.gpu_count, i.gpu.label()),
            i.vcpus,
            i.interconnect.label(),
            i.network_gbps,
            i.price_per_hour
        );
    }
    ExitCode::SUCCESS
}

fn cmd_models() -> ExitCode {
    println!(
        "{:<14} {:>12} {:>8} {:>12}",
        "model", "gradients_M", "layers", "sync_points"
    );
    for (m, _) in zoo::all_models() {
        println!(
            "{:<14} {:>12.2} {:>8} {:>12}",
            m.name,
            m.param_count() as f64 / 1e6,
            m.layer_count(),
            m.trainable_layer_count()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_profile(args: &[String]) -> ExitCode {
    let (Some(model_name), Some(cluster_spec)) = (args.first(), args.get(1)) else {
        eprintln!("usage: stash profile <model> <cluster> [-b batch]");
        return ExitCode::FAILURE;
    };
    let Some(model) = zoo::by_name(model_name) else {
        eprintln!("unknown model '{model_name}' (try `stash models`)");
        return ExitCode::FAILURE;
    };
    let cluster = match parse_cluster(cluster_spec) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match stash_for(model, parse_batch(args)).profile(&cluster) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("profiling failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_advise(args: &[String]) -> ExitCode {
    let Some(model_name) = args.first() else {
        eprintln!("usage: stash advise <model> [-b batch] [--cost|--time]");
        return ExitCode::FAILURE;
    };
    let Some(model) = zoo::by_name(model_name) else {
        eprintln!("unknown model '{model_name}' (try `stash models`)");
        return ExitCode::FAILURE;
    };
    let objective = if args.iter().any(|a| a == "--time") {
        Objective::Time
    } else {
        Objective::Cost
    };
    let stash = stash_for(model, parse_batch(args));
    match recommend(&stash, &default_candidates(), objective) {
        Ok(advice) => {
            println!("{:<16} {:>12} {:>10}", "cluster", "epoch", "cost $");
            for r in &advice.ranked {
                println!(
                    "{:<16} {:>12} {:>10.2}",
                    r.cluster_name,
                    r.cost.epoch_time.to_string(),
                    r.cost.epoch_cost
                );
            }
            for s in &advice.skipped {
                println!("{:<16} skipped: {}", s.cluster_name, s.reason);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("advisor failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_probe(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        eprintln!("usage: stash probe <instance>");
        return ExitCode::FAILURE;
    };
    let Some(inst) = by_name(name) else {
        eprintln!("unknown instance '{name}'");
        return ExitCode::FAILURE;
    };
    let mut net = FlowNet::new();
    let topo = Topology::build(&ClusterSpec::single(inst), &mut net);
    let rates = topo.pcie_bandwidth_probe(&net, 0);
    println!(
        "per-GPU PCIe bandwidth with {} GPUs probing concurrently:",
        rates.len()
    );
    for (g, r) in rates.iter().enumerate() {
        println!("  gpu{g}: {:.2} GB/s", r / 1e9);
    }
    ExitCode::SUCCESS
}

fn cmd_trace(args: &[String]) -> ExitCode {
    use std::cell::RefCell;
    use std::rc::Rc;

    let (Some(first), Some(second)) = (args.first(), args.get(1)) else {
        eprintln!("usage: stash trace <instance> <model> [--out PATH] [-b batch]");
        return ExitCode::FAILURE;
    };
    // Accept either argument order: `trace p3.2xlarge resnet50` (the
    // paper's instance-first habit) or `trace resnet50 p3.8xlarge*2`.
    let (model_name, cluster_spec) = if zoo::by_name(first).is_some() {
        (first, second)
    } else {
        (second, first)
    };
    let Some(model) = zoo::by_name(model_name) else {
        eprintln!("unknown model '{model_name}' (try `stash models`)");
        return ExitCode::FAILURE;
    };
    let cluster = match parse_cluster(cluster_spec) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out" || a == "-o")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            format!(
                "results/trace_{}_{}.json",
                model_name.to_lowercase(),
                cluster_spec.replace('*', "x")
            )
        });

    let batch = parse_batch(args);
    // Real warm-cache data so the trace shows the full pipeline: fetch,
    // prep, H2D upload, compute and all-reduce on their own tracks.
    let dataset = if model.name.starts_with("BERT") {
        DatasetSpec::squad2()
    } else {
        DatasetSpec::imagenet1k()
    };
    let mut cfg = TrainConfig::synthetic(cluster, model, batch, batch * 12);
    cfg.epoch_mode = EpochMode::Sampled { iterations: 12 };
    cfg.record_trace = true;
    cfg.data = DataMode::Real {
        dataset,
        cache: CacheState::Warm,
    };

    let sink = Rc::new(RefCell::new(JsonSink::new()));
    let tracer = shared(Tracer::new(sink.clone()));
    let r = match run_epoch_traced(&cfg, &tracer) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{} | {} | batch {} x {} GPUs — per-iteration timeline",
        r.cluster, r.model, r.per_gpu_batch, r.world
    );
    println!(
        "{:>5} {:>12} {:>12} {:>12}",
        "iter", "total", "data wait", "comm wait"
    );
    for s in &r.trace {
        println!(
            "{:>5} {:>12} {:>12} {:>12}",
            s.iteration,
            s.total.to_string(),
            s.data_wait.to_string(),
            s.comm_wait.to_string()
        );
    }
    println!(
        "host-bus utilisation: {:.1}%  |  throughput: {:.0} samples/s",
        r.host_bus_utilization * 100.0,
        r.throughput
    );

    let events = sink.borrow().events().to_vec();
    let rollup = StallRollup::from_events(&events);
    println!(
        "\nper-category traced span time (raw, {} simulated iterations):",
        r.simulated_iterations
    );
    for (kind, category, total) in rollup.kind_totals() {
        println!("  {:<9} {:<13} {}", kind.label(), category.label(), total);
    }
    print!("\n{}", stash::trace::metrics::render_rollup(&rollup, None));

    let json = stash::trace::chrome::export(&events);
    let text = serde_json::to_string_pretty(&json).expect("serialize trace");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&out_path, &text) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    match stash::trace::chrome::validate(&text) {
        Ok(stats) => {
            println!(
                "\ntrace validated: {} spans / {} instants / {} counters on {} tracks (max depth {})",
                stats.spans, stats.instants, stats.counters, stats.tracks, stats.max_depth
            );
            println!("chrome trace written to {out_path} (open in chrome://tracing or Perfetto)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("exported trace failed validation: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Resolves `--out BASE` (or the default) into `(html, json)` paths:
/// an explicit `.html`/`.json` extension names one file and derives the
/// sibling; anything else is treated as a base stem.
fn report_paths(base: &str) -> (String, String) {
    if let Some(stem) = base.strip_suffix(".html") {
        (base.to_string(), format!("{stem}.json"))
    } else if let Some(stem) = base.strip_suffix(".json") {
        (format!("{stem}.html"), base.to_string())
    } else {
        (format!("{base}.html"), format!("{base}.json"))
    }
}

fn write_creating_dirs(path: &str, text: &str) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Runs one traced window of `cfg` and returns the epoch report plus the
/// rank-0 critical-path decomposition of the raw trace.
fn traced_critical_path(cfg: &TrainConfig) -> Result<(EpochReport, CriticalPath), String> {
    use std::cell::RefCell;
    use std::rc::Rc;

    let sink = Rc::new(RefCell::new(JsonSink::new()));
    let tracer = shared(Tracer::new(sink.clone()));
    let r = run_epoch_traced(cfg, &tracer).map_err(|e| e.to_string())?;
    let events = sink.borrow().events().to_vec();
    let path = CriticalPath::from_events(&events, 0, Track::gpu(0, 0));
    Ok((r, path))
}

fn cmd_report(args: &[String]) -> ExitCode {
    use stash::trace::report::BlameRow;

    let (Some(first), Some(second)) = (args.first(), args.get(1)) else {
        eprintln!("usage: stash report <instance> <model> [--out PATH] [-b batch]");
        return ExitCode::FAILURE;
    };
    // Either argument order, like `stash trace`.
    let (model_name, cluster_spec) = if zoo::by_name(first).is_some() {
        (first, second)
    } else {
        (second, first)
    };
    let Some(model) = zoo::by_name(model_name) else {
        eprintln!("unknown model '{model_name}' (try `stash models`)");
        return ExitCode::FAILURE;
    };
    let cluster = match parse_cluster(cluster_spec) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let out_base = args
        .iter()
        .position(|a| a == "--out" || a == "-o")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            format!(
                "results/report_{}_{}",
                model_name.to_lowercase(),
                cluster_spec.replace('*', "x")
            )
        });
    let (html_path, json_path) = report_paths(&out_base);

    let batch = parse_batch(args);
    let dataset = if model.name.starts_with("BERT") {
        DatasetSpec::squad2()
    } else {
        DatasetSpec::imagenet1k()
    };
    let mut cfg = TrainConfig::synthetic(cluster.clone(), model, batch, batch * 12);
    cfg.epoch_mode = EpochMode::Sampled { iterations: 12 };
    cfg.record_trace = true;
    cfg.data = DataMode::Real {
        dataset,
        cache: CacheState::Warm,
    };

    let (r, path) = match traced_critical_path(&cfg) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("report failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let factor = r.iterations as f64 / r.simulated_iterations as f64;

    // The critical path must balance the engine's own accounting exactly:
    // the raw per-category sums, extrapolated with the same mul_f64 the
    // report used, land on the EpochReport fields to the nanosecond.
    let raw = |cats: &[PathCategory]| {
        SimDuration::from_nanos(cats.iter().map(|&c| path.total_ns(c)).sum::<u64>())
    };
    let checks = [
        (
            "compute",
            raw(&[PathCategory::Compute, PathCategory::Overlap]),
            r.compute_time,
        ),
        (
            "data-wait",
            raw(&[PathCategory::Prep, PathCategory::Fetch]),
            r.data_wait,
        ),
        (
            "comm-wait",
            raw(&[PathCategory::Interconnect, PathCategory::Network]),
            r.comm_wait,
        ),
    ];
    println!(
        "{} | {} | batch {} x {} GPUs — critical-path reconciliation",
        r.cluster, r.model, r.per_gpu_batch, r.world
    );
    for (what, traced, engine) in checks {
        let scaled = traced.mul_f64(factor);
        println!("  {what:<9} trace {scaled:>12}  engine {engine:>12}");
        if scaled != engine {
            eprintln!("critical path does not reconcile with the engine's {what} accounting");
            return ExitCode::FAILURE;
        }
    }

    let mut report = InsightReport::from_path(&r.cluster, &r.model, r.world, factor, &path);
    report.epoch_ns = r.epoch_time.as_nanos();
    report.engine_compute_ns = r.compute_time.as_nanos();
    report.engine_data_wait_ns = r.data_wait.as_nanos();
    report.engine_comm_wait_ns = r.comm_wait.as_nanos();
    report.blame = path
        .top_blamed(10)
        .into_iter()
        .map(|b| BlameRow {
            name: b.name.to_string(),
            arg: b.arg,
            category: b.category.label().to_string(),
            ns: b.contribution_ns,
        })
        .collect();

    // What-if table: every resource 2x faster, each cross-checked by
    // actually re-simulating on rescaled hardware.
    println!("\nwhat-if (2x faster), projected vs re-simulated window:");
    for res in WhatIfResource::ALL {
        let projected = project(&path, res, 2.0);
        let hw = Resource::from_label(res.label()).expect("resource labels are shared");
        let mut cfg2 = cfg.clone();
        cfg2.cluster = cluster.scaled(hw, 2.0);
        let resim = match traced_critical_path(&cfg2) {
            Ok((_, p2)) => Some(p2.wall_ns),
            Err(e) => {
                eprintln!("  {:<15} re-simulation failed: {e}", res.label());
                None
            }
        };
        if let Some(truth) = resim {
            let err = (projected as f64 - truth as f64).abs() / truth.max(1) as f64;
            let flag = if err > PROJECTION_TOLERANCE {
                "  (!) outside tolerance"
            } else {
                ""
            };
            println!(
                "  {:<15} projected {:>14} ns   re-sim {:>14} ns   err {:>5.1}%{flag}",
                res.label(),
                projected,
                truth,
                err * 100.0
            );
        }
        report.whatif.push(stash::trace::report::WhatIfRow {
            resource: res.label().to_string(),
            factor: 2.0,
            projected_wall_ns: projected,
            resim_wall_ns: resim,
        });
    }

    let json_text = serde_json::to_string_pretty(&report.to_json()).expect("serialize report");
    for (path, text) in [(&json_path, &json_text), (&html_path, &report.to_html())] {
        if let Err(e) = write_creating_dirs(path, text) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "\nreport written to {html_path} (open in any browser) and {json_path} (for `stash diff`)"
    );
    ExitCode::SUCCESS
}

fn cmd_diff(args: &[String]) -> ExitCode {
    use stash::trace::report::{diff, InsightReport, DEFAULT_DIFF_THRESHOLD};

    let (Some(base_path), Some(cur_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: stash diff <baseline.json> <current.json> [--threshold FRAC]");
        return ExitCode::FAILURE;
    };
    let threshold = args
        .iter()
        .position(|a| a == "--threshold" || a == "-t")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_DIFF_THRESHOLD);
    let load = |path: &str| -> Result<InsightReport, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let doc = serde_json::from_str(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))?;
        InsightReport::from_json(&doc).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, current) = match (load(base_path), load(cur_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let regs = diff(&baseline, &current, threshold);
    if regs.is_empty() {
        println!(
            "no stall regressions: {} / {} vs {} / {} within {:.0}%",
            baseline.cluster,
            baseline.model,
            current.cluster,
            current.model,
            threshold * 100.0
        );
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "{} stall regression(s) beyond {:.0}%:",
        regs.len(),
        threshold * 100.0
    );
    for reg in &regs {
        eprintln!(
            "  {:<13} {:>14} ns -> {:>14} ns  ({:.2}x)",
            reg.category, reg.baseline_ns, reg.current_ns, reg.ratio
        );
    }
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("catalog") => cmd_catalog(),
        Some("models") => cmd_models(),
        Some("profile") => cmd_profile(&args[1..]),
        Some("advise") => cmd_advise(&args[1..]),
        Some("probe") => cmd_probe(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        _ => {
            eprintln!(
                "stash — DDL stall profiler (ICDCS'23 reproduction)\n\n\
                 usage:\n  stash catalog\n  stash models\n  \
                 stash profile <model> <cluster> [-b batch]\n  \
                 stash advise <model> [-b batch] [--cost|--time]\n  \
                 stash probe <instance>\n  \
                 stash trace <instance> <model> [--out PATH] [-b batch]\n  \
                 stash report <instance> <model> [--out PATH] [-b batch]\n  \
                 stash diff <baseline.json> <current.json> [--threshold FRAC]\n\n\
                 clusters: p3.16xlarge, p3.8xlarge*2, ..."
            );
            ExitCode::FAILURE
        }
    }
}
