//! `stash` — the command-line profiler.
//!
//! ```text
//! stash catalog                          list the AWS instance catalog
//! stash models                           list the model zoo
//! stash profile <model> <cluster> [-b N] run the 5-step methodology
//! stash advise <model> [-b N] [--cost]   rank all candidate clusters
//! stash probe <instance>                 per-GPU PCIe bandwidth probe
//! stash trace <instance> <model>         traced epoch + Chrome trace JSON
//!             [--out PATH] [-b N]        (either argument order works)
//! ```
//!
//! Cluster syntax matches the paper: `p3.16xlarge` or `p3.8xlarge*2`.

use std::process::ExitCode;

use stash::prelude::*;

fn parse_cluster(spec: &str) -> Result<ClusterSpec, String> {
    ClusterSpec::parse(spec).map_err(|e| {
        format!(
            "{e} (known instances: {})",
            catalog().iter().map(|i| i.name.as_str()).collect::<Vec<_>>().join(", ")
        )
    })
}

fn parse_batch(args: &[String]) -> u64 {
    args.iter()
        .position(|a| a == "-b" || a == "--batch")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

fn stash_for(model: Model, batch: u64) -> Stash {
    let dataset = if model.name.starts_with("BERT") {
        DatasetSpec::squad2()
    } else {
        DatasetSpec::imagenet1k()
    };
    Stash::new(model).with_batch(batch).with_dataset(dataset)
}

fn cmd_catalog() -> ExitCode {
    println!(
        "{:<13} {:>10} {:>6} {:<14} {:>9} {:>8}",
        "instance", "gpus", "vcpus", "interconnect", "net_gbps", "$/hr"
    );
    for i in catalog() {
        println!(
            "{:<13} {:>10} {:>6} {:<14} {:>9} {:>8.2}",
            i.name,
            format!("{}x{}", i.gpu_count, i.gpu.label()),
            i.vcpus,
            i.interconnect.label(),
            i.network_gbps,
            i.price_per_hour
        );
    }
    ExitCode::SUCCESS
}

fn cmd_models() -> ExitCode {
    println!("{:<14} {:>12} {:>8} {:>12}", "model", "gradients_M", "layers", "sync_points");
    for (m, _) in zoo::all_models() {
        println!(
            "{:<14} {:>12.2} {:>8} {:>12}",
            m.name,
            m.param_count() as f64 / 1e6,
            m.layer_count(),
            m.trainable_layer_count()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_profile(args: &[String]) -> ExitCode {
    let (Some(model_name), Some(cluster_spec)) = (args.first(), args.get(1)) else {
        eprintln!("usage: stash profile <model> <cluster> [-b batch]");
        return ExitCode::FAILURE;
    };
    let Some(model) = zoo::by_name(model_name) else {
        eprintln!("unknown model '{model_name}' (try `stash models`)");
        return ExitCode::FAILURE;
    };
    let cluster = match parse_cluster(cluster_spec) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match stash_for(model, parse_batch(args)).profile(&cluster) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("profiling failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_advise(args: &[String]) -> ExitCode {
    let Some(model_name) = args.first() else {
        eprintln!("usage: stash advise <model> [-b batch] [--cost|--time]");
        return ExitCode::FAILURE;
    };
    let Some(model) = zoo::by_name(model_name) else {
        eprintln!("unknown model '{model_name}' (try `stash models`)");
        return ExitCode::FAILURE;
    };
    let objective = if args.iter().any(|a| a == "--time") {
        Objective::Time
    } else {
        Objective::Cost
    };
    let stash = stash_for(model, parse_batch(args));
    match recommend(&stash, &default_candidates(), objective) {
        Ok(advice) => {
            println!("{:<16} {:>12} {:>10}", "cluster", "epoch", "cost $");
            for r in &advice.ranked {
                println!(
                    "{:<16} {:>12} {:>10.2}",
                    r.cluster_name,
                    r.cost.epoch_time.to_string(),
                    r.cost.epoch_cost
                );
            }
            for s in &advice.skipped {
                println!("{:<16} skipped: {}", s.cluster_name, s.reason);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("advisor failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_probe(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        eprintln!("usage: stash probe <instance>");
        return ExitCode::FAILURE;
    };
    let Some(inst) = by_name(name) else {
        eprintln!("unknown instance '{name}'");
        return ExitCode::FAILURE;
    };
    let mut net = FlowNet::new();
    let topo = Topology::build(&ClusterSpec::single(inst), &mut net);
    let rates = topo.pcie_bandwidth_probe(&net, 0);
    println!("per-GPU PCIe bandwidth with {} GPUs probing concurrently:", rates.len());
    for (g, r) in rates.iter().enumerate() {
        println!("  gpu{g}: {:.2} GB/s", r / 1e9);
    }
    ExitCode::SUCCESS
}

fn cmd_trace(args: &[String]) -> ExitCode {
    use std::cell::RefCell;
    use std::rc::Rc;

    let (Some(first), Some(second)) = (args.first(), args.get(1)) else {
        eprintln!("usage: stash trace <instance> <model> [--out PATH] [-b batch]");
        return ExitCode::FAILURE;
    };
    // Accept either argument order: `trace p3.2xlarge resnet50` (the
    // paper's instance-first habit) or `trace resnet50 p3.8xlarge*2`.
    let (model_name, cluster_spec) = if zoo::by_name(first).is_some() {
        (first, second)
    } else {
        (second, first)
    };
    let Some(model) = zoo::by_name(model_name) else {
        eprintln!("unknown model '{model_name}' (try `stash models`)");
        return ExitCode::FAILURE;
    };
    let cluster = match parse_cluster(cluster_spec) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out" || a == "-o")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            format!(
                "results/trace_{}_{}.json",
                model_name.to_lowercase(),
                cluster_spec.replace('*', "x")
            )
        });

    let batch = parse_batch(args);
    // Real warm-cache data so the trace shows the full pipeline: fetch,
    // prep, H2D upload, compute and all-reduce on their own tracks.
    let dataset = if model.name.starts_with("BERT") {
        DatasetSpec::squad2()
    } else {
        DatasetSpec::imagenet1k()
    };
    let mut cfg = TrainConfig::synthetic(cluster, model, batch, batch * 12);
    cfg.epoch_mode = EpochMode::Sampled { iterations: 12 };
    cfg.record_trace = true;
    cfg.data = DataMode::Real { dataset, cache: CacheState::Warm };

    let sink = Rc::new(RefCell::new(JsonSink::new()));
    let tracer = shared(Tracer::new(sink.clone()));
    let r = match run_epoch_traced(&cfg, &tracer) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{} | {} | batch {} x {} GPUs — per-iteration timeline",
        r.cluster, r.model, r.per_gpu_batch, r.world
    );
    println!("{:>5} {:>12} {:>12} {:>12}", "iter", "total", "data wait", "comm wait");
    for s in &r.trace {
        println!(
            "{:>5} {:>12} {:>12} {:>12}",
            s.iteration,
            s.total.to_string(),
            s.data_wait.to_string(),
            s.comm_wait.to_string()
        );
    }
    println!(
        "host-bus utilisation: {:.1}%  |  throughput: {:.0} samples/s",
        r.host_bus_utilization * 100.0,
        r.throughput
    );

    let events = sink.borrow().events().to_vec();
    let rollup = StallRollup::from_events(&events);
    println!("\nper-category traced span time (raw, {} simulated iterations):", r.simulated_iterations);
    for (kind, category, total) in rollup.kind_totals() {
        println!("  {:<9} {:<13} {}", kind.label(), category.label(), total);
    }
    print!("\n{}", stash::trace::metrics::render_rollup(&rollup, None));

    let json = stash::trace::chrome::export(&events);
    let text = serde_json::to_string_pretty(&json).expect("serialize trace");
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&out_path, &text) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    match stash::trace::chrome::validate(&text) {
        Ok(stats) => {
            println!(
                "\ntrace validated: {} spans / {} instants / {} counters on {} tracks (max depth {})",
                stats.spans, stats.instants, stats.counters, stats.tracks, stats.max_depth
            );
            println!("chrome trace written to {out_path} (open in chrome://tracing or Perfetto)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("exported trace failed validation: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("catalog") => cmd_catalog(),
        Some("models") => cmd_models(),
        Some("profile") => cmd_profile(&args[1..]),
        Some("advise") => cmd_advise(&args[1..]),
        Some("probe") => cmd_probe(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        _ => {
            eprintln!(
                "stash — DDL stall profiler (ICDCS'23 reproduction)\n\n\
                 usage:\n  stash catalog\n  stash models\n  \
                 stash profile <model> <cluster> [-b batch]\n  \
                 stash advise <model> [-b batch] [--cost|--time]\n  \
                 stash probe <instance>\n  \
                 stash trace <instance> <model> [--out PATH] [-b batch]\n\n\
                 clusters: p3.16xlarge, p3.8xlarge*2, ..."
            );
            ExitCode::FAILURE
        }
    }
}
