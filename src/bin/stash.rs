//! `stash` — the command-line profiler.
//!
//! ```text
//! stash catalog                          list the AWS instance catalog
//! stash models                           list the model zoo
//! stash profile <model> <cluster> [-b N] run the 5-step methodology
//! stash advise <model> [-b N] [--cost]   rank all candidate clusters
//! stash probe <instance>                 per-GPU PCIe bandwidth probe
//! stash trace <instance> <model>         traced epoch + Chrome trace JSON
//!             [--out PATH] [-b N]        (either argument order works)
//! stash report <instance> <model>        critical-path stall report:
//!             [--out PATH] [-b N]        self-contained HTML + JSON
//! stash diff <baseline.json> <cur.json>  flag per-category stall (or, for
//!             [--threshold FRAC]         telemetry docs, simulator-health)
//!                                        regressions (non-zero exit)
//! stash chaos <instance> <model>         faulted epoch under a seeded or
//!             [--seed N] [--plan FILE]   file-provided fault plan, with a
//!             [--out PATH] [-b N]        JSON resilience report
//!             [--flight PATH]            (+ last-events flight recording
//!                                        dumped to PATH on failure)
//! stash perf <cluster|sweep> <model>     simulator self-telemetry for one
//!             [-b N] [--out BASE]        profile or a candidate sweep:
//!             [--format csv]             BASE.json + BASE.prom
//!                                        (+ BASE.csv with --format csv)
//! stash dash <results-dir>               fleet stall dashboard from the
//!             [--out PATH]               stash-series-v1 docs in the dir
//!                                        (simulates a default sweep when
//!                                        the dir has none), validated
//!                                        self-contained HTML
//! stash sweep [--models A,B]             durable characterization sweep:
//!             [--clusters X,Y] [-b N]    consult-first cells against a
//!             [--iters N]                checksummed result store with a
//!             [--store DIR] [--resume]   write-ahead journal; exit 2 when
//!             [--out CSV]                cells failed but the sweep
//!             [--io-fault-plan FILE]     finished (graceful degradation);
//!             [--io-fault-seed N]        deterministic I/O fault
//!             [--retries N]              injection for crash drills
//!             [--deadline-secs S]
//! stash fsck <store-dir> [--repair]      verify every store record's
//!                                        frame; quarantine corrupt ones
//!                                        and (with --repair) rebuild them
//!                                        from the journal, exit 2 when
//!                                        corruption remains
//! ```
//!
//! Cluster syntax matches the paper: `p3.16xlarge` or `p3.8xlarge*2`.

use std::process::ExitCode;

use stash::prelude::*;

/// Edit distance, for "did you mean" hints on unknown names.
fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut cur = Vec::with_capacity(b.len() + 1);
        cur.push(i + 1);
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur.push(sub.min(prev[j + 1] + 1).min(cur[j] + 1));
        }
        prev = cur;
    }
    prev[b.len()]
}

/// The closest candidate within an edit distance of 3, if any.
fn nearest<'a>(name: &str, candidates: impl Iterator<Item = &'a str>) -> Option<&'a str> {
    let name = name.to_lowercase();
    candidates
        .map(|c| (levenshtein(&name, &c.to_lowercase()), c))
        .filter(|&(d, _)| d <= 3)
        .min_by_key(|&(d, _)| d)
        .map(|(_, c)| c)
}

fn lookup_model(name: &str) -> Result<Model, String> {
    if let Some(m) = zoo::by_name(name) {
        return Ok(m);
    }
    let names: Vec<String> = zoo::all_models().into_iter().map(|(m, _)| m.name).collect();
    Err(match nearest(name, names.iter().map(String::as_str)) {
        Some(s) => format!("unknown model '{name}' — did you mean '{s}'? (try `stash models`)"),
        None => format!("unknown model '{name}' (try `stash models`)"),
    })
}

fn parse_cluster(spec: &str) -> Result<ClusterSpec, String> {
    ClusterSpec::parse(spec).map_err(|e| {
        let cat = catalog();
        let inst = spec.split('*').next().unwrap_or(spec);
        let hint = nearest(inst, cat.iter().map(|i| i.name.as_str()))
            .map(|s| format!(" — did you mean '{s}'?"))
            .unwrap_or_default();
        format!(
            "{e}{hint} (known instances: {})",
            cat.iter()
                .map(|i| i.name.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        )
    })
}

fn parse_batch(args: &[String]) -> u64 {
    args.iter()
        .position(|a| a == "-b" || a == "--batch")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(32)
}

fn stash_for(model: Model, batch: u64) -> Stash {
    let dataset = if model.name.starts_with("BERT") {
        DatasetSpec::squad2()
    } else {
        DatasetSpec::imagenet1k()
    };
    Stash::new(model).with_batch(batch).with_dataset(dataset)
}

fn cmd_catalog() -> ExitCode {
    println!(
        "{:<13} {:>10} {:>6} {:<14} {:>9} {:>8}",
        "instance", "gpus", "vcpus", "interconnect", "net_gbps", "$/hr"
    );
    for i in catalog() {
        println!(
            "{:<13} {:>10} {:>6} {:<14} {:>9} {:>8.2}",
            i.name,
            format!("{}x{}", i.gpu_count, i.gpu.label()),
            i.vcpus,
            i.interconnect.label(),
            i.network_gbps,
            i.price_per_hour
        );
    }
    ExitCode::SUCCESS
}

fn cmd_models() -> ExitCode {
    println!(
        "{:<14} {:>12} {:>8} {:>12}",
        "model", "gradients_M", "layers", "sync_points"
    );
    for (m, _) in zoo::all_models() {
        println!(
            "{:<14} {:>12.2} {:>8} {:>12}",
            m.name,
            m.param_count() as f64 / 1e6,
            m.layer_count(),
            m.trainable_layer_count()
        );
    }
    ExitCode::SUCCESS
}

fn cmd_profile(args: &[String]) -> ExitCode {
    let (Some(model_name), Some(cluster_spec)) = (args.first(), args.get(1)) else {
        eprintln!("usage: stash profile <model> <cluster> [-b batch]");
        return ExitCode::FAILURE;
    };
    let model = match lookup_model(model_name) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cluster = match parse_cluster(cluster_spec) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match stash_for(model, parse_batch(args)).profile(&cluster) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("profiling failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_advise(args: &[String]) -> ExitCode {
    let Some(model_name) = args.first() else {
        eprintln!("usage: stash advise <model> [-b batch] [--cost|--time]");
        return ExitCode::FAILURE;
    };
    let model = match lookup_model(model_name) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let objective = if args.iter().any(|a| a == "--time") {
        Objective::Time
    } else {
        Objective::Cost
    };
    let stash = stash_for(model, parse_batch(args));
    match recommend(&stash, &default_candidates(), objective) {
        Ok(advice) => {
            println!("{:<16} {:>12} {:>10}", "cluster", "epoch", "cost $");
            for r in &advice.ranked {
                println!(
                    "{:<16} {:>12} {:>10.2}",
                    r.cluster_name,
                    r.cost.epoch_time.to_string(),
                    r.cost.epoch_cost
                );
            }
            for s in &advice.skipped {
                println!("{:<16} skipped: {}", s.cluster_name, s.reason);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("advisor failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_probe(args: &[String]) -> ExitCode {
    let Some(name) = args.first() else {
        eprintln!("usage: stash probe <instance>");
        return ExitCode::FAILURE;
    };
    let Some(inst) = by_name(name) else {
        let cat = catalog();
        match nearest(name, cat.iter().map(|i| i.name.as_str())) {
            Some(s) => eprintln!("unknown instance '{name}' — did you mean '{s}'?"),
            None => eprintln!("unknown instance '{name}' (try `stash catalog`)"),
        }
        return ExitCode::FAILURE;
    };
    let mut net = FlowNet::new();
    let topo = Topology::build(&ClusterSpec::single(inst), &mut net);
    let rates = topo.pcie_bandwidth_probe(&net, 0);
    println!(
        "per-GPU PCIe bandwidth with {} GPUs probing concurrently:",
        rates.len()
    );
    for (g, r) in rates.iter().enumerate() {
        println!("  gpu{g}: {:.2} GB/s", r / 1e9);
    }
    ExitCode::SUCCESS
}

fn cmd_trace(args: &[String]) -> ExitCode {
    use std::cell::RefCell;
    use std::rc::Rc;

    let (Some(first), Some(second)) = (args.first(), args.get(1)) else {
        eprintln!("usage: stash trace <instance> <model> [--out PATH] [-b batch]");
        return ExitCode::FAILURE;
    };
    // Accept either argument order: `trace p3.2xlarge resnet50` (the
    // paper's instance-first habit) or `trace resnet50 p3.8xlarge*2`.
    let (model_name, cluster_spec) = if zoo::by_name(first).is_some() {
        (first, second)
    } else {
        (second, first)
    };
    let model = match lookup_model(model_name) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cluster = match parse_cluster(cluster_spec) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out" || a == "-o")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            format!(
                "results/trace_{}_{}.json",
                model_name.to_lowercase(),
                cluster_spec.replace('*', "x")
            )
        });

    let batch = parse_batch(args);
    // Real warm-cache data so the trace shows the full pipeline: fetch,
    // prep, H2D upload, compute and all-reduce on their own tracks.
    let dataset = if model.name.starts_with("BERT") {
        DatasetSpec::squad2()
    } else {
        DatasetSpec::imagenet1k()
    };
    let mut cfg = TrainConfig::synthetic(cluster, model, batch, batch * 12);
    cfg.epoch_mode = EpochMode::Sampled { iterations: 12 };
    cfg.record_trace = true;
    cfg.data = DataMode::Real {
        dataset,
        cache: CacheState::Warm,
    };

    let sink = Rc::new(RefCell::new(JsonSink::new()));
    let tracer = shared(Tracer::new(sink.clone()));
    let r = match run_epoch_traced(&cfg, &tracer) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("trace failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "{} | {} | batch {} x {} GPUs — per-iteration timeline",
        r.cluster, r.model, r.per_gpu_batch, r.world
    );
    println!(
        "{:>5} {:>12} {:>12} {:>12}",
        "iter", "total", "data wait", "comm wait"
    );
    for s in &r.trace {
        println!(
            "{:>5} {:>12} {:>12} {:>12}",
            s.iteration,
            s.total.to_string(),
            s.data_wait.to_string(),
            s.comm_wait.to_string()
        );
    }
    println!(
        "host-bus utilisation: {:.1}%  |  throughput: {:.0} samples/s",
        r.host_bus_utilization * 100.0,
        r.throughput
    );

    let events = sink.borrow().events().to_vec();
    let rollup = StallRollup::from_events(&events);
    println!(
        "\nper-category traced span time (raw, {} simulated iterations):",
        r.simulated_iterations
    );
    for (kind, category, total) in rollup.kind_totals() {
        println!("  {:<9} {:<13} {}", kind.label(), category.label(), total);
    }
    print!("\n{}", stash::trace::metrics::render_rollup(&rollup, None));

    let json = stash::trace::chrome::export(&events);
    let text = match serde_json::to_string_pretty(&json) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot serialize trace: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(dir) = std::path::Path::new(&out_path).parent() {
        if !dir.as_os_str().is_empty() {
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = std::fs::write(&out_path, &text) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    match stash::trace::chrome::validate(&text) {
        Ok(stats) => {
            println!(
                "\ntrace validated: {} spans / {} instants / {} counters on {} tracks (max depth {})",
                stats.spans, stats.instants, stats.counters, stats.tracks, stats.max_depth
            );
            println!("chrome trace written to {out_path} (open in chrome://tracing or Perfetto)");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("exported trace failed validation: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Resolves `--out BASE` (or the default) into `(html, json)` paths:
/// an explicit `.html`/`.json` extension names one file and derives the
/// sibling; anything else is treated as a base stem.
fn report_paths(base: &str) -> (String, String) {
    if let Some(stem) = base.strip_suffix(".html") {
        (base.to_string(), format!("{stem}.json"))
    } else if let Some(stem) = base.strip_suffix(".json") {
        (format!("{stem}.html"), base.to_string())
    } else {
        (format!("{base}.html"), format!("{base}.json"))
    }
}

fn write_creating_dirs(path: &str, text: &str) -> Result<(), String> {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))
}

/// Runs one traced window of `cfg` and returns the epoch report plus the
/// rank-0 critical-path decomposition of the raw trace.
fn traced_critical_path(cfg: &TrainConfig) -> Result<(EpochReport, CriticalPath), String> {
    use std::cell::RefCell;
    use std::rc::Rc;

    let sink = Rc::new(RefCell::new(JsonSink::new()));
    let tracer = shared(Tracer::new(sink.clone()));
    let r = run_epoch_traced(cfg, &tracer).map_err(|e| e.to_string())?;
    let events = sink.borrow().events().to_vec();
    let path = CriticalPath::from_events(&events, 0, Track::gpu(0, 0));
    Ok((r, path))
}

/// Runs one iteration-series pass of `cfg` (telemetry switched on for
/// the duration) and returns the run's `stash-series-v1` document, or
/// `None` when the run produced no samples. The series engine is a pure
/// observer, so this never disagrees with a plain run of the same
/// config — the zoo-wide differential test proves bit-identity.
fn run_series(
    cfg: &TrainConfig,
    plan: Option<&FaultPlan>,
) -> Result<Option<serde_json::Value>, String> {
    let was_enabled = stash::telemetry::enabled();
    stash::telemetry::enable();
    let out = run_epoch_series(cfg, &EngineOptions { fast_forward: true }, plan);
    if !was_enabled {
        stash::telemetry::disable();
    }
    let sr = out.map_err(|e| e.to_string())?;
    if sr.series.is_empty() {
        return Ok(None);
    }
    let r = &sr.run.report;
    let meta = stash::telemetry::series::SeriesMeta {
        cluster: r.cluster.clone(),
        model: r.model.clone(),
        world: r.world as u64,
        per_gpu_batch: r.per_gpu_batch,
        iterations: r.iterations,
        simulated_iterations: r.simulated_iterations,
    };
    Ok(Some(sr.series.to_json(&meta)))
}

fn cmd_report(args: &[String]) -> ExitCode {
    use stash::trace::report::BlameRow;

    let (Some(first), Some(second)) = (args.first(), args.get(1)) else {
        eprintln!("usage: stash report <instance> <model> [--out PATH] [-b batch]");
        return ExitCode::FAILURE;
    };
    // Either argument order, like `stash trace`.
    let (model_name, cluster_spec) = if zoo::by_name(first).is_some() {
        (first, second)
    } else {
        (second, first)
    };
    let model = match lookup_model(model_name) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cluster = match parse_cluster(cluster_spec) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let out_base = args
        .iter()
        .position(|a| a == "--out" || a == "-o")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            format!(
                "results/report_{}_{}",
                model_name.to_lowercase(),
                cluster_spec.replace('*', "x")
            )
        });
    let (html_path, json_path) = report_paths(&out_base);

    let batch = parse_batch(args);
    let dataset = if model.name.starts_with("BERT") {
        DatasetSpec::squad2()
    } else {
        DatasetSpec::imagenet1k()
    };
    let mut cfg = TrainConfig::synthetic(cluster.clone(), model, batch, batch * 12);
    cfg.epoch_mode = EpochMode::Sampled { iterations: 12 };
    cfg.record_trace = true;
    cfg.data = DataMode::Real {
        dataset,
        cache: CacheState::Warm,
    };

    let (r, path) = match traced_critical_path(&cfg) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("report failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let factor = r.iterations as f64 / r.simulated_iterations as f64;

    // The critical path must balance the engine's own accounting exactly:
    // the raw per-category sums, extrapolated with the same mul_f64 the
    // report used, land on the EpochReport fields to the nanosecond.
    let raw = |cats: &[PathCategory]| {
        SimDuration::from_nanos(cats.iter().map(|&c| path.total_ns(c)).sum::<u64>())
    };
    let checks = [
        (
            "compute",
            raw(&[PathCategory::Compute, PathCategory::Overlap]),
            r.compute_time,
        ),
        (
            "data-wait",
            raw(&[PathCategory::Prep, PathCategory::Fetch]),
            r.data_wait,
        ),
        (
            "comm-wait",
            raw(&[PathCategory::Interconnect, PathCategory::Network]),
            r.comm_wait,
        ),
    ];
    println!(
        "{} | {} | batch {} x {} GPUs — critical-path reconciliation",
        r.cluster, r.model, r.per_gpu_batch, r.world
    );
    for (what, traced, engine) in checks {
        let scaled = traced.mul_f64(factor);
        println!("  {what:<9} trace {scaled:>12}  engine {engine:>12}");
        if scaled != engine {
            eprintln!("critical path does not reconcile with the engine's {what} accounting");
            return ExitCode::FAILURE;
        }
    }

    let mut report = InsightReport::from_path(&r.cluster, &r.model, r.world, factor, &path);
    report.epoch_ns = r.epoch_time.as_nanos();
    report.engine_compute_ns = r.compute_time.as_nanos();
    report.engine_data_wait_ns = r.data_wait.as_nanos();
    report.engine_comm_wait_ns = r.comm_wait.as_nanos();
    report.series = match run_series(&cfg, None) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("report failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    report.blame = path
        .top_blamed(10)
        .into_iter()
        .map(|b| BlameRow {
            name: b.name.to_string(),
            arg: b.arg,
            category: b.category.label().to_string(),
            ns: b.contribution_ns,
        })
        .collect();

    // What-if table: every resource 2x faster, each cross-checked by
    // actually re-simulating on rescaled hardware.
    println!("\nwhat-if (2x faster), projected vs re-simulated window:");
    for res in WhatIfResource::ALL {
        let projected = project(&path, res, 2.0);
        let resim = match Resource::from_label(res.label()) {
            None => {
                eprintln!(
                    "  {:<15} has no hardware counterpart; skipping re-simulation",
                    res.label()
                );
                None
            }
            Some(hw) => {
                let mut cfg2 = cfg.clone();
                cfg2.cluster = cluster.scaled(hw, 2.0);
                match traced_critical_path(&cfg2) {
                    Ok((_, p2)) => Some(p2.wall_ns),
                    Err(e) => {
                        eprintln!("  {:<15} re-simulation failed: {e}", res.label());
                        None
                    }
                }
            }
        };
        if let Some(truth) = resim {
            let err = (projected as f64 - truth as f64).abs() / truth.max(1) as f64;
            let flag = if err > PROJECTION_TOLERANCE {
                "  (!) outside tolerance"
            } else {
                ""
            };
            println!(
                "  {:<15} projected {:>14} ns   re-sim {:>14} ns   err {:>5.1}%{flag}",
                res.label(),
                projected,
                truth,
                err * 100.0
            );
        }
        report.whatif.push(stash::trace::report::WhatIfRow {
            resource: res.label().to_string(),
            factor: 2.0,
            projected_wall_ns: projected,
            resim_wall_ns: resim,
        });
    }

    let json_text = match serde_json::to_string_pretty(&report.to_json()) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot serialize report: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (path, text) in [(&json_path, &json_text), (&html_path, &report.to_html())] {
        if let Err(e) = write_creating_dirs(path, text) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "\nreport written to {html_path} (open in any browser) and {json_path} (for `stash diff`)"
    );
    ExitCode::SUCCESS
}

fn cmd_diff(args: &[String]) -> ExitCode {
    use stash::trace::report::{diff, InsightReport, DEFAULT_DIFF_THRESHOLD};

    let (Some(base_path), Some(cur_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: stash diff <baseline.json> <current.json> [--threshold FRAC]");
        return ExitCode::FAILURE;
    };
    let threshold = args
        .iter()
        .position(|a| a == "--threshold" || a == "-t")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_DIFF_THRESHOLD);
    let load_doc = |path: &str| -> Result<serde_json::Value, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        serde_json::from_str(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))
    };
    let (base_doc, cur_doc) = match (load_doc(base_path), load_doc(cur_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    // Series documents get the iteration-dynamics gates (CoV, transient
    // spikes); telemetry documents the simulator-health gates; stall
    // reports the per-category workload gates. Mixing kinds is an error.
    let series = (
        stash::telemetry::series::is_series_doc(&base_doc),
        stash::telemetry::series::is_series_doc(&cur_doc),
    );
    match series {
        (true, true) => {
            let d = match stash::telemetry::series::diff_docs(&base_doc, &cur_doc) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            for note in &d.notes {
                println!("  {note}");
            }
            if d.is_clean() {
                println!("no iteration-dynamics regressions: {base_path} vs {cur_path}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{} iteration-dynamics regression(s):", d.regressions.len());
            for reg in &d.regressions {
                eprintln!("  {reg}");
            }
            return ExitCode::FAILURE;
        }
        (true, false) | (false, true) => {
            eprintln!(
                "cannot diff a series document against a non-series document \
                 ({base_path} vs {cur_path})"
            );
            return ExitCode::FAILURE;
        }
        (false, false) => {}
    }

    // Telemetry documents get the simulator-health gates; stall reports
    // get the per-category workload gates. Mixing the two is an error.
    let telemetry = (
        stash::telemetry::diff::is_telemetry_doc(&base_doc),
        stash::telemetry::diff::is_telemetry_doc(&cur_doc),
    );
    match telemetry {
        (true, true) => {
            let d = match stash::telemetry::diff::diff_docs(&base_doc, &cur_doc) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            for note in &d.notes {
                println!("  {note}");
            }
            if d.is_clean() {
                println!("no simulator-health regressions: {base_path} vs {cur_path}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{} simulator-health regression(s):", d.regressions.len());
            for reg in &d.regressions {
                eprintln!("  {reg}");
            }
            return ExitCode::FAILURE;
        }
        (true, false) | (false, true) => {
            eprintln!(
                "cannot diff a telemetry document against a stall report \
                 ({base_path} vs {cur_path})"
            );
            return ExitCode::FAILURE;
        }
        (false, false) => {}
    }

    let load = |path: &str, doc: &serde_json::Value| -> Result<InsightReport, String> {
        InsightReport::from_json(doc).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, current) = match (load(base_path, &base_doc), load(cur_path, &cur_doc)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let regs = diff(&baseline, &current, threshold);
    if regs.is_empty() {
        println!(
            "no stall regressions: {} / {} vs {} / {} within {:.0}%",
            baseline.cluster,
            baseline.model,
            current.cluster,
            current.model,
            threshold * 100.0
        );
        return ExitCode::SUCCESS;
    }
    eprintln!(
        "{} stall regression(s) beyond {:.0}%:",
        regs.len(),
        threshold * 100.0
    );
    for reg in &regs {
        eprintln!(
            "  {:<13} {:>14} ns -> {:>14} ns  ({:.2}x)",
            reg.category, reg.baseline_ns, reg.current_ns, reg.ratio
        );
    }
    ExitCode::FAILURE
}

fn cmd_perf(args: &[String]) -> ExitCode {
    use stash::telemetry::snapshot::Snapshot;

    let (Some(first), Some(second)) = (args.first(), args.get(1)) else {
        eprintln!(
            "usage: stash perf <cluster|sweep> <model> [-b batch] [--out BASE] [--format csv]"
        );
        return ExitCode::FAILURE;
    };
    let format_csv = match args
        .iter()
        .position(|a| a == "--format" || a == "-f")
        .map(|i| args.get(i + 1))
    {
        None => false,
        Some(Some(v)) if v == "csv" => true,
        Some(Some(v)) if v == "table" => false,
        Some(v) => {
            eprintln!(
                "--format expects 'csv' or 'table', got '{}'",
                v.map(String::as_str).unwrap_or("")
            );
            return ExitCode::FAILURE;
        }
    };
    // `perf sweep <model>` aggregates the advisor's default candidates;
    // anything else profiles one cluster. Either argument order works.
    let sweep = first == "sweep" || second == "sweep";
    let model_name = if sweep {
        if first == "sweep" {
            second
        } else {
            first
        }
    } else if zoo::by_name(first).is_some() {
        first
    } else {
        second
    };
    let model = match lookup_model(model_name) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let batch = parse_batch(args);
    let model_slug = model_name.to_lowercase();

    // Everything below runs with self-telemetry on, from a clean
    // registry, against one shared measurement cache (so sweep mode
    // exercises the hit path on repeated reference-instance steps).
    stash::telemetry::enable();
    stash::telemetry::metrics::reset_all();
    let cache = MeasurementCache::new();

    let (scope, subject, default_base, snap) = if sweep {
        let mut fleet = Snapshot::zero();
        let mut prev = Snapshot::take();
        println!(
            "{:<16} {:>12} {:>12} {:>16}",
            "cluster", "events", "recomputes", "solver p99 ns"
        );
        for cluster in default_candidates() {
            let name = cluster.display_name();
            let stash_p = stash_for(model.clone(), batch);
            if let Err(e) = stash_p.profile_cached(&cluster, &cache) {
                println!("{name:<16} skipped: {e}");
                continue;
            }
            let cur = Snapshot::take();
            let delta = cur.since(&prev);
            prev = cur;
            println!(
                "{:<16} {:>12} {:>12} {:>16}",
                name,
                delta.counter("stash_sim_queue_events_popped_total"),
                delta.counter("stash_sim_solver_full_recomputes_total"),
                delta
                    .histogram("stash_sim_solver_recompute_latency_ns")
                    .map_or(0, |h| h.quantile(0.99))
            );
            fleet.merge(&delta);
        }
        (
            "sweep",
            format!("sweep {model_slug}"),
            format!("results/telemetry_sweep_{model_slug}"),
            fleet,
        )
    } else {
        let cluster_spec = if model_name == first { second } else { first };
        let cluster = match parse_cluster(cluster_spec) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = stash_for(model.clone(), batch).profile_cached(&cluster, &cache) {
            eprintln!("profiling failed: {e}");
            return ExitCode::FAILURE;
        }
        (
            "instance",
            format!("{cluster_spec} {model_slug}"),
            format!(
                "results/telemetry_{model_slug}_{}",
                cluster_spec.replace('*', "x")
            ),
            Snapshot::take(),
        )
    };

    if format_csv {
        print!("{}", snap.to_csv());
    } else {
        println!("\nsimulator self-telemetry — {subject}:");
        for &(name, v) in &snap.counters {
            println!("  {name:<46} {v:>14}");
        }
        for &(name, v) in &snap.gauges {
            println!("  {name:<46} {v:>14}");
        }
        for (name, h) in &snap.histograms {
            println!(
                "  {name:<46} n={} p50={} ns p99={} ns",
                h.count,
                h.quantile(0.50),
                h.quantile(0.99)
            );
        }
    }

    let out_base = args
        .iter()
        .position(|a| a == "--out" || a == "-o")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or(default_base);
    let json_path = format!("{out_base}.json");
    let prom_path = format!("{out_base}.prom");
    let json_text = match serde_json::to_string_pretty(&snap.to_json(scope, &subject)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot serialize telemetry: {e}");
            return ExitCode::FAILURE;
        }
    };
    let prom_text = snap.render_prom();
    if let Err(e) = stash::telemetry::prom::validate(&prom_text) {
        eprintln!("telemetry exposition failed validation: {e}");
        return ExitCode::FAILURE;
    }
    let mut outputs = vec![
        (json_path.clone(), json_text),
        (prom_path.clone(), prom_text),
    ];
    if format_csv {
        outputs.push((format!("{out_base}.csv"), snap.to_csv()));
    }
    for (path, text) in &outputs {
        if let Err(e) = write_creating_dirs(path, text) {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    let names: Vec<&str> = outputs.iter().map(|(p, _)| p.as_str()).collect();
    println!(
        "\nprom validated — telemetry written to {}",
        names.join(", ")
    );
    ExitCode::SUCCESS
}

fn cmd_chaos(args: &[String]) -> ExitCode {
    use std::cell::RefCell;
    use std::rc::Rc;

    let (Some(first), Some(second)) = (args.first(), args.get(1)) else {
        eprintln!(
            "usage: stash chaos <instance> <model> [--seed N] [--plan FILE] [--out PATH] [--series PATH] [-b batch]"
        );
        return ExitCode::FAILURE;
    };
    // Either argument order, like `stash trace`.
    let (model_name, cluster_spec) = if zoo::by_name(first).is_some() {
        (first, second)
    } else {
        (second, first)
    };
    let model = match lookup_model(model_name) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let cluster = match parse_cluster(cluster_spec) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let seed: u64 = match args
        .iter()
        .position(|a| a == "--seed")
        .and_then(|i| args.get(i + 1))
    {
        Some(v) => match v.parse() {
            Ok(s) => s,
            Err(_) => {
                eprintln!("--seed expects an unsigned integer, got '{v}'");
                return ExitCode::FAILURE;
            }
        },
        None => 42,
    };
    let plan_file = args
        .iter()
        .position(|a| a == "--plan")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let out_path = args
        .iter()
        .position(|a| a == "--out" || a == "-o")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            format!(
                "results/chaos_{}_{}_{}.json",
                model_name.to_lowercase(),
                cluster_spec.replace('*', "x"),
                if plan_file.is_some() {
                    "plan".to_string()
                } else {
                    format!("seed{seed}")
                }
            )
        });

    // Optional flight recorder: keep the tail of the engine's event
    // stream and dump it on failure — typed errors and panics alike —
    // so a broken chaos run leaves behind what the simulator was doing.
    let flight_path = args
        .iter()
        .position(|a| a == "--flight")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let series_path = args
        .iter()
        .position(|a| a == "--series")
        .and_then(|i| args.get(i + 1))
        .cloned();
    if let Some(path) = flight_path.clone() {
        stash::telemetry::flight::flight_enable(stash::telemetry::flight::DEFAULT_CAPACITY);
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if let Some(dump) = stash::telemetry::flight::flight_dump() {
                if write_creating_dirs(&path, &dump).is_ok() {
                    eprintln!("flight recording written to {path}");
                }
            }
            prev(info);
        }));
    }
    let flight_fail = |msg: String| -> ExitCode {
        if let Some(path) = &flight_path {
            if let Some(dump) = stash::telemetry::flight::flight_dump() {
                match write_creating_dirs(path, &dump) {
                    Ok(()) => eprintln!("flight recording written to {path}"),
                    Err(e) => eprintln!("{e}"),
                }
            }
        }
        eprintln!("{msg}");
        ExitCode::FAILURE
    };

    // A full (factor-1) synthetic window: every accumulator is exact, so
    // the trace must corroborate the engine to the nanosecond.
    let batch = parse_batch(args);
    let iters: u64 = 16;
    let mut cfg = TrainConfig::synthetic(cluster.clone(), model, batch, batch * iters);
    cfg.epoch_mode = EpochMode::Full;
    cfg.record_trace = true;

    // Fault-free baseline: the yardstick, and the plan horizon.
    let base = match run_epoch(&cfg) {
        Ok(r) => r,
        Err(e) => return flight_fail(format!("chaos baseline failed: {e}")),
    };

    let (world, nodes) = (cluster.world_size(), cluster.node_count());
    let plan = match &plan_file {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => return flight_fail(format!("cannot read {path}: {e}")),
            };
            match FaultPlan::from_json(&text) {
                Ok(p) => p,
                Err(e) => return flight_fail(format!("{path}: {e}")),
            }
        }
        None => FaultPlan::seeded(seed, world, nodes, base.epoch_time),
    };
    if let Err(e) = plan.validate(world, nodes) {
        return flight_fail(format!("fault plan does not fit {cluster_spec}: {e}"));
    }

    let sink = Rc::new(RefCell::new(JsonSink::new()));
    let tracer = shared(Tracer::new(sink.clone()));
    let run = match run_epoch_faulted_traced(&cfg, &plan, &tracer) {
        Ok(r) => r,
        Err(e) => return flight_fail(format!("chaos run failed: {e}")),
    };
    let r = &run.report;

    // Self-check: the rank-0 trace lane must reconcile with the engine's
    // accounting exactly, recovery and straggler categories included.
    let events = sink.borrow().events().to_vec();
    let path = CriticalPath::from_events(&events, 0, Track::gpu(0, 0));
    let raw = |cats: &[PathCategory]| {
        SimDuration::from_nanos(cats.iter().map(|&c| path.total_ns(c)).sum::<u64>())
    };
    let checks = [
        (
            "compute",
            raw(&[PathCategory::Compute, PathCategory::Overlap]),
            r.compute_time,
        ),
        (
            "data-wait",
            raw(&[PathCategory::Prep, PathCategory::Fetch]),
            r.data_wait,
        ),
        (
            "comm-wait",
            raw(&[PathCategory::Interconnect, PathCategory::Network]),
            r.comm_wait,
        ),
        ("recovery", raw(&[PathCategory::Recovery]), r.recovery_time),
        (
            "straggler",
            raw(&[PathCategory::Straggler]),
            r.straggler_time,
        ),
    ];
    for (what, traced, engine) in checks {
        if traced != engine {
            return flight_fail(format!(
                "chaos self-check failed: traced {what} {traced} != engine {engine}"
            ));
        }
    }

    // Optional iteration series: an un-traced series run of the same
    // faulted config must agree with the traced run bit-for-bit (both
    // instrumentation layers are pure observers), and its downsampled
    // totals must reconcile with the report at integer-ns exactness —
    // the sixth leg of the chaos self-check.
    if let Some(spath) = &series_path {
        let was_enabled = stash::telemetry::enabled();
        stash::telemetry::enable();
        let sr = run_epoch_series(&cfg, &EngineOptions { fast_forward: true }, Some(&plan));
        if !was_enabled {
            stash::telemetry::disable();
        }
        let sr = match sr {
            Ok(sr) => sr,
            Err(e) => return flight_fail(format!("chaos series run failed: {e}")),
        };
        if sr.run != run {
            return flight_fail(
                "chaos self-check failed: series engine disagrees with the traced run".to_string(),
            );
        }
        let t = sr.series.totals();
        let factor = r.iterations as f64 / r.simulated_iterations as f64;
        let series_checks = [
            ("compute", t.compute_ns, r.compute_time),
            ("data-wait", t.data_wait_ns, r.data_wait),
            ("comm-wait", t.comm_wait_ns, r.comm_wait),
            ("recovery", t.recovery_ns, r.recovery_time),
            ("straggler", t.straggler_ns, r.straggler_time),
        ];
        for (what, ns, engine) in series_checks {
            let Ok(ns) = u64::try_from(ns) else {
                return flight_fail(format!("chaos series {what} total is negative ({ns})"));
            };
            if SimDuration::from_nanos(ns).mul_f64(factor) != engine {
                return flight_fail(format!(
                    "chaos self-check failed: series {what} does not reconcile with the engine"
                ));
            }
        }
        let meta = stash::telemetry::series::SeriesMeta {
            cluster: r.cluster.clone(),
            model: r.model.clone(),
            world: r.world as u64,
            per_gpu_batch: r.per_gpu_batch,
            iterations: r.iterations,
            simulated_iterations: r.simulated_iterations,
        };
        let text = match serde_json::to_string_pretty(&sr.series.to_json(&meta)) {
            Ok(t) => t,
            Err(e) => return flight_fail(format!("cannot serialize series: {e}")),
        };
        if let Err(e) = write_creating_dirs(spath, &text) {
            return flight_fail(e);
        }
        println!(
            "  iteration series ({} buckets, {} fault windows) written to {spath}",
            sr.series.samples.len(),
            sr.series.annotations.len()
        );
    }

    let slowdown = r.epoch_time.as_secs_f64() / base.epoch_time.as_secs_f64().max(1e-12);
    println!(
        "{} | {} | batch {} x {} GPUs — chaos run ({})",
        r.cluster,
        r.model,
        r.per_gpu_batch,
        base.world,
        plan_file
            .as_deref()
            .map_or_else(|| format!("seed {seed}"), str::to_string)
    );
    println!(
        "  baseline epoch {:>12}   faulted epoch {:>12}   slowdown {slowdown:.2}x",
        base.epoch_time.to_string(),
        r.epoch_time.to_string()
    );
    println!(
        "  recovery stall {:>12}   straggler excess {:>12}",
        r.recovery_time.to_string(),
        r.straggler_time.to_string()
    );
    println!(
        "  replayed iterations: {}   straggler detections: {}   dead nodes: {:?}",
        run.faults.replayed_iterations,
        run.faults.detections.len(),
        run.faults.dead_nodes
    );
    println!("  per-event blame:");
    for ev in &run.faults.events {
        println!(
            "    {:<18} at {:>12} fired {:<5} blame {:>12}",
            ev.label,
            ev.at.duration_since(SimTime::ZERO).to_string(),
            ev.fired,
            ev.blame.to_string()
        );
    }

    let doc = serde_json::json!({
        "schema": "stash-resilience-v1",
        "cluster": r.cluster,
        "model": r.model,
        "per_gpu_batch": r.per_gpu_batch,
        "seed": plan_file.is_none().then_some(seed),
        "plan": &plan,
        "baseline": serde_json::json!({
            "epoch_ns": base.epoch_time.as_nanos(),
            "throughput": base.throughput,
            "world": base.world,
            "samples": base.samples,
        }),
        "faulted": serde_json::json!({
            "epoch_ns": r.epoch_time.as_nanos(),
            "compute_ns": r.compute_time.as_nanos(),
            "data_wait_ns": r.data_wait.as_nanos(),
            "comm_wait_ns": r.comm_wait.as_nanos(),
            "recovery_ns": r.recovery_time.as_nanos(),
            "straggler_ns": r.straggler_time.as_nanos(),
            "throughput": r.throughput,
            "world": r.world,
            "samples": r.samples,
        }),
        "slowdown": slowdown,
        "goodput_fraction": r.throughput / base.throughput.max(1e-12),
        "faults": &run.faults,
    });
    let text = match serde_json::to_string_pretty(&doc) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot serialize resilience report: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = write_creating_dirs(&out_path, &text) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    println!("\nresilience report written to {out_path}");
    ExitCode::SUCCESS
}

fn cmd_dash(args: &[String]) -> ExitCode {
    use stash::trace::dash::{DashCell, Dashboard};

    let Some(dir) = args.first() else {
        eprintln!("usage: stash dash <results-dir> [--out PATH] [-b batch]");
        return ExitCode::FAILURE;
    };
    let out_path = args
        .iter()
        .position(|a| a == "--out" || a == "-o")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("{dir}/dashboard.html"));

    // A result store is not a series directory: refuse loudly instead of
    // simulating a default sweep into it (which would bury series JSON
    // between the records) or silently skipping its binary files.
    let dir_path = std::path::Path::new(dir);
    if dir_path.join("records").is_dir() || dir_path.join("journal.log").is_file() {
        eprintln!(
            "{dir}: this is a stash result store (records/ + journal.log), not a series \
             results directory — inspect it with `stash fsck {dir}` or point dash at a \
             directory of stash-series-v1 JSON documents"
        );
        return ExitCode::FAILURE;
    }

    // Load every stash-series-v1 document already in the directory
    // (sorted by filename for deterministic cell input order; ordering
    // is then re-normalised by Dashboard::new anyway). Unreadable or
    // non-JSON files are typed errors; valid JSON that is not a series
    // document is skipped with an explicit note.
    let mut cells: Vec<DashCell> = Vec::new();
    if dir_path.is_dir() {
        let entries = match std::fs::read_dir(dir_path) {
            Ok(entries) => entries,
            Err(e) => {
                eprintln!("cannot read directory {dir}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut paths: Vec<std::path::PathBuf> = entries
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "json"))
            .collect();
        paths.sort();
        for path in paths {
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("cannot read {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            let doc = match serde_json::from_str::<serde_json::Value>(&text) {
                Ok(doc) => doc,
                Err(e) => {
                    eprintln!("{}: invalid JSON: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            };
            if !stash::telemetry::series::is_series_doc(&doc) {
                println!("skipped (not a series document): {}", path.display());
                continue;
            }
            match DashCell::from_doc(&doc) {
                Ok(cell) => {
                    println!("loaded series: {}", path.display());
                    cells.push(cell);
                }
                Err(e) => {
                    eprintln!("{}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    // Nothing on disk: simulate the default sweep grid and leave the
    // series documents behind so the next `stash dash` is a pure load.
    if cells.is_empty() {
        println!("no series documents in {dir} — simulating the default sweep");
        let grid_clusters = ["p3.2xlarge", "p3.8xlarge", "p3.8xlarge*2"];
        let grid_models = ["ShuffleNet", "ResNet18", "BERT-Large"];
        for cluster_spec in grid_clusters {
            let cluster = match parse_cluster(cluster_spec) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            for model_name in grid_models {
                let model = match lookup_model(model_name) {
                    Ok(m) => m,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                let batch = if model.name.starts_with("BERT") {
                    4
                } else {
                    32
                };
                let mut cfg = TrainConfig::synthetic(cluster.clone(), model, batch, batch * 64);
                cfg.epoch_mode = EpochMode::Sampled { iterations: 12 };
                let doc = match run_series(&cfg, None) {
                    Ok(Some(doc)) => doc,
                    Ok(None) => {
                        eprintln!("{cluster_spec} {model_name}: empty series");
                        return ExitCode::FAILURE;
                    }
                    Err(e) => {
                        eprintln!("{cluster_spec} {model_name}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let cell = match DashCell::from_doc(&doc) {
                    Ok(c) => c,
                    Err(e) => {
                        eprintln!("{cluster_spec} {model_name}: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let text = match serde_json::to_string_pretty(&doc) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("cannot serialize series: {e}");
                        return ExitCode::FAILURE;
                    }
                };
                let spath = format!(
                    "{dir}/series_{}_{}.json",
                    model_name.to_lowercase(),
                    cluster_spec.replace('*', "x")
                );
                if let Err(e) = write_creating_dirs(&spath, &text) {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
                println!("simulated {cluster_spec} x {model_name} -> {spath}");
                cells.push(cell);
            }
        }
    }

    let dash = Dashboard::new(cells);
    let html = dash.to_html();
    let validated = match Dashboard::validate(&html) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("dashboard failed self-validation: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = write_creating_dirs(&out_path, &html) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    println!(
        "dashboard validated ({validated} cell{}) and written to {out_path}",
        if validated == 1 { "" } else { "s" }
    );
    ExitCode::SUCCESS
}

/// The value following `name`, if the flag is present.
fn flag_val<'a>(args: &'a [String], name: &str) -> Option<&'a String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
}

/// Reconstructs a sweep cell from its journal `plan` descriptor (the
/// JSON written by `cell_descriptor`), so `--resume` and `fsck --repair`
/// can re-run exactly what the interrupted sweep intended.
fn job_from_descriptor(detail: &str) -> Result<ProfileJob, String> {
    let v: serde_json::Value =
        serde_json::from_str(detail).map_err(|e| format!("journal plan is not JSON: {e}"))?;
    match v.get("schema").and_then(serde_json::Value::as_str) {
        Some(s) if s == stash::core::sweep::CELL_SCHEMA => {}
        Some(other) => return Err(format!("unknown journal plan schema '{other}'")),
        None => return Err("journal plan missing schema tag".to_string()),
    }
    let str_field = |k: &str| {
        v.get(k)
            .and_then(serde_json::Value::as_str)
            .ok_or_else(|| format!("journal plan missing '{k}'"))
    };
    let u64_field = |k: &str| {
        v.get(k)
            .and_then(serde_json::Value::as_u64)
            .ok_or_else(|| format!("journal plan missing '{k}'"))
    };
    let cluster = parse_cluster(str_field("cluster")?)?;
    let model = lookup_model(str_field("model")?)?;
    let mut stash_p = stash_for(model, u64_field("per_gpu_batch")?)
        .with_sampled_iterations(u64_field("sampled_iterations")?);
    if let Some(samples) = v.get("epoch_samples").and_then(serde_json::Value::as_u64) {
        stash_p = stash_p.with_epoch_samples(samples);
    }
    let dataset = str_field("dataset")?;
    if stash_p.dataset().name != dataset {
        return Err(format!(
            "journal plan dataset '{dataset}' does not match '{}' derived for the model",
            stash_p.dataset().name
        ));
    }
    Ok(ProfileJob {
        stash: stash_p,
        cluster,
    })
}

/// The record key a quarantine file holds the corpse of, from its
/// `<32 hex>.rec.qN` name.
fn quarantined_record_key(path: &std::path::Path) -> Option<String> {
    let name = path.file_name()?.to_str()?;
    let (stem, _) = name.split_once(".rec")?;
    (stem.len() == 32 && stem.chars().all(|c| c.is_ascii_hexdigit())).then(|| stem.to_string())
}

/// The default sweep grid (matches the dash simulation grid's clusters,
/// with CNN-family models so every cell profiles quickly).
const SWEEP_CLUSTERS: [&str; 3] = ["p3.2xlarge", "p3.8xlarge", "p3.8xlarge*2"];
const SWEEP_MODELS: [&str; 3] = ["ShuffleNet", "ResNet18", "AlexNet"];

fn cmd_sweep(args: &[String]) -> ExitCode {
    let usage = "usage: stash sweep [--models A,B] [--clusters X,Y] [-b batch] [--iters N] \
                 [--store DIR] [--resume] [--out CSV] [--io-fault-plan FILE] \
                 [--io-fault-seed N] [--retries N] [--deadline-secs S]";
    let store_dir = flag_val(args, "--store").cloned();
    let resume = args.iter().any(|a| a == "--resume");
    if resume && store_dir.is_none() {
        eprintln!("--resume requires --store DIR\n{usage}");
        return ExitCode::FAILURE;
    }

    // Sampled iterations per cell. A cell's key covers this (it is part
    // of the descriptor), so records computed at different budgets never
    // collide, and resume replays each cell at its journaled budget.
    let sampled_iterations = match flag_val(args, "--iters") {
        None => 6,
        Some(v) => match v.parse::<u64>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!("--iters wants a positive integer, got '{v}'\n{usage}");
                return ExitCode::FAILURE;
            }
        },
    };

    let mut policy = RetryPolicy::default();
    if let Some(v) = flag_val(args, "--retries") {
        match v.parse::<u32>() {
            Ok(n) if n >= 1 => policy.max_attempts = n,
            _ => {
                eprintln!("--retries wants a positive integer, got '{v}'\n{usage}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(v) = flag_val(args, "--deadline-secs") {
        match v.parse::<u64>() {
            Ok(s) if s >= 1 => policy.deadline_ms = s.saturating_mul(1000),
            _ => {
                eprintln!("--deadline-secs wants a positive integer, got '{v}'\n{usage}");
                return ExitCode::FAILURE;
            }
        }
    }

    // The I/O backend: production StdFs, or deterministic fault
    // injection when a plan (file or seed) is given.
    let fault_plan = match (
        flag_val(args, "--io-fault-plan"),
        flag_val(args, "--io-fault-seed"),
    ) {
        (Some(_), Some(_)) => {
            eprintln!("--io-fault-plan and --io-fault-seed are mutually exclusive\n{usage}");
            return ExitCode::FAILURE;
        }
        (Some(path), None) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("cannot read {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match IoFaultPlan::from_json(&text) {
                Ok(plan) => Some((plan, format!("plan file {path}"))),
                Err(e) => {
                    eprintln!("{path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        (None, Some(seed)) => match seed.parse::<u64>() {
            Ok(seed) => Some((IoFaultPlan::seeded(seed), format!("seed {seed}"))),
            Err(_) => {
                eprintln!("--io-fault-seed wants an integer, got '{seed}'\n{usage}");
                return ExitCode::FAILURE;
            }
        },
        (None, None) => None,
    };
    if fault_plan.is_some() && store_dir.is_none() {
        eprintln!("I/O fault injection only touches store I/O — add --store DIR\n{usage}");
        return ExitCode::FAILURE;
    }

    let store = match &store_dir {
        Some(dir) => {
            let io: Box<dyn StoreIo> = match fault_plan {
                Some((plan, origin)) => {
                    println!(
                        "sweep: injecting {} planned I/O fault(s) ({origin})",
                        plan.faults.len()
                    );
                    Box::new(FaultFs::new(plan))
                }
                None => Box::new(StdFs::new()),
            };
            match ResultStore::open(std::path::Path::new(dir), io) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        None => None,
    };

    // The cell list: on --resume, reconstruct it from the journal's plan
    // lines (what the interrupted sweep intended); otherwise build the
    // flag-selected (or default) cluster x model grid.
    let mut jobs: Vec<ProfileJob> = Vec::new();
    let mut resumed_from_journal = false;
    if resume {
        let Some(store) = &store else {
            unreachable!("--resume checked above")
        };
        let replay = match store.journal().replay(store.io()) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("cannot replay {}: {e}", store.journal().path().display());
                return ExitCode::FAILURE;
            }
        };
        if replay.torn_tail {
            println!(
                "sweep: journal has a torn tail (crash mid-append) — trusting the intact prefix"
            );
        }
        let planned = replay.planned_cells();
        for (key, detail) in &planned {
            match job_from_descriptor(detail) {
                Ok(job) => jobs.push(job),
                Err(e) => {
                    eprintln!("journal plan for cell {key}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        if !jobs.is_empty() {
            resumed_from_journal = true;
            println!("sweep: resuming {} journaled cell(s)", jobs.len());
        } else {
            println!("sweep: journal is empty — running a fresh sweep");
        }
    }
    if !resumed_from_journal {
        let split = |v: Option<&String>, defaults: &[&str]| -> Vec<String> {
            v.map_or_else(
                || defaults.iter().map(|s| (*s).to_string()).collect(),
                |s| {
                    s.split(',')
                        .map(str::trim)
                        .filter(|p| !p.is_empty())
                        .map(String::from)
                        .collect()
                },
            )
        };
        let cluster_specs = split(flag_val(args, "--clusters"), &SWEEP_CLUSTERS);
        let model_names = split(flag_val(args, "--models"), &SWEEP_MODELS);
        if cluster_specs.is_empty() || model_names.is_empty() {
            eprintln!("empty --clusters/--models list\n{usage}");
            return ExitCode::FAILURE;
        }
        let batch = parse_batch(args);
        for cluster_spec in &cluster_specs {
            let cluster = match parse_cluster(cluster_spec) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            };
            for model_name in &model_names {
                let model = match lookup_model(model_name) {
                    Ok(m) => m,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::FAILURE;
                    }
                };
                jobs.push(ProfileJob {
                    stash: stash_for(model, batch)
                        .with_sampled_iterations(sampled_iterations)
                        .with_epoch_samples(20_000),
                    cluster: cluster.clone(),
                });
            }
        }
    }

    stash::telemetry::enable();
    let cache = MeasurementCache::new();
    let outcome = stash::core::sweep::run_sweep(&jobs, store.as_ref(), &policy, &cache);

    println!("{:<16} {:<12} {:>6} status", "cluster", "model", "batch");
    for cell in &outcome.cells {
        println!(
            "{:<16} {:<12} {:>6} {}",
            cell.cluster,
            cell.model,
            cell.per_gpu_batch,
            cell.status.code()
        );
    }
    println!(
        "sweep: {} computed, {} resumed, {} failed",
        outcome.computed(),
        outcome.resumed(),
        outcome.failed()
    );

    let out_path = flag_val(args, "--out").cloned().unwrap_or_else(|| {
        store_dir.as_ref().map_or_else(
            || "results/sweep.csv".to_string(),
            |dir| format!("{dir}/results.csv"),
        )
    });
    if let Err(e) = write_creating_dirs(&out_path, &outcome.results_csv()) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    }
    println!("results written to {out_path}");

    if outcome.failed() > 0 {
        eprintln!(
            "sweep finished with {} failed cell(s) — see the status column in {out_path}",
            outcome.failed()
        );
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

fn cmd_fsck(args: &[String]) -> ExitCode {
    let Some(dir) = args.first().filter(|a| !a.starts_with("--")) else {
        eprintln!("usage: stash fsck <store-dir> [--repair]");
        return ExitCode::FAILURE;
    };
    let repair = args.iter().any(|a| a == "--repair");

    if !std::path::Path::new(dir).is_dir() {
        eprintln!("{dir}: not a directory (fsck wants an existing stash result store)");
        return ExitCode::FAILURE;
    }
    let store = match ResultStore::open(std::path::Path::new(dir), Box::new(StdFs::new())) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match store.fsck() {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "fsck {dir}: {} record(s) scanned, {} ok, {} issue(s)",
        report.scanned,
        report.ok,
        report.issues.len()
    );
    for issue in &report.issues {
        println!("  {issue}");
    }
    // The rebuild worklist: keys quarantined by this scan plus keys a
    // *previous* scan quarantined (their bytes still sit in quarantine/
    // and their record is gone), minus anything that verifies clean now.
    let mut needs_rebuild: std::collections::BTreeSet<String> =
        report.quarantined_keys().into_iter().collect();
    match store.io().list(&store.quarantine_dir()) {
        Ok(files) => {
            for file in files {
                if let Some(key) = quarantined_record_key(&file) {
                    needs_rebuild.insert(key);
                }
            }
        }
        Err(e) => {
            eprintln!("cannot list {}: {e}", store.quarantine_dir().display());
            return ExitCode::FAILURE;
        }
    }
    needs_rebuild.retain(|key| {
        stash::store::parse_key_hex(key).is_none_or(|k| !matches!(store.get(k), Ok(Fetch::Hit(_))))
    });
    if needs_rebuild.is_empty() {
        println!("store verifies clean");
        return ExitCode::SUCCESS;
    }
    if !repair {
        eprintln!(
            "{} corrupt record(s) in quarantine — re-run with --repair to rebuild them \
             from the journal",
            needs_rebuild.len()
        );
        return ExitCode::from(2);
    }

    // Repair: re-run the quarantined cells from their journal plans; the
    // engine is deterministic, so a rebuilt record is byte-identical to
    // the one the corruption destroyed.
    let replay = match store.journal().replay(store.io()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot replay {}: {e}", store.journal().path().display());
            return ExitCode::FAILURE;
        }
    };
    let mut jobs: Vec<ProfileJob> = Vec::new();
    for key in &needs_rebuild {
        let Some(detail) = replay.plan_for(key) else {
            eprintln!("cannot rebuild {key}: no journal plan for it");
            continue;
        };
        match job_from_descriptor(detail) {
            Ok(job) => jobs.push(job),
            Err(e) => eprintln!("cannot rebuild {key}: {e}"),
        }
    }
    let cache = MeasurementCache::new();
    let policy = RetryPolicy::default();
    let outcome = stash::core::sweep::run_sweep(&jobs, Some(&store), &policy, &cache);
    for cell in &outcome.cells {
        match &cell.status {
            CellStatus::Failed(reason) => {
                eprintln!("rebuild of {} failed: {reason}", cell.key);
            }
            _ => println!(
                "rebuilt {} ({} x {}, b{})",
                cell.key, cell.cluster, cell.model, cell.per_gpu_batch
            ),
        }
    }
    // Every quarantined key must now fetch as a verified hit; this loop
    // is the sole arbiter of repair success.
    let mut unrepaired = 0usize;
    for key in &needs_rebuild {
        let Some(parsed) = stash::store::parse_key_hex(key) else {
            eprintln!("rebuild of {key} failed: not a valid record key");
            unrepaired += 1;
            continue;
        };
        match store.get(parsed) {
            Ok(Fetch::Hit(_)) => {}
            Ok(_) => {
                eprintln!("rebuild of {key} did not verify");
                unrepaired += 1;
            }
            Err(e) => {
                eprintln!("{e}");
                unrepaired += 1;
            }
        }
    }
    if unrepaired > 0 {
        eprintln!("{unrepaired} record(s) remain unrepaired");
        return ExitCode::from(2);
    }
    println!("repair complete: store verifies clean");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("catalog") => cmd_catalog(),
        Some("models") => cmd_models(),
        Some("profile") => cmd_profile(&args[1..]),
        Some("advise") => cmd_advise(&args[1..]),
        Some("probe") => cmd_probe(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("diff") => cmd_diff(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("perf") => cmd_perf(&args[1..]),
        Some("dash") => cmd_dash(&args[1..]),
        Some("sweep") => cmd_sweep(&args[1..]),
        Some("fsck") => cmd_fsck(&args[1..]),
        _ => {
            eprintln!(
                "stash — DDL stall profiler (ICDCS'23 reproduction)\n\n\
                 usage:\n  stash catalog\n  stash models\n  \
                 stash profile <model> <cluster> [-b batch]\n  \
                 stash advise <model> [-b batch] [--cost|--time]\n  \
                 stash probe <instance>\n  \
                 stash trace <instance> <model> [--out PATH] [-b batch]\n  \
                 stash report <instance> <model> [--out PATH] [-b batch]\n  \
                 stash diff <baseline.json> <current.json> [--threshold FRAC]\n  \
                 stash chaos <instance> <model> [--seed N] [--plan FILE] [--out PATH] [--flight PATH] [--series PATH] [-b batch]\n  \
                 stash perf <cluster|sweep> <model> [-b batch] [--out BASE] [--format csv]\n  \
                 stash dash <results-dir> [--out PATH]\n  \
                 stash sweep [--models A,B] [--clusters X,Y] [-b batch] [--iters N] [--store DIR] [--resume] [--out CSV] [--io-fault-plan FILE] [--io-fault-seed N] [--retries N] [--deadline-secs S]\n  \
                 stash fsck <store-dir> [--repair]\n\n\
                 clusters: p3.16xlarge, p3.8xlarge*2, ..."
            );
            ExitCode::FAILURE
        }
    }
}
