#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, lint-clean under clippy.
# Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
