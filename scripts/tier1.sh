#!/usr/bin/env bash
# Tier-1 gate: formatting, release build, full test suite, lint-clean
# under clippy, warning-free rustdoc, and CLI smoke tests for the trace,
# report, and diff subcommands.
# Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

# Trace CLI smoke test. The `trace validated` line only prints after the
# written file round-trips through `stash_trace::chrome::validate` — the
# same parser the chrome_golden integration test uses.
smoke_out=$(./target/release/stash trace p3.2xlarge resnet50 --out /tmp/t.json)
grep -q "trace validated" <<<"$smoke_out"

# Report CLI smoke test. The command itself fails unless the critical-path
# decomposition reconciles with the engine accumulators exactly; on top of
# that, the written HTML must carry the rollup totals (the stall-breakdown
# table and the reconciled wall-time total row).
report_out=$(./target/release/stash report p3.2xlarge resnet18 --out /tmp/stash_tier1_report)
grep -q "critical-path reconciliation" <<<"$report_out"
grep -q "Stall breakdown" /tmp/stash_tier1_report.html
wall_ns=$(python3 - <<'PY'
import json
print(json.load(open("/tmp/stash_tier1_report.json"))["wall_ns"])
PY
)
grep -q "<th class=\"num\">${wall_ns}</th>" /tmp/stash_tier1_report.html

# Diff CLI smoke test: a report diffed against itself has no regressions.
./target/release/stash diff /tmp/stash_tier1_report.json /tmp/stash_tier1_report.json

# Zero-allocation gate: steady-state epochs must not touch the global
# allocator (counting-allocator test), fast-forward must not change any
# EpochReport bit (differential test, FF on and off compared in-process
# against fresh-state runs), and the indexed event queue must stay
# order-equivalent to a reference binary heap under random op sequences.
cargo test -q --test alloc_budget
cargo test -q --test fast_forward_differential
cargo test -q --test queue_equivalence

# Benchmark-script smoke: runs the figure sweep with fast-forward on and
# off at a small iteration budget and sanity-checks the perf record.
scripts/bench.sh --smoke
