#!/usr/bin/env bash
# Tier-1 gate: release build, full test suite, lint-clean under clippy,
# warning-free rustdoc, and a trace-CLI smoke test.
# Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

# Trace CLI smoke test. The `trace validated` line only prints after the
# written file round-trips through `stash_trace::chrome::validate` — the
# same parser the chrome_golden integration test uses.
smoke_out=$(./target/release/stash trace p3.2xlarge resnet50 --out /tmp/t.json)
grep -q "trace validated" <<<"$smoke_out"
