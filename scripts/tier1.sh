#!/usr/bin/env bash
# Tier-1 gate: formatting, release build, full test suite, lint-clean
# under clippy, warning-free rustdoc, and CLI smoke tests for the trace,
# report, diff, chaos, perf, dash and flight-recorder subcommand surface.
# Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo fmt --all --check
cargo build --release
cargo test -q
cargo clippy --workspace -- -D warnings
# Panic-free library gate: these crates deny clippy::unwrap_used and
# clippy::expect_used via their [lints] tables; this invocation keeps the
# gate visible and catches regressions even if the workspace line changes.
cargo clippy -p stash-faults -p stash-hwtopo -p stash-datapipe -p stash-collectives -p stash-telemetry -p stash-trace -p stash-simkit -p stash-flowsim -p stash-ddl -p stash-core -p stash-store -p stash-dnn -p stash-gpucompute -p stash-bench -p stash --lib -- -D warnings
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

# Trace CLI smoke test. The `trace validated` line only prints after the
# written file round-trips through `stash_trace::chrome::validate` — the
# same parser the chrome_golden integration test uses.
smoke_out=$(./target/release/stash trace p3.2xlarge resnet50 --out /tmp/t.json)
grep -q "trace validated" <<<"$smoke_out"

# Report CLI smoke test. The command itself fails unless the critical-path
# decomposition reconciles with the engine accumulators exactly; on top of
# that, the written HTML must carry the rollup totals (the stall-breakdown
# table and the reconciled wall-time total row).
report_out=$(./target/release/stash report p3.2xlarge resnet18 --out /tmp/stash_tier1_report)
grep -q "critical-path reconciliation" <<<"$report_out"
grep -q "Stall breakdown" /tmp/stash_tier1_report.html
wall_ns=$(python3 - <<'PY'
import json
print(json.load(open("/tmp/stash_tier1_report.json"))["wall_ns"])
PY
)
grep -q "<th class=\"num\">${wall_ns}</th>" /tmp/stash_tier1_report.html

# Diff CLI smoke test: a report diffed against itself has no regressions.
./target/release/stash diff /tmp/stash_tier1_report.json /tmp/stash_tier1_report.json

# Chaos CLI smoke test: a seeded run self-checks trace-vs-engine
# reconciliation (the command fails on any nanosecond of drift), and the
# same seed twice must produce byte-identical resilience reports.
./target/release/stash chaos p3.8xlarge*2 resnet18 --seed 7 --out /tmp/stash_tier1_chaos_a.json
./target/release/stash chaos p3.8xlarge*2 resnet18 --seed 7 --out /tmp/stash_tier1_chaos_b.json >/dev/null
cmp /tmp/stash_tier1_chaos_a.json /tmp/stash_tier1_chaos_b.json
python3 - <<'PY'
import json
doc = json.load(open("/tmp/stash_tier1_chaos_a.json"))
assert doc["schema"] == "stash-resilience-v1", doc.get("schema")
assert doc["slowdown"] >= 1.0
assert len(doc["faults"]["events"]) == 4
PY

# Perf CLI smoke test: the `prom validated` line only prints after the
# exposition passed stash_telemetry::prom::validate; the written .prom
# must carry the solver recompute-latency histogram, and the telemetry
# document must diff cleanly against itself.
perf_out=$(./target/release/stash perf p3.2xlarge shufflenet --out /tmp/stash_tier1_perf)
grep -q "prom validated" <<<"$perf_out"
grep -q "stash_sim_solver_recompute_latency_ns_bucket" /tmp/stash_tier1_perf.prom
grep -q 'le="+Inf"' /tmp/stash_tier1_perf.prom
./target/release/stash diff /tmp/stash_tier1_perf.json /tmp/stash_tier1_perf.json

# ...and a doctored solver p99 must make the diff fail non-zero.
python3 - <<'PY'
import json
doc = json.load(open("/tmp/stash_tier1_perf.json"))
assert doc["schema"] == "stash-telemetry-v1", doc.get("schema")
assert doc["counters"]["stash_sim_queue_events_popped_total"] > 0
doc["histograms"]["stash_sim_solver_recompute_latency_ns"]["p99"] = 10**10
json.dump(doc, open("/tmp/stash_tier1_perf_bad.json", "w"))
PY
if ./target/release/stash diff /tmp/stash_tier1_perf.json /tmp/stash_tier1_perf_bad.json; then
    echo "doctored solver-p99 regression was not caught" >&2
    exit 1
fi

# Perf CSV exposition: --format csv writes the same snapshot as a
# spreadsheet-ready metric,kind,value table in schema order.
./target/release/stash perf p3.2xlarge shufflenet --format csv \
    --out /tmp/stash_tier1_perf_csv >/dev/null
head -1 /tmp/stash_tier1_perf_csv.csv | grep -q "^metric,kind,value$"
grep -q "^stash_sim_queue_events_popped_total,counter," /tmp/stash_tier1_perf_csv.csv
grep -q "^stash_sim_solver_recompute_latency_ns_p99,histogram," /tmp/stash_tier1_perf_csv.csv

# Fleet-dashboard smoke: an empty results dir triggers the default
# cluster x model sweep; the dashboard must validate against its own
# embedded stash-series-v1 documents (the command fails otherwise),
# render one heatmap cell per swept pair, and rebuild byte-identically
# from the series docs the first run wrote.
rm -rf /tmp/stash_tier1_dash && mkdir -p /tmp/stash_tier1_dash
dash_out=$(./target/release/stash dash /tmp/stash_tier1_dash \
    --out /tmp/stash_tier1_dash/dashboard.html)
grep -q "dashboard validated (9 cells)" <<<"$dash_out"
./target/release/stash dash /tmp/stash_tier1_dash \
    --out /tmp/stash_tier1_dash/dashboard_b.html >/dev/null
cmp /tmp/stash_tier1_dash/dashboard.html /tmp/stash_tier1_dash/dashboard_b.html
python3 - <<'PY'
import glob, json
html = open("/tmp/stash_tier1_dash/dashboard.html").read()
docs = [json.load(open(p)) for p in sorted(glob.glob("/tmp/stash_tier1_dash/series_*.json"))]
assert len(docs) == 9, f"expected 9 swept series docs, found {len(docs)}"
for doc in docs:
    key = f'data-cell="{doc["cluster"]}|{doc["model"]}"'
    assert key in html, f"heatmap cell missing for swept pair: {key}"
PY

# Series regression gate: doctoring a series document with transient
# iteration-time spikes must make `stash diff` fail non-zero on both the
# CoV and the spike-count gates.
python3 - <<'PY'
import glob, json
path = sorted(glob.glob("/tmp/stash_tier1_dash/series_*.json"))[0]
doc = json.load(open(path))
doctored = 0
per_iter = [row for row in doc["samples"] if row[1] == 1]
for row in per_iter[3:6]:  # three samples past the 3-iteration warm-up head
    row[4] *= 25  # wall_ns: a 25x transient spike
    doctored += 1
assert doctored >= 3, f"only {doctored} samples doctored"
json.dump(doc, open("/tmp/stash_tier1_series_bad.json", "w"))
json.dump(json.load(open(path)), open("/tmp/stash_tier1_series_good.json", "w"))
PY
./target/release/stash diff /tmp/stash_tier1_series_good.json /tmp/stash_tier1_series_good.json
if ./target/release/stash diff /tmp/stash_tier1_series_good.json /tmp/stash_tier1_series_bad.json; then
    echo "doctored iteration-series regression was not caught" >&2
    exit 1
fi

# Chaos overlay: a seeded chaos run exports its series (the command
# reconciles the series totals against the engine before writing), and a
# dashboard rebuilt over the same dir swaps the annotated run into the
# matching cell while still validating.
./target/release/stash chaos p3.8xlarge*2 resnet18 --seed 7 \
    --series /tmp/stash_tier1_dash/series_zz_chaos.json >/dev/null
overlay_out=$(./target/release/stash dash /tmp/stash_tier1_dash \
    --out /tmp/stash_tier1_dash/dashboard_chaos.html)
grep -q "dashboard validated (9 cells)" <<<"$overlay_out"
grep -q 'class="fault"' /tmp/stash_tier1_dash/dashboard_chaos.html

# Flight-recorder smoke test: a chaos run that dies on a typed error must
# leave a parseable stash-flight-v1 dump of the engine's last events.
printf '{ not a fault plan' >/tmp/stash_tier1_bad_plan.json
if ./target/release/stash chaos p3.2xlarge shufflenet \
    --plan /tmp/stash_tier1_bad_plan.json --flight /tmp/stash_tier1_flight.json; then
    echo "chaos accepted an invalid fault plan" >&2
    exit 1
fi
python3 - <<'PY'
import json
doc = json.load(open("/tmp/stash_tier1_flight.json"))
assert doc["schema"] == "stash-flight-v1", doc.get("schema")
assert doc["events"], "flight dump recorded no events"
PY

# Durable-sweep smoke: a cold sweep lands every cell in the checksummed
# store; a resumed run serves all of them back and agrees with the cold
# CSV on every value (only the status column may change).
rm -rf /tmp/stash_tier1_store
./target/release/stash sweep --models AlexNet,ResNet18 --clusters p3.2xlarge \
    --store /tmp/stash_tier1_store --out /tmp/stash_tier1_sweep_cold.csv >/dev/null
sweep_out=$(./target/release/stash sweep --store /tmp/stash_tier1_store --resume \
    --out /tmp/stash_tier1_sweep_warm.csv)
grep -q "0 computed, 2 resumed, 0 failed" <<<"$sweep_out"
cmp <(sed 's/,[a-z-]*$//' /tmp/stash_tier1_sweep_cold.csv) \
    <(sed 's/,[a-z-]*$//' /tmp/stash_tier1_sweep_warm.csv)

# Fsck smoke: doctor one stored record, prove fsck catches it (exit 2,
# corpse quarantined), then prove --repair rebuilds the record from the
# write-ahead journal byte-identically to the pristine original.
rec=$(ls /tmp/stash_tier1_store/records/*.rec | head -1)
cp "$rec" /tmp/stash_tier1_pristine.rec
printf 'XX' | dd of="$rec" bs=1 seek=40 conv=notrunc status=none
if ./target/release/stash fsck /tmp/stash_tier1_store >/dev/null; then
    echo "fsck missed a doctored record" >&2
    exit 1
fi
./target/release/stash fsck /tmp/stash_tier1_store --repair >/dev/null
cmp "$rec" /tmp/stash_tier1_pristine.rec
./target/release/stash fsck /tmp/stash_tier1_store >/dev/null

# Durability gates: crash-kill convergence (SIGKILL mid-write, resume,
# byte-identical store), the storeless/stored/faulted differential, and
# frame + fault-injection property tests.
cargo test -q --test store_crash
cargo test -q --test sweep_differential
cargo test -q --test store_props

# Zero-allocation gate: steady-state epochs must not touch the global
# allocator (counting-allocator test), fast-forward must not change any
# EpochReport bit (differential test, FF on and off compared in-process
# against fresh-state runs), and the indexed event queue must stay
# order-equivalent to a reference binary heap under random op sequences.
cargo test -q --test alloc_budget
cargo test -q --test fast_forward_differential
cargo test -q --test queue_equivalence

# Fault-injection differential: an empty fault plan must leave every
# EpochReport bit-identical across the zoo, and faulted accumulators must
# tile the wall clock at integer-nanosecond exactness.
cargo test -q --test faults_differential

# Telemetry gates: recording allocates exactly nothing (counting
# allocator), flipping the registry switch changes no EpochReport bit
# (zoo differential, FF on and off), histogram/snapshot invariants hold
# under proptest, and the perf/diff/flight CLI surface works end to end.
cargo test -q --test telemetry_alloc
cargo test -q --test telemetry_differential
cargo test -q --test telemetry_props
cargo test -q --test perf_cli

# Iteration-series gates: recording must leave every EpochReport bit
# identical (zoo differential, FF on and off, seeded fault plans) with
# totals reconciling at integer-nanosecond exactness, and the
# downsampler's invariants (exact sums, contiguity, capacity bound,
# byte-stable serialization) hold under proptest.
cargo test -q --test series_differential
cargo test -q --test series_props

# Benchmark-script smoke: runs the figure sweep with fast-forward on and
# off at a small iteration budget and sanity-checks the perf record.
scripts/bench.sh --smoke
