#!/usr/bin/env bash
# Benchmark trajectory: measures the figure-sweep wall-clock of the
# current tree (fast-forward on and off), re-measures the same sweep on a
# baseline revision's simulator core, runs the flownet_recompute
# microbenchmark, and folds everything into results/BENCH_<n>.json.
#
# Usage: scripts/bench.sh [--smoke] [baseline-rev]
#   --smoke       small iteration budget, current tree only (no baseline
#                 worktree rebuild, no microbenchmark), output to /tmp —
#                 tier1.sh runs this to keep the script exercised.
#   baseline-rev  git revision to measure as the pre-PR baseline
#                 (default HEAD^ — the tree before the current commit).
#
# The sweep workload is defined once in crates/bench/benches/perf_report.rs
# and mirrored by the revision-portable perf_baseline.rs, which this
# script injects into the baseline checkout so both revisions time the
# exact same jobs.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH_N=9
SMOKE=0
BASELINE_REV="HEAD^"
for arg in "$@"; do
    case "$arg" in
        --smoke) SMOKE=1 ;;
        *) BASELINE_REV="$arg" ;;
    esac
done

ITERS="${STASH_BENCH_ITERS:-120}"
REPEATS=3
if [[ "$SMOKE" == 1 ]]; then
    ITERS="${STASH_BENCH_ITERS:-40}"
    REPEATS=1
fi
TMP=$(mktemp -d /tmp/stash-bench.XXXXXX)
trap 'rm -rf "$TMP"' EXIT

# Runs the perf_report sweep $REPEATS times under env "$1", keeping the
# fastest run's record at "$2" (min wall-clock — the runs are identical
# workloads, so the minimum is the least-noisy estimate).
run_sweep() {
    local env_prefix="$1" out="$2" best_wall="" i
    for ((i = 0; i < REPEATS; i++)); do
        env STASH_BENCH_ITERS="$ITERS" STASH_PERF_OUT="$TMP/try.json" $env_prefix \
            cargo bench --bench perf_report -p stash-bench >/dev/null
        local wall
        wall=$(python3 -c "import json;print(json.load(open('$TMP/try.json'))['wall_secs'])")
        if [[ -z "$best_wall" ]] || python3 -c "exit(0 if $wall < $best_wall else 1)"; then
            best_wall="$wall"
            cp "$TMP/try.json" "$out"
        fi
    done
}

echo "== current tree: figure sweep (fast-forward on), $ITERS iters x $REPEATS runs =="
run_sweep "" "$TMP/current.json"
echo "== current tree: figure sweep (STASH_FAST_FORWARD=0) =="
run_sweep "STASH_FAST_FORWARD=0" "$TMP/ff_off.json"

# Durable-sweep leg: the pay-once economics of the result store. A cold
# `stash sweep` simulates a 24-cell grid into a checksummed store; the
# resumed run replays the write-ahead journal and serves every cell from
# verified records. Resume must be at least 5x faster than cold — the
# store exists precisely so crashed fleets never pay for a cell twice.
echo "== durable sweep: cold vs resumed (stash sweep --store), best of $REPEATS =="
cargo build --release --quiet
SWEEP_GRID=(--models AlexNet,ResNet18,ResNet50,ShuffleNet,MobileNet-v2,VGG11
    --clusters "p3.2xlarge,p3.8xlarge,p3.16xlarge,p3.8xlarge*2" --iters 30)
COLD_NS="" RESUMED_NS=""
for ((i = 0; i < REPEATS; i++)); do
    rm -rf "$TMP/sweep-store"
    t0=$(date +%s%N)
    ./target/release/stash sweep "${SWEEP_GRID[@]}" \
        --store "$TMP/sweep-store" --out "$TMP/sweep-cold.csv" >/dev/null
    t1=$(date +%s%N)
    ./target/release/stash sweep --store "$TMP/sweep-store" --resume \
        --out "$TMP/sweep-warm.csv" >/dev/null
    t2=$(date +%s%N)
    if [[ -z "$COLD_NS" || $((t1 - t0)) -lt "$COLD_NS" ]]; then COLD_NS=$((t1 - t0)); fi
    if [[ -z "$RESUMED_NS" || $((t2 - t1)) -lt "$RESUMED_NS" ]]; then RESUMED_NS=$((t2 - t1)); fi
done
# The resumed CSV must agree with the cold one on every value (only the
# status column flips computed -> resumed); then gate the speedup.
cmp <(sed 's/,[a-z-]*$//' "$TMP/sweep-cold.csv") <(sed 's/,[a-z-]*$//' "$TMP/sweep-warm.csv")
python3 - "$COLD_NS" "$RESUMED_NS" "$TMP/durable_sweep.json" <<'PY'
import json, sys
cold_ns, resumed_ns, out = int(sys.argv[1]), int(sys.argv[2]), sys.argv[3]
speedup = cold_ns / resumed_ns
record = {
    "grid_cells": 24,
    "cold_secs": cold_ns / 1e9,
    "resumed_secs": resumed_ns / 1e9,
    "resume_speedup": speedup,
}
json.dump(record, open(out, "w"))
print(f"[durable sweep: cold {cold_ns / 1e9:.3f}s -> resumed {resumed_ns / 1e9:.3f}s, "
      f"{speedup:.1f}x]")
assert speedup >= 5.0, (
    f"resume speedup gate: {speedup:.2f}x < 5x — the store is no longer paying for itself")
PY

if [[ "$SMOKE" == 1 ]]; then
    # Smoke: prove the script runs end to end and the record is sane.
    python3 - "$TMP/current.json" "$TMP/ff_off.json" <<'PY'
import json, sys
cur = json.load(open(sys.argv[1]))
off = json.load(open(sys.argv[2]))
for key in ("wall_secs", "events_per_sec", "cache_hit_rate", "fast_forward_ratio"):
    assert key in cur, f"missing {key}"
assert cur["fast_forward_ratio"] > 0, "fast-forward never engaged"
assert off["fast_forward_ratio"] == 0, "FF off run still fast-forwarded"
for rec, name in ((cur, "on"), (off, "off")):
    tel = rec.get("telemetry")
    assert tel, f"missing telemetry block (ff {name})"
    assert tel["solver_recompute_count"] > 0, f"no solver latency samples (ff {name})"
    assert tel["solver_recompute_p99_ns"] >= tel["solver_recompute_p50_ns"] > 0
    assert tel["queue_popped"] > 0 and tel["queue_depth_high_water"] > 0
    ser = rec.get("series")
    assert ser, f"missing series block (ff {name})"
    assert ser["samples"] > 0, f"series leg recorded nothing (ff {name})"
    assert ser["iteration_cov"] >= 0.0 and ser["spike_count"] >= 0
assert cur["series"]["compressed_ff_iterations"] > 0, \
    "series leg never fast-forwarded with FF on"
print(f"[bench smoke ok: {cur['wall_secs']:.3f}s on, {off['wall_secs']:.3f}s off, "
      f"solver p99 {cur['telemetry']['solver_recompute_p99_ns']} ns]")
PY
    exit 0
fi

echo "== baseline revision $BASELINE_REV: same sweep, old core =="
WT="$TMP/baseline-tree"
git worktree add --detach "$WT" "$BASELINE_REV" >/dev/null
cleanup_worktree() {
    git worktree remove --force "$WT" >/dev/null 2>&1 || true
    rm -rf "$TMP"
}
trap cleanup_worktree EXIT
cp crates/bench/benches/perf_baseline.rs "$WT/crates/bench/benches/"
if ! grep -q 'name = "perf_baseline"' "$WT/crates/bench/Cargo.toml"; then
    printf '\n[[bench]]\nname = "perf_baseline"\nharness = false\n' >>"$WT/crates/bench/Cargo.toml"
fi
BASELINE_BEST=""
for ((i = 0; i < REPEATS; i++)); do
    (cd "$WT" && env CARGO_TARGET_DIR="$TMP/baseline-target" \
        STASH_BENCH_ITERS="$ITERS" STASH_PERF_OUT="$TMP/try.json" \
        cargo bench --bench perf_baseline -p stash-bench >/dev/null)
    wall=$(python3 -c "import json;print(json.load(open('$TMP/try.json'))['wall_secs'])")
    if [[ -z "$BASELINE_BEST" ]] || python3 -c "exit(0 if $wall < $BASELINE_BEST else 1)"; then
        BASELINE_BEST="$wall"
        cp "$TMP/try.json" "$TMP/baseline.json"
    fi
done

echo "== flownet_recompute microbenchmark =="
cargo bench --bench flownet_recompute -p stash-bench | tee "$TMP/flownet.txt"

python3 - "$TMP" "$BENCH_N" "$(git rev-parse "$BASELINE_REV")" <<'PY'
import json, re, sys

tmp, n, baseline_rev = sys.argv[1], int(sys.argv[2]), sys.argv[3]
current = json.load(open(f"{tmp}/current.json"))
ff_off = json.load(open(f"{tmp}/ff_off.json"))
baseline = json.load(open(f"{tmp}/baseline.json"))

unit = {"s": 1.0, "ms": 1e-3, "us": 1e-6, "ns": 1e-9}
micro = {}
for line in open(f"{tmp}/flownet.txt"):
    m = re.match(r"(flownet_recompute/\d+)\s+median\s+([\d.]+)\s+(s|ms|us|ns)", line)
    if m:
        micro[m.group(1)] = float(m.group(2)) * unit[m.group(3)]

record = {
    "bench": n,
    "generated_by": "scripts/bench.sh",
    "workload": "P3 figure sweep (perf_report.rs), best of repeated runs",
    "baseline_rev": baseline_rev,
    "baseline": baseline,
    "current": current,
    "fast_forward_off": ff_off,
    "speedup_vs_baseline": baseline["wall_secs"] / current["wall_secs"],
    "speedup_fast_forward": ff_off["wall_secs"] / current["wall_secs"],
    "flownet_recompute_median_secs": micro,
    # Simulator self-telemetry for the winning fast-forward-on run:
    # solver latency percentiles and queue traffic, so the trajectory
    # tracks simulator health alongside raw wall-clock.
    "telemetry": current.get("telemetry", {}),
    # Iteration-dynamics health for the same run: series-derived
    # iteration-time CoV and transient-spike count (the quantities
    # `stash diff` gates on between series documents).
    "series": current.get("series", {}),
    # Cold-vs-resumed durable sweep: the result store's pay-once
    # economics, gated at a 5x minimum resume speedup above.
    "durable_sweep": json.load(open(f"{tmp}/durable_sweep.json")),
}
out = f"results/BENCH_{n}.json"
json.dump(record, open(out, "w"), indent=2)
print(f"[written: {out}]")
print(f"[sweep speedup vs {baseline_rev[:12]}: {record['speedup_vs_baseline']:.2f}x "
      f"(baseline {baseline['wall_secs']:.3f}s -> current {current['wall_secs']:.3f}s); "
      f"fast-forward contributes {record['speedup_fast_forward']:.2f}x]")
# BENCH_4 recorded the 2.85x win of the zero-allocation core over the
# pre-optimization baseline; every later baseline already contains that
# core, so the trajectory gate is now "don't regress": the current tree
# (telemetry enabled during the measured sweep) must stay within 10% of
# the baseline revision's wall-clock.
assert record["speedup_vs_baseline"] >= 0.9, (
    f"benchmark regression: sweep {1 / record['speedup_vs_baseline']:.2f}x "
    f"slower than baseline (gate: <= 1.11x)")
PY
