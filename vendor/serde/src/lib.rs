//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the subset of serde the workspace actually uses, built around
//! a single JSON-like [`Value`] data model instead of serde's visitor
//! architecture:
//!
//! * [`Serialize`] — `fn to_json_value(&self) -> Value`;
//! * [`Deserialize`] — `fn from_json_value(&Value) -> Result<Self, Error>`;
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   stub (no `#[serde(...)]` attributes, no generics — the workspace
//!   uses neither).
//!
//! `serde_json` (also vendored) re-exports [`Value`]/[`Map`]/[`Number`]
//! and layers text encoding/decoding on top. Swapping the real serde back
//! in later only requires restoring the registry dependencies: the
//! derive-based call sites are source-compatible.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Error produced by [`Deserialize`] implementations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with `msg`.
    #[must_use]
    pub fn msg(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }

    /// Adds a `where` context prefix (used by derived impls).
    #[must_use]
    pub fn ctx(self, what: &str) -> Error {
        Error(format!("{what}: {}", self.0))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// A JSON number: unsigned, signed or floating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer.
    U(u64),
    /// Negative integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    /// The value as `u64`, if representable.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(u) => Some(u),
            Number::I(i) => u64::try_from(i).ok(),
            Number::F(_) => None,
        }
    }

    /// The value as `i64`, if representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(u) => i64::try_from(u).ok(),
            Number::I(i) => Some(i),
            Number::F(_) => None,
        }
    }

    /// The value as `f64` (always representable, possibly lossily).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U(u) => Some(u as f64),
            Number::I(i) => Some(i as f64),
            Number::F(f) => Some(f),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U(u) => write!(f, "{u}"),
            Number::I(i) => write!(f, "{i}"),
            Number::F(v) => {
                if v.is_finite() {
                    if v == v.trunc() && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    write!(f, "null")
                }
            }
        }
    }
}

/// An order-preserving string-keyed object, mirroring `serde_json::Map`.
///
/// The two generic parameters exist only so `Map<String, Value>` spells
/// the same as with the real serde_json; only that instantiation is
/// implemented.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map<K = String, V = Value> {
    entries: Vec<(K, V)>,
}

impl Map<String, Value> {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Map {
            entries: Vec::new(),
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts `value` at `key`, replacing and returning any prior value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

impl FromIterator<(String, Value)> for Map<String, Value> {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl IntoIterator for Map<String, Value> {
    type Item = (String, Value);
    type IntoIter = std::vec::IntoIter<(String, Value)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// A JSON value tree — the single data model of this serde stand-in.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map<String, Value>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The `u64` payload, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The `i64` payload, if representable.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The numeric payload as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The boolean payload.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The array payload.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The object payload.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// `true` for [`Value::Null`].
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// `true` for [`Value::Object`].
    #[must_use]
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// `true` for [`Value::Array`].
    #[must_use]
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// `true` for [`Value::Number`].
    #[must_use]
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// `true` for [`Value::String`].
    #[must_use]
    pub fn is_string(&self) -> bool {
        matches!(self, Value::String(_))
    }

    /// Object-field lookup (`None` for non-objects / missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }

    /// Array-element lookup.
    #[must_use]
    pub fn get_index(&self, idx: usize) -> Option<&Value> {
        self.as_array().and_then(|a| a.get(idx))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        self.get_index(idx).unwrap_or(&NULL)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

macro_rules! value_eq_int {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.as_i64() == i64::try_from(*other).ok()
            }
        }
    )*};
}
value_eq_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

/// Types that can render themselves into a JSON [`Value`].
pub trait Serialize {
    /// Converts `self` to a value tree.
    fn to_json_value(&self) -> Value;
}

/// Types reconstructible from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`Error`] when the value's shape does not match.
    fn from_json_value(v: &Value) -> Result<Self, Error>;
}

// ------------------------------------------------------------ Serialize

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U(v as u64))
                } else {
                    Value::Number(Number::I(v))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F(f64::from(*self)))
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_json_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_json_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json_value(&self) -> Value {
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        Value::Object(
            keys.into_iter()
                .map(|k| (k.clone(), self[k].to_json_value()))
                .collect(),
        )
    }
}

impl Serialize for Map<String, Value> {
    fn to_json_value(&self) -> Value {
        Value::Object(self.clone())
    }
}

// ---------------------------------------------------------- Deserialize

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| Error::msg("expected unsigned integer"))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| Error::msg("expected integer"))?;
                <$t>::try_from(n).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| Error::msg("expected number"))
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected boolean"))
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            T::from_json_value(v).map(Some)
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let arr = v.as_array().ok_or_else(|| Error::msg("expected array"))?;
        arr.iter().map(T::from_json_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_json_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::msg(format!("expected array of length {N}")))
    }
}

macro_rules! de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::msg("expected array (tuple)"))?;
                Ok(($(
                    $t::from_json_value(
                        arr.get($n).ok_or_else(|| Error::msg("tuple too short"))?,
                    )?,
                )+))
            }
        }
    )*};
}
de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let obj = v.as_object().ok_or_else(|| Error::msg("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_json_value(v)?)))
            .collect()
    }
}

impl Deserialize for Map<String, Value> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .cloned()
            .ok_or_else(|| Error::msg("expected object"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z".into(), Value::Bool(true));
        m.insert("a".into(), Value::Null);
        let keys: Vec<&String> = m.keys().collect();
        assert_eq!(keys, ["z", "a"]);
    }

    #[test]
    fn value_indexing_and_eq() {
        let mut m = Map::new();
        m.insert("n".into(), Value::Number(Number::U(4)));
        m.insert("s".into(), Value::String("hi".into()));
        let v = Value::Object(m);
        assert_eq!(v["n"], 4);
        assert_eq!(v["s"], "hi");
        assert!(v["missing"].is_null());
    }

    #[test]
    fn std_round_trips() {
        let v = (3_u64, -2_i64, true).to_json_value();
        let back: (u64, i64, bool) = Deserialize::from_json_value(&v).unwrap();
        assert_eq!(back, (3, -2, true));
        let opt: Option<u64> = Deserialize::from_json_value(&Value::Null).unwrap();
        assert_eq!(opt, None);
    }
}
