//! Offline stand-in for `serde_json`, layered on the vendored value-based
//! `serde` stub.
//!
//! Provides the API surface the workspace uses: [`Value`]/[`Map`]/
//! [`Number`] (re-exported from `serde`), [`to_string`],
//! [`to_string_pretty`], [`to_value`], [`from_str`], a [`json!`] macro
//! (object values must be expressions — nest further `json!` calls for
//! sub-objects), and an [`Error`]/[`Result`] pair.

pub use serde::{Map, Number, Value};

use serde::{Deserialize, Serialize};
use std::fmt;

/// Serialization / parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Converts any [`Serialize`] type into a [`Value`] tree.
///
/// # Errors
///
/// Never fails in this stand-in; the `Result` mirrors serde_json's API.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_json_value())
}

/// Reconstructs a [`Deserialize`] type from a [`Value`] tree.
///
/// # Errors
///
/// Fails when the value's shape does not match `T`.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T> {
    T::from_json_value(value).map_err(Error::from)
}

/// Compact JSON encoding.
///
/// # Errors
///
/// Never fails in this stand-in.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, None, 0);
    Ok(out)
}

/// Pretty JSON encoding (two-space indent).
///
/// # Errors
///
/// Never fails in this stand-in.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_json_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
///
/// # Errors
///
/// Fails on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    from_value(&v)
}

/// Builds a [`Value`] from a JSON-ish literal. Object and array elements
/// must be Rust expressions implementing `Serialize` (use nested `json!`
/// calls for sub-objects).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut m = $crate::Map::new();
        $( m.insert(::std::string::String::from($key),
                    $crate::to_value(&$val).expect("json! value")); )*
        $crate::Value::Object(m)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$elem).expect("json! element") ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other).expect("json! value") };
}

// -------------------------------------------------------------- writing

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if n.as_f64().is_some_and(f64::is_finite)
                || n.as_u64().is_some()
                || n.as_i64().is_some()
            {
                out.push_str(&n.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid UTF-8".into()))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| Error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let v = json!({
            "name": "stash",
            "count": 3_u64,
            "ratio": 0.5_f64,
            "tags": json!(["a", "b"]),
            "inner": json!({"ok": true})
        });
        let text = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        assert_eq!(back["count"], 3);
        assert_eq!(back["inner"]["ok"], true);
    }

    #[test]
    fn parses_numbers_and_escapes() {
        let v: Value = from_str(r#"{"a": -3, "b": 1.5e3, "c": "x\n\"y\""}"#).unwrap();
        assert_eq!(v["a"].as_i64(), Some(-3));
        assert_eq!(v["b"].as_f64(), Some(1500.0));
        assert_eq!(v["c"].as_str(), Some("x\n\"y\""));
    }

    #[test]
    fn typed_from_str() {
        let xs: Vec<u64> = from_str("[1, 2, 3]").unwrap();
        assert_eq!(xs, [1, 2, 3]);
        assert!(from_str::<Vec<u64>>("[1, 2").is_err());
    }
}
