//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored value-based `serde` stub, by hand-parsing the item's token
//! stream (no `syn`/`quote` available offline). Supported shapes — the
//! only ones the workspace uses:
//!
//! * structs with named fields, tuple structs (single-field newtypes
//!   serialize transparently), unit structs;
//! * enums with unit, tuple and struct variants (externally tagged, like
//!   real serde's default representation).
//!
//! Generics and `#[serde(...)]` attributes are rejected at compile time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    kind: VariantKind,
}

#[derive(Debug, Clone)]
enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the value-based `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_serialize(&shape)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

/// Derives the value-based `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    gen_deserialize(&shape)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// ------------------------------------------------------------- parsing

fn parse_item(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde_derive: expected struct/enum, found {t}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        t => panic!("serde_derive: expected item name, found {t}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stub: generic types are not supported (item `{name}`)");
    }
    match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct {
                    name,
                    arity: split_top_level(g.stream()).len(),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
            t => panic!("serde_derive: unsupported struct body {t:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            t => panic!("serde_derive: unsupported enum body {t:?}"),
        },
        k => panic!("serde_derive: cannot derive for `{k}`"),
    }
}

fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // `#` and the bracketed attribute group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

/// Splits a token stream on top-level commas, tracking `<...>` nesting so
/// type arguments don't split fields. Empty segments are dropped.
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur: Vec<TokenTree> = Vec::new();
    let mut angle = 0_i32;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|seg| {
            let mut i = 0;
            skip_attrs_and_vis(&seg, &mut i);
            match &seg[i] {
                TokenTree::Ident(id) => id.to_string(),
                t => panic!("serde_derive: expected field name, found {t}"),
            }
        })
        .collect()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|seg| {
            let mut i = 0;
            skip_attrs_and_vis(&seg, &mut i);
            let name = match &seg[i] {
                TokenTree::Ident(id) => id.to_string(),
                t => panic!("serde_derive: expected variant name, found {t}"),
            };
            i += 1;
            let kind = match seg.get(i) {
                None => VariantKind::Unit,
                Some(TokenTree::Punct(p)) if p.as_char() == '=' => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(split_top_level(g.stream()).len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Named(parse_named_fields(g.stream()))
                }
                t => panic!("serde_derive: unsupported variant shape {t:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}

// ----------------------------------------------------------- generation

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "m.insert(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_json_value(&self.{f}));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{\n\
                         let mut m = ::serde::Map::new();\n\
                         {inserts}\
                         ::serde::Value::Object(m)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_json_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_json_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(vec![{}])\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_json_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String(\
                             ::std::string::String::from(\"{vn}\")),\n"
                        ),
                        VariantKind::Tuple(arity) => {
                            let binds: Vec<String> = (0..*arity).map(|i| format!("f{i}")).collect();
                            let payload = if *arity == 1 {
                                "::serde::Serialize::to_json_value(f0)".to_string()
                            } else {
                                let elems: Vec<String> = binds
                                    .iter()
                                    .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                    .collect();
                                format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                            };
                            format!(
                                "{name}::{vn}({binds}) => {{\n\
                                     let mut m = ::serde::Map::new();\n\
                                     m.insert(::std::string::String::from(\"{vn}\"), {payload});\n\
                                     ::serde::Value::Object(m)\n\
                                 }}\n",
                                binds = binds.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let inserts: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "inner.insert(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_json_value({f}));\n"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => {{\n\
                                     let mut inner = ::serde::Map::new();\n\
                                     {inserts}\
                                     let mut m = ::serde::Map::new();\n\
                                     m.insert(::std::string::String::from(\"{vn}\"), \
                                     ::serde::Value::Object(inner));\n\
                                     ::serde::Value::Object(m)\n\
                                 }}\n"
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_json_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_json_value(\
                         v.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                         .map_err(|e| e.ctx(\"{name}.{f}\"))?,\n"
                    )
                })
                .collect();
            format!("::std::result::Result::Ok({name} {{\n{inits}}})")
        }
        Shape::TupleStruct { name, arity: 1 } => {
            format!(
                "::std::result::Result::Ok({name}(\
                 ::serde::Deserialize::from_json_value(v).map_err(|e| e.ctx(\"{name}\"))?))"
            )
        }
        Shape::TupleStruct { name, arity } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::from_json_value(\
                         arr.get({i}).unwrap_or(&::serde::Value::Null))\
                         .map_err(|e| e.ctx(\"{name}.{i}\"))?"
                    )
                })
                .collect();
            format!(
                "{{\n\
                     let arr = v.as_array().ok_or_else(|| \
                     ::serde::Error::msg(\"expected array for {name}\"))?;\n\
                     ::std::result::Result::Ok({name}({}))\n\
                 }}",
                inits.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!("::std::result::Result::Ok({name})"),
        Shape::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n",
                        vn = v.name
                    )
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_json_value(payload)\
                             .map_err(|e| e.ctx(\"{name}::{vn}\"))?)),\n"
                        )),
                        VariantKind::Tuple(arity) => {
                            let inits: Vec<String> = (0..*arity)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::from_json_value(\
                                         arr.get({i}).unwrap_or(&::serde::Value::Null))\
                                         .map_err(|e| e.ctx(\"{name}::{vn}.{i}\"))?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{\n\
                                     let arr = payload.as_array().ok_or_else(|| \
                                     ::serde::Error::msg(\"expected array for {name}::{vn}\"))?;\n\
                                     ::std::result::Result::Ok({name}::{vn}({}))\n\
                                 }}\n",
                                inits.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: String = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_json_value(\
                                         payload.get(\"{f}\").unwrap_or(&::serde::Value::Null))\
                                         .map_err(|e| e.ctx(\"{name}::{vn}.{f}\"))?,\n"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{\n{inits}}}),\n"
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "{{\n\
                     if let ::std::option::Option::Some(s) = v.as_str() {{\n\
                         match s {{\n{unit_arms}\
                             other => ::std::result::Result::Err(::serde::Error::msg(\
                             format!(\"unknown {name} variant '{{other}}'\"))),\n\
                         }}\n\
                     }} else if let ::std::option::Option::Some(obj) = v.as_object() {{\n\
                         let (tag, payload) = obj.iter().next().ok_or_else(|| \
                         ::serde::Error::msg(\"empty object for enum {name}\"))?;\n\
                         let _ = payload;\n\
                         match tag.as_str() {{\n{tagged_arms}\
                             other => ::std::result::Result::Err(::serde::Error::msg(\
                             format!(\"unknown {name} variant '{{other}}'\"))),\n\
                         }}\n\
                     }} else {{\n\
                         ::std::result::Result::Err(::serde::Error::msg(\
                         \"expected string or object for enum {name}\"))\n\
                     }}\n\
                 }}"
            )
        }
    };
    let name = match shape {
        Shape::NamedStruct { name, .. }
        | Shape::TupleStruct { name, .. }
        | Shape::UnitStruct { name }
        | Shape::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_json_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let _ = v;\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
