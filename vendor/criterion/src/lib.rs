//! Offline stand-in for `criterion`.
//!
//! Provides the `Criterion::bench_function` / `Bencher::iter` surface plus
//! the `criterion_group!` / `criterion_main!` macros. Each benchmark is
//! timed with `std::time::Instant`: a short calibration pass sizes the
//! batch, then a fixed number of batches are measured and the median
//! per-iteration time is printed.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` `self.iters` times, recording total elapsed time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Benchmark driver; collects and prints per-benchmark timings.
pub struct Criterion {
    measure_batches: u32,
    target_batch: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure_batches: 15,
            target_batch: Duration::from_millis(40),
        }
    }
}

impl Criterion {
    /// Times `f` and prints the median per-iteration duration.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        // Calibrate: grow the batch until one run takes ~target_batch.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= self.target_batch || iters >= 1 << 24 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (self.target_batch.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
            };
            iters = iters.saturating_mul(grow);
        }

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.measure_batches as usize);
        for _ in 0..self.measure_batches {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = per_iter[per_iter.len() / 2];
        let best = per_iter[0];
        println!(
            "{id:<40} median {} best {} ({iters} iters/batch)",
            format_time(median),
            format_time(best)
        );
        self
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut hits = 0u64;
        Criterion {
            measure_batches: 2,
            target_batch: Duration::from_micros(50),
        }
        .bench_function("smoke", |b| b.iter(|| hits += 1));
        assert!(hits > 0);
    }
}
