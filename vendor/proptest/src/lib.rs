//! Offline stand-in for `proptest`.
//!
//! Deterministic random-case testing with the `proptest!` macro surface
//! the workspace uses: range/tuple strategies, `prop_map`,
//! `prop::collection::vec`, `prop::sample::subsequence`, `any::<T>()`,
//! `ProptestConfig::with_cases` and the `prop_assert*` macros. No
//! shrinking: a failing case reports its seed and arguments instead.

use std::fmt;
use std::ops::Range;

/// Deterministic PRNG driving case generation (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds a generator for `test_name` case number `case`.
    #[must_use]
    pub fn for_case(test_name: &str, case: u32) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Failure raised by `prop_assert!` family; carried back to the runner.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with a message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Result type of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`cases` is the number of generated inputs).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` inputs.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
    {
        MapStrategy { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct MapStrategy<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for MapStrategy<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let span = u64::try_from(self.end - self.start).unwrap_or(u64::MAX).max(1);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let span = (i128::from(self.end) - i128::from(self.start)).max(1) as u128;
                let off = u128::from(rng.next_u64()) % span;
                (i128::from(self.start) + off as i128) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn new_value(&self, rng: &mut TestRng) -> f32 {
        self.start + (rng.unit() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit()
    }
}

/// Strategy for [`Arbitrary`] types.
#[derive(Debug, Clone, Default)]
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The whole-domain strategy for `T` (proptest's `any::<T>()`).
#[must_use]
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Combinator namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy for `Vec`s with a length drawn from `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        /// Generates vectors of `elem` values with length in `len`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.new_value(rng);
                (0..n).map(|_| self.elem.new_value(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Strategy yielding order-preserving subsequences of fixed size.
        #[derive(Debug, Clone)]
        pub struct Subsequence<T: Clone> {
            items: Vec<T>,
            size: usize,
        }

        /// Picks `size` distinct elements of `items`, preserving order.
        ///
        /// # Panics
        ///
        /// Panics when `size` exceeds `items.len()`.
        pub fn subsequence<T: Clone>(items: Vec<T>, size: usize) -> Subsequence<T> {
            assert!(size <= items.len(), "subsequence larger than source");
            Subsequence { items, size }
        }

        impl<T: Clone> Strategy for Subsequence<T> {
            type Value = Vec<T>;
            fn new_value(&self, rng: &mut TestRng) -> Vec<T> {
                let mut picked: Vec<usize> = Vec::with_capacity(self.size);
                while picked.len() < self.size {
                    let i = rng.below(self.items.len() as u64) as usize;
                    if !picked.contains(&i) {
                        picked.push(i);
                    }
                }
                picked.sort_unstable();
                picked.iter().map(|&i| self.items[i].clone()).collect()
            }
        }
    }
}

/// Everything tests normally import.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Declares deterministic property tests (no shrinking).
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — do not use directly.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                    $( let $arg = $crate::Strategy::new_value(&($strat), &mut rng); )*
                    let outcome: $crate::TestCaseResult =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest '{}' failed on case {}/{}: {}",
                            stringify!($name), case, config.cases, e
                        );
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}: {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fails the current case unless `a == b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($a), stringify!($b), left, right
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}: {}",
                stringify!($a), stringify!($b), format!($($fmt)+)
            )));
        }
    }};
}

/// Fails the current case unless `a != b`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left == right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($a),
                stringify!($b),
                left
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 3_u64..10, f in -1.0_f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0_usize..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn subsequence_preserves_order(pair in prop::sample::subsequence(vec![1, 2, 3, 4], 2)) {
            prop_assert_eq!(pair.len(), 2);
            prop_assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = super::TestRng::for_case("t", 3);
        let mut b = super::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
