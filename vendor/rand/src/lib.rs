//! Offline stand-in for `rand`.
//!
//! The workspace declares `rand` as a dev-dependency but does not use it;
//! simulation randomness comes from `simkit::rng::DetRng`. This stub
//! satisfies the dependency graph and offers a minimal seedable generator
//! should a test reach for one.

/// Minimal splitmix64 generator.
#[derive(Debug, Clone)]
pub struct SmallRng {
    state: u64,
}

impl SmallRng {
    /// Creates a generator from a fixed seed.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> SmallRng {
        SmallRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform float in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::SmallRng;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
