//! ASCII bar charts for terminal figure rendering.
//!
//! The paper's figures are bar charts; the bench harness re-renders its
//! series as unicode bars so a terminal run visually resembles the
//! figure being reproduced.

/// Renders one horizontal bar of `value` against `max`, `width` cells
/// wide, with eighth-block resolution.
#[must_use]
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if !(value.is_finite() && max.is_finite()) || max <= 0.0 || value <= 0.0 || width == 0 {
        return String::new();
    }
    const BLOCKS: [char; 8] = ['▏', '▎', '▍', '▌', '▋', '▊', '▉', '█'];
    let cells = (value / max).min(1.0) * width as f64;
    let full = cells.floor() as usize;
    let frac = cells - cells.floor();
    let mut s = "█".repeat(full);
    if full < width {
        let idx = (frac * 8.0).floor() as usize;
        if idx > 0 {
            s.push(BLOCKS[idx - 1]);
        }
    }
    s
}

/// Renders a labelled bar chart. Labels are right-aligned; bars scale to
/// the largest value.
#[must_use]
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize) -> String {
    let max = rows.iter().map(|(_, v)| *v).fold(0.0_f64, f64::max);
    let label_w = rows.iter().map(|(l, _)| l.len()).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    for (label, value) in rows {
        out.push_str(&format!(
            "  {label:>label_w$} |{:<width$}| {value:.1}\n",
            bar(*value, max, width)
        ));
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales_linearly() {
        assert_eq!(bar(10.0, 10.0, 10).chars().count(), 10);
        assert_eq!(bar(5.0, 10.0, 10).chars().count(), 5);
        assert_eq!(bar(0.0, 10.0, 10), "");
        // Fractional cells render a partial block.
        let b = bar(5.5, 10.0, 10);
        assert_eq!(b.chars().count(), 6);
        assert_ne!(b.chars().next_back().unwrap(), '█');
    }

    #[test]
    fn degenerate_inputs_are_empty() {
        assert_eq!(bar(1.0, 0.0, 10), "");
        assert_eq!(bar(f64::NAN, 10.0, 10), "");
        assert_eq!(bar(1.0, 10.0, 0), "");
        assert_eq!(bar(-3.0, 10.0, 5), "");
    }

    #[test]
    fn chart_contains_all_labels_and_values() {
        let rows = vec![
            ("p2.8xlarge".to_string(), 30.5),
            ("p2.16xlarge".to_string(), 61.5),
        ];
        let c = bar_chart("I/C stall %", &rows, 20);
        assert!(c.contains("p2.8xlarge"));
        assert!(c.contains("61.5"));
        // The bigger value has the longer bar.
        let lines: Vec<&str> = c.lines().skip(1).collect();
        let bars: Vec<usize> = lines
            .iter()
            .map(|l| l.chars().filter(|c| *c == '█').count())
            .collect();
        assert!(bars[1] > bars[0]);
    }

    #[test]
    fn values_clamp_at_max() {
        assert_eq!(bar(20.0, 10.0, 8).chars().count(), 8);
    }
}
