//! # stash-bench — experiment harness
//!
//! Shared plumbing for the per-table/per-figure benchmark targets (see
//! `benches/`): a [`Table`] emitter that prints the paper-style rows and
//! persists CSV + JSON under `results/`, plus the standard sweeps
//! (instances, batch sizes, profiler settings) used across figures.
//!
//! Every bench target is a `harness = false` binary: running
//! `cargo bench --workspace` regenerates every table and figure of the
//! paper. Set `STASH_BENCH_ITERS` to trade fidelity for speed (default
//! 12 simulated iterations per measurement).

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

pub mod chart;

use stash_core::profiler::Stash;
use stash_dnn::dataset::DatasetSpec;
use stash_dnn::model::Model;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{
    p2_16xlarge, p2_8xlarge, p2_xlarge, p3_16xlarge, p3_24xlarge, p3_2xlarge, p3_8xlarge,
};

/// Number of iterations each profiling step simulates (env
/// `STASH_BENCH_ITERS`, default 12).
#[must_use]
pub fn bench_iters() -> u64 {
    std::env::var("STASH_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
}

/// The batch sizes the paper sweeps for small models (Figs. 4-6, 8, 10 show
/// the smallest and largest: 32 and 128).
#[must_use]
pub fn small_model_batches() -> [u64; 2] {
    [32, 128]
}

/// Batch sizes for the large vision models (bounded by V100 memory).
#[must_use]
pub fn large_model_batches() -> [u64; 2] {
    [4, 32]
}

/// The P2 configurations of Figs. 4-6.
#[must_use]
pub fn p2_configs() -> Vec<ClusterSpec> {
    vec![
        ClusterSpec::single(p2_xlarge()),
        ClusterSpec::single(p2_8xlarge()),
        ClusterSpec::homogeneous(p2_8xlarge(), 2),
        ClusterSpec::single(p2_16xlarge()),
    ]
}

/// The P3 configurations of Figs. 8-12.
#[must_use]
pub fn p3_configs() -> Vec<ClusterSpec> {
    vec![
        ClusterSpec::single(p3_2xlarge()),
        ClusterSpec::single(p3_8xlarge()),
        ClusterSpec::homogeneous(p3_8xlarge(), 2),
        ClusterSpec::single(p3_16xlarge()),
        ClusterSpec::single(p3_24xlarge()),
    ]
}

/// A profiler tuned for benchmark runs: the right dataset per model and
/// the benchmark iteration budget.
#[must_use]
pub fn bench_stash(model: Model, batch: u64) -> Stash {
    let dataset = if model.name.starts_with("BERT") {
        DatasetSpec::squad2()
    } else {
        DatasetSpec::imagenet1k()
    };
    Stash::new(model)
        .with_batch(batch)
        .with_dataset(dataset)
        .with_sampled_iterations(bench_iters())
}

/// Formats an optional percentage.
#[must_use]
pub fn pct(p: Option<f64>) -> String {
    p.map_or_else(|| "-".into(), |v| format!("{v:.1}"))
}

/// Locates the repository `results/` directory.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// A printable, persistable experiment table.
#[derive(Debug)]
pub struct Table {
    name: String,
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table named `name` (the file stem under `results/`).
    #[must_use]
    pub fn new(name: &str, title: &str, columns: &[&str]) -> Table {
        Table {
            name: name.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| (*c).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of rows so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders a bar chart of `value_col` (numeric) keyed by the
    /// concatenation of `label_cols` — a terminal stand-in for the paper's
    /// figure panel.
    ///
    /// # Panics
    ///
    /// Panics on unknown column names.
    #[must_use]
    pub fn to_bar_chart(&self, label_cols: &[&str], value_col: &str) -> String {
        let vi = self
            .columns
            .iter()
            .position(|c| c == value_col)
            .expect("unknown value column");
        let lis: Vec<usize> = label_cols
            .iter()
            .map(|lc| self.columns.iter().position(|c| c == *lc).expect("unknown label column"))
            .collect();
        let rows: Vec<(String, f64)> = self
            .rows
            .iter()
            .filter_map(|r| {
                let value: f64 = r[vi].parse().ok()?;
                let label = lis.iter().map(|i| r[*i].as_str()).collect::<Vec<_>>().join(" ");
                Some((label, value))
            })
            .collect();
        chart::bar_chart(&format!("{} — {}", self.title, value_col), &rows, 40)
    }

    /// Prints the table and writes `results/<name>.csv` and `.json`.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors (benchmarks should fail loudly).
    pub fn finish(&self) {
        // Pretty print.
        let widths: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(c.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        println!("\n== {} — {} ==", self.name, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", header.join("  "));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("{}", line.join("  "));
        }

        // CSV.
        let csv_path = results_dir().join(format!("{}.csv", self.name));
        let mut csv = fs::File::create(&csv_path).expect("create csv");
        writeln!(csv, "{}", self.columns.join(",")).expect("write csv");
        for row in &self.rows {
            writeln!(csv, "{}", row.join(",")).expect("write csv");
        }

        // JSON.
        let json_rows: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|row| {
                let obj: serde_json::Map<String, serde_json::Value> = self
                    .columns
                    .iter()
                    .zip(row)
                    .map(|(c, v)| (c.clone(), serde_json::Value::String(v.clone())))
                    .collect();
                serde_json::Value::Object(obj)
            })
            .collect();
        let json_path = results_dir().join(format!("{}.json", self.name));
        fs::write(
            json_path,
            serde_json::to_string_pretty(&serde_json::json!({
                "experiment": self.name,
                "title": self.title,
                "rows": json_rows,
            }))
            .expect("serialize"),
        )
        .expect("write json");
        println!("[written: results/{}.csv, results/{}.json]", self.name, self.name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trip() {
        let mut t = Table::new("unit_test_table", "test", &["a", "b"]);
        t.row(vec!["1", "2"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        t.finish();
        let csv = std::fs::read_to_string(results_dir().join("unit_test_table.csv")).unwrap();
        assert!(csv.contains("a,b"));
        let _ = std::fs::remove_file(results_dir().join("unit_test_table.csv"));
        let _ = std::fs::remove_file(results_dir().join("unit_test_table.json"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", "y", &["a", "b"]);
        t.row(vec!["1"]);
    }

    #[test]
    fn table_renders_bar_charts() {
        let mut t = Table::new("chart_test", "test", &["config", "stall"]);
        t.row(vec!["a", "10.0"]);
        t.row(vec!["b", "20.0"]);
        let c = t.to_bar_chart(&["config"], "stall");
        assert!(c.contains('a') && c.contains("20.0"));
    }

    #[test]
    fn sweeps_have_expected_sizes() {
        assert_eq!(p2_configs().len(), 4);
        assert_eq!(p3_configs().len(), 5);
        assert!(bench_iters() >= 1);
    }
}
