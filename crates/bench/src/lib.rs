//! # stash-bench — experiment harness
//!
//! Shared plumbing for the per-table/per-figure benchmark targets (see
//! `benches/`): a [`Table`] emitter that prints the paper-style rows and
//! persists CSV + JSON under `results/`, plus the standard sweeps
//! (instances, batch sizes, profiler settings) used across figures.
//!
//! Every bench target is a `harness = false` binary: running
//! `cargo bench --workspace` regenerates every table and figure of the
//! paper. Set `STASH_BENCH_ITERS` to trade fidelity for speed (default
//! 12 simulated iterations per measurement).

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

pub mod chart;

use stash_core::cache::MeasurementCache;
use stash_core::error::ProfileError;
use stash_core::profiler::{par_profile_many, profile_threads, ProfileJob, Stash};
use stash_core::report::StallReport;
use stash_dnn::dataset::DatasetSpec;
use stash_dnn::model::Model;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{
    p2_16xlarge, p2_8xlarge, p2_xlarge, p3_16xlarge, p3_24xlarge, p3_2xlarge, p3_8xlarge,
};
use stash_trace::rollup::StallRollup;
use stash_trace::span::{Category, Track};

/// Number of iterations each profiling step simulates (env
/// `STASH_BENCH_ITERS`, default 12).
#[must_use]
pub fn bench_iters() -> u64 {
    std::env::var("STASH_BENCH_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12)
}

/// The batch sizes the paper sweeps for small models (Figs. 4-6, 8, 10 show
/// the smallest and largest: 32 and 128).
#[must_use]
pub fn small_model_batches() -> [u64; 2] {
    [32, 128]
}

/// Batch sizes for the large vision models (bounded by V100 memory).
#[must_use]
pub fn large_model_batches() -> [u64; 2] {
    [4, 32]
}

/// The P2 configurations of Figs. 4-6.
#[must_use]
pub fn p2_configs() -> Vec<ClusterSpec> {
    vec![
        ClusterSpec::single(p2_xlarge()),
        ClusterSpec::single(p2_8xlarge()),
        ClusterSpec::homogeneous(p2_8xlarge(), 2),
        ClusterSpec::single(p2_16xlarge()),
    ]
}

/// The P3 configurations of Figs. 8-12.
#[must_use]
pub fn p3_configs() -> Vec<ClusterSpec> {
    vec![
        ClusterSpec::single(p3_2xlarge()),
        ClusterSpec::single(p3_8xlarge()),
        ClusterSpec::homogeneous(p3_8xlarge(), 2),
        ClusterSpec::single(p3_16xlarge()),
        ClusterSpec::single(p3_24xlarge()),
    ]
}

/// A profiler tuned for benchmark runs: the right dataset per model and
/// the benchmark iteration budget.
#[must_use]
pub fn bench_stash(model: Model, batch: u64) -> Stash {
    let dataset = if model.name.starts_with("BERT") {
        DatasetSpec::squad2()
    } else {
        DatasetSpec::imagenet1k()
    };
    Stash::new(model)
        .with_batch(batch)
        .with_dataset(dataset)
        .with_sampled_iterations(bench_iters())
}

/// One sweep point: a configured profiler aimed at one cluster.
#[derive(Debug, Clone)]
pub struct SweepJob {
    /// The configured profiler (model, batch, dataset, iterations).
    pub stash: Stash,
    /// The cluster to characterize.
    pub cluster: ClusterSpec,
}

impl SweepJob {
    /// Builds a sweep point from the standard bench profiler settings.
    #[must_use]
    pub fn new(model: Model, batch: u64, cluster: ClusterSpec) -> SweepJob {
        SweepJob {
            stash: bench_stash(model, batch),
            cluster,
        }
    }
}

/// How a sweep performed: wall-clock, cache effectiveness, and (when the
/// serial baseline was measured) the speedup over the seed's
/// one-profile-at-a-time, uncached execution.
#[derive(Debug, Clone)]
pub struct SweepPerf {
    /// Wall-clock seconds for the parallel, cached sweep.
    pub wall_secs: f64,
    /// Wall-clock seconds for the serial uncached baseline, when measured
    /// (`STASH_BENCH_BASELINE=1`).
    pub serial_secs: Option<f64>,
    /// `serial_secs / wall_secs`, when the baseline was measured.
    pub speedup: Option<f64>,
    /// Wall-clock seconds for a cache-warm re-sweep (every measurement
    /// served from the cache), when the baseline was measured.
    pub warm_secs: Option<f64>,
    /// `serial_secs / warm_secs`: the memoization speedup a warm
    /// characterization database delivers over re-simulating from scratch.
    pub warm_speedup: Option<f64>,
    /// Measurement-cache hits during the sweep.
    pub cache_hits: u64,
    /// Measurement-cache misses (engine runs) during the sweep.
    pub cache_misses: u64,
    /// Worker threads used.
    pub threads: usize,
    /// Number of profile jobs in the sweep.
    pub jobs: usize,
    /// Full water-filling solves performed by the flow solver during the
    /// sweep (see [`stash_ddl::perf_stats`]).
    pub full_recomputes: u64,
    /// Network state changes the solver settled with incremental
    /// shortcuts instead of a full solve.
    pub shortcut_events: u64,
    /// Iterations extended analytically by steady-state fast-forward
    /// rather than simulated event-by-event.
    pub fast_forwarded_iterations: u64,
    /// Discrete events delivered by engine event queues.
    pub sim_events: u64,
}

impl SweepPerf {
    /// Cache hit fraction in `[0, 1]`.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Renders the sweep record in the Prometheus text exposition format
    /// (the same `stash_*` families `stash trace` dumps), so sweeps and
    /// traces can be scraped side by side.
    #[must_use]
    pub fn prometheus(&self) -> String {
        let mut b = stash_telemetry::prom::MetricsBuilder::new();
        b.family(
            "stash_measurement_cache_hits_total",
            "counter",
            "Profiler measurement-cache hits during the sweep.",
        );
        b.sample(
            "stash_measurement_cache_hits_total",
            &[],
            self.cache_hits as f64,
        );
        b.family(
            "stash_measurement_cache_misses_total",
            "counter",
            "Profiler measurement-cache misses (engine runs) during the sweep.",
        );
        b.sample(
            "stash_measurement_cache_misses_total",
            &[],
            self.cache_misses as f64,
        );
        b.family(
            "stash_sweep_jobs_total",
            "counter",
            "Profile jobs executed by the sweep.",
        );
        b.sample("stash_sweep_jobs_total", &[], self.jobs as f64);
        b.family(
            "stash_sweep_wall_seconds",
            "gauge",
            "Wall-clock seconds for the parallel, cached sweep.",
        );
        b.sample("stash_sweep_wall_seconds", &[], self.wall_secs);
        b.family(
            "stash_sweep_threads",
            "gauge",
            "Worker threads used by the sweep.",
        );
        b.sample("stash_sweep_threads", &[], self.threads as f64);
        b.family(
            "stash_solver_full_recomputes_total",
            "counter",
            "Full water-filling solves performed by the flow solver.",
        );
        b.sample(
            "stash_solver_full_recomputes_total",
            &[],
            self.full_recomputes as f64,
        );
        b.family(
            "stash_solver_shortcut_events_total",
            "counter",
            "Network state changes settled by incremental shortcuts.",
        );
        b.sample(
            "stash_solver_shortcut_events_total",
            &[],
            self.shortcut_events as f64,
        );
        b.family(
            "stash_fast_forwarded_iterations_total",
            "counter",
            "Iterations extended analytically by steady-state fast-forward.",
        );
        b.sample(
            "stash_fast_forwarded_iterations_total",
            &[],
            self.fast_forwarded_iterations as f64,
        );
        b.family(
            "stash_sim_events_total",
            "counter",
            "Discrete events delivered by engine event queues.",
        );
        b.sample("stash_sim_events_total", &[], self.sim_events as f64);
        b.finish()
    }
}

/// Profiles every job across all cores with measurement memoization,
/// returning per-job results (in input order) plus the sweep's
/// performance record.
///
/// With `STASH_BENCH_BASELINE=1` the sweep is additionally re-run the
/// seed way — serially, uncached — to measure the speedup, and the two
/// result sets are asserted bit-identical (the determinism contract).
///
/// # Panics
///
/// Panics if the baseline comparison finds any divergence.
#[must_use]
pub fn run_sweep(jobs: Vec<SweepJob>) -> (Vec<Result<StallReport, ProfileError>>, SweepPerf) {
    let profile_jobs: Vec<ProfileJob> = jobs
        .iter()
        .map(|j| ProfileJob {
            stash: j.stash.clone(),
            cluster: j.cluster.clone(),
        })
        .collect();

    let cache = MeasurementCache::new();
    let perf_before = stash_ddl::perf_stats::snapshot();
    let started = Instant::now();
    let results = par_profile_many(&profile_jobs, Some(&cache));
    let wall_secs = started.elapsed().as_secs_f64();
    let stats = cache.stats();
    // Solver/fast-forward activity attributed to this sweep only (the
    // counters are process-wide monotonic atomics).
    let solver = stash_ddl::perf_stats::snapshot().since(&perf_before);

    let (serial_secs, speedup, warm_secs, warm_speedup) =
        if std::env::var("STASH_BENCH_BASELINE").is_ok_and(|v| v == "1") {
            let started = Instant::now();
            let baseline: Vec<Result<StallReport, ProfileError>> = profile_jobs
                .iter()
                .map(|j| j.stash.profile_serial(&j.cluster))
                .collect();
            let secs = started.elapsed().as_secs_f64();
            for (i, (fast, slow)) in results.iter().zip(&baseline).enumerate() {
                assert_eq!(
                    fast.as_ref().ok(),
                    slow.as_ref().ok(),
                    "job {i}: parallel+cached result diverged from serial baseline"
                );
            }
            // Warm re-sweep: the cache now holds every measurement, so this
            // is the "characterization database already paid for" case the
            // paper argues for — no simulation, only report assembly.
            let started = Instant::now();
            let warm = par_profile_many(&profile_jobs, Some(&cache));
            let wsecs = started.elapsed().as_secs_f64();
            for (i, (fast, rewarm)) in results.iter().zip(&warm).enumerate() {
                assert_eq!(
                    fast.as_ref().ok(),
                    rewarm.as_ref().ok(),
                    "job {i}: cache-warm result diverged from first sweep"
                );
            }
            (
                Some(secs),
                Some(secs / wall_secs.max(1e-9)),
                Some(wsecs),
                Some(secs / wsecs.max(1e-9)),
            )
        } else {
            (None, None, None, None)
        };

    let perf = SweepPerf {
        wall_secs,
        serial_secs,
        speedup,
        warm_secs,
        warm_speedup,
        cache_hits: stats.hits,
        cache_misses: stats.misses,
        threads: profile_threads(),
        jobs: jobs.len(),
        full_recomputes: solver.full_recomputes,
        shortcut_events: solver.shortcut_events,
        fast_forwarded_iterations: solver.fast_forwarded_iterations,
        sim_events: solver.sim_events,
    };
    let mut prom_text = perf.prometheus();
    if stash_telemetry::enabled() {
        // The registry families are disjoint from the sweep families, so
        // the concatenation is still one valid exposition.
        prom_text.push_str(&stash_telemetry::snapshot::Snapshot::take().render_prom());
    }
    if let Err(e) = stash_telemetry::prom::validate(&prom_text) {
        panic!("sweep metrics failed exposition validation: {e}");
    }
    let prom_path = results_dir().join("sweep_metrics.prom");
    if let Err(e) = fs::write(&prom_path, prom_text) {
        eprintln!("[warn: could not write {}: {e}]", prom_path.display());
    }
    println!(
        "[sweep: {} jobs in {:.3}s on {} threads, cache {}/{} hits ({:.0}%){}]",
        perf.jobs,
        perf.wall_secs,
        perf.threads,
        perf.cache_hits,
        perf.cache_hits + perf.cache_misses,
        perf.hit_rate() * 100.0,
        perf.speedup
            .map_or_else(String::new, |s| format!(", {s:.1}x over serial uncached")),
    );
    if let (Some(w), Some(s)) = (perf.warm_secs, perf.warm_speedup) {
        println!("[sweep warm re-run: {w:.3}s, {s:.0}x over serial uncached]");
    }
    (results, perf)
}

/// Folds profiled stall breakdowns into one [`StallRollup`], using the
/// same `(track, category)` placement a traced run produces: compute and
/// the exposed interconnect / network / fetch stalls land on the rank-0
/// GPU lane, CPU prep on the loader lane. The figure harnesses attach
/// the result via [`Table::set_rollup`] so every `results/fig*.csv`
/// gains a machine-readable `_rollup.json` sibling.
#[must_use]
pub fn rollup_from_reports<'a, I>(reports: I) -> StallRollup
where
    I: IntoIterator<Item = &'a StallReport>,
{
    let mut rollup = StallRollup::default();
    let gpu = Track::gpu(0, 0);
    let loader = Track::loader(0, 0);
    for r in reports {
        for (track, category, stall) in [
            (gpu, Category::Compute, r.times.t1),
            (gpu, Category::Interconnect, r.interconnect_stall()),
            (gpu, Category::Network, r.network_stall()),
            (loader, Category::Prep, r.cpu_stall()),
            (gpu, Category::Fetch, r.disk_stall()),
        ] {
            if let Some(d) = stall {
                rollup.add_span_ns(track, category, d.as_nanos());
            }
        }
    }
    rollup
}

/// Formats an optional percentage.
#[must_use]
pub fn pct(p: Option<f64>) -> String {
    p.map_or_else(|| "-".into(), |v| format!("{v:.1}"))
}

/// Locates the repository `results/` directory.
#[must_use]
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    if let Err(e) = fs::create_dir_all(&dir) {
        panic!("cannot create results dir {}: {e}", dir.display());
    }
    dir
}

/// A printable, persistable experiment table.
#[derive(Debug)]
pub struct Table {
    name: String,
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
    perf: Option<SweepPerf>,
    rollup: Option<StallRollup>,
}

impl Table {
    /// Starts a table named `name` (the file stem under `results/`).
    #[must_use]
    pub fn new(name: &str, title: &str, columns: &[&str]) -> Table {
        Table {
            name: name.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|c| (*c).to_string()).collect(),
            rows: Vec::new(),
            perf: None,
            rollup: None,
        }
    }

    /// Attaches the sweep's performance record; it is emitted as a `perf`
    /// object in the results JSON.
    pub fn set_perf(&mut self, perf: SweepPerf) {
        self.perf = Some(perf);
    }

    /// Attaches the sweep's per-category stall rollup; it is written as
    /// `results/<name>_rollup.json` alongside the CSV when the table
    /// finishes.
    pub fn set_rollup(&mut self, rollup: StallRollup) {
        self.rollup = Some(rollup);
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity differs from the header.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.columns.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of rows so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when no rows have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders a bar chart of `value_col` (numeric) keyed by the
    /// concatenation of `label_cols` — a terminal stand-in for the paper's
    /// figure panel.
    ///
    /// # Panics
    ///
    /// Panics on unknown column names.
    #[must_use]
    pub fn to_bar_chart(&self, label_cols: &[&str], value_col: &str) -> String {
        let Some(vi) = self.columns.iter().position(|c| c == value_col) else {
            panic!("unknown value column '{value_col}'")
        };
        let lis: Vec<usize> = label_cols
            .iter()
            .map(|lc| match self.columns.iter().position(|c| c == *lc) {
                Some(i) => i,
                None => panic!("unknown label column '{lc}'"),
            })
            .collect();
        let rows: Vec<(String, f64)> = self
            .rows
            .iter()
            .filter_map(|r| {
                let value: f64 = r[vi].parse().ok()?;
                let label = lis
                    .iter()
                    .map(|i| r[*i].as_str())
                    .collect::<Vec<_>>()
                    .join(" ");
                Some((label, value))
            })
            .collect();
        chart::bar_chart(&format!("{} — {}", self.title, value_col), &rows, 40)
    }

    /// Prints the table and writes `results/<name>.csv` and `.json`.
    ///
    /// # Panics
    ///
    /// Panics on I/O errors (benchmarks should fail loudly).
    pub fn finish(&self) {
        // Pretty print.
        let widths: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(c.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        println!("\n== {} — {} ==", self.name, self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        println!("{}", header.join("  "));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("{}", line.join("  "));
        }

        // CSV.
        let csv_path = results_dir().join(format!("{}.csv", self.name));
        let mut csv_text = self.columns.join(",");
        csv_text.push('\n');
        for row in &self.rows {
            csv_text.push_str(&row.join(","));
            csv_text.push('\n');
        }
        if let Err(e) = fs::write(&csv_path, csv_text) {
            panic!("cannot write {}: {e}", csv_path.display());
        }

        // JSON.
        let json_rows: Vec<serde_json::Value> = self
            .rows
            .iter()
            .map(|row| {
                let obj: serde_json::Map<String, serde_json::Value> = self
                    .columns
                    .iter()
                    .zip(row)
                    .map(|(c, v)| (c.clone(), serde_json::Value::String(v.clone())))
                    .collect();
                serde_json::Value::Object(obj)
            })
            .collect();
        let json_path = results_dir().join(format!("{}.json", self.name));
        let mut doc = serde_json::Map::new();
        doc.insert(
            "experiment".to_string(),
            serde_json::Value::String(self.name.clone()),
        );
        doc.insert(
            "title".to_string(),
            serde_json::Value::String(self.title.clone()),
        );
        doc.insert("rows".to_string(), serde_json::Value::Array(json_rows));
        if let Some(perf) = &self.perf {
            doc.insert(
                "perf".to_string(),
                serde_json::json!({
                    "wall_secs": perf.wall_secs,
                    "serial_secs": perf.serial_secs,
                    "speedup": perf.speedup,
                    "warm_secs": perf.warm_secs,
                    "warm_speedup": perf.warm_speedup,
                    "cache_hits": perf.cache_hits,
                    "cache_misses": perf.cache_misses,
                    "cache_hit_rate": perf.hit_rate(),
                    "threads": perf.threads as u64,
                    "jobs": perf.jobs as u64,
                    "full_recomputes": perf.full_recomputes,
                    "shortcut_events": perf.shortcut_events,
                    "fast_forwarded_iterations": perf.fast_forwarded_iterations,
                    "sim_events": perf.sim_events,
                }),
            );
        }
        let json_text = match serde_json::to_string_pretty(&serde_json::Value::Object(doc)) {
            Ok(t) => t,
            Err(e) => panic!("cannot serialize {}: {e}", self.name),
        };
        if let Err(e) = fs::write(&json_path, json_text) {
            panic!("cannot write {}: {e}", json_path.display());
        }

        if let Some(rollup) = &self.rollup {
            let rollup_path = results_dir().join(format!("{}_rollup.json", self.name));
            let rollup_text = match serde_json::to_string_pretty(&rollup.to_json()) {
                Ok(t) => t,
                Err(e) => panic!("cannot serialize {} rollup: {e}", self.name),
            };
            if let Err(e) = fs::write(&rollup_path, rollup_text) {
                panic!("cannot write {}: {e}", rollup_path.display());
            }
            println!(
                "[written: results/{0}.csv, results/{0}.json, results/{0}_rollup.json]",
                self.name
            );
        } else {
            println!("[written: results/{0}.csv, results/{0}.json]", self.name);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trip() {
        let mut t = Table::new("unit_test_table", "test", &["a", "b"]);
        t.row(vec!["1", "2"]);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        t.finish();
        let csv = std::fs::read_to_string(results_dir().join("unit_test_table.csv")).unwrap();
        assert!(csv.contains("a,b"));
        let _ = std::fs::remove_file(results_dir().join("unit_test_table.csv"));
        let _ = std::fs::remove_file(results_dir().join("unit_test_table.json"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("x", "y", &["a", "b"]);
        t.row(vec!["1"]);
    }

    #[test]
    fn table_renders_bar_charts() {
        let mut t = Table::new("chart_test", "test", &["config", "stall"]);
        t.row(vec!["a", "10.0"]);
        t.row(vec!["b", "20.0"]);
        let c = t.to_bar_chart(&["config"], "stall");
        assert!(c.contains('a') && c.contains("20.0"));
    }

    #[test]
    fn sweep_perf_prometheus_exposes_cache_counters() {
        let perf = SweepPerf {
            wall_secs: 1.5,
            serial_secs: None,
            speedup: None,
            warm_secs: None,
            warm_speedup: None,
            cache_hits: 42,
            cache_misses: 7,
            threads: 4,
            jobs: 9,
            full_recomputes: 11,
            shortcut_events: 1_000,
            fast_forwarded_iterations: 640,
            sim_events: 5_000,
        };
        let text = perf.prometheus();
        stash_telemetry::prom::validate(&text).unwrap();
        assert!(text.contains("stash_measurement_cache_hits_total 42"));
        assert!(text.contains("stash_measurement_cache_misses_total 7"));
        assert!(text.contains("stash_sweep_jobs_total 9"));
        assert!(text.contains("# TYPE stash_sweep_wall_seconds gauge"));
        assert!(text.contains("stash_solver_full_recomputes_total 11"));
        assert!(text.contains("stash_solver_shortcut_events_total 1000"));
        assert!(text.contains("stash_fast_forwarded_iterations_total 640"));
        assert!(text.contains("stash_sim_events_total 5000"));
    }

    #[test]
    fn rollup_json_is_written_next_to_the_table() {
        let mut t = Table::new("unit_test_rollup_table", "test", &["a"]);
        t.row(vec!["1"]);
        let mut rollup = StallRollup::default();
        rollup.add_span_ns(Track::gpu(0, 0), Category::Compute, 123);
        t.set_rollup(rollup);
        t.finish();
        let path = results_dir().join("unit_test_rollup_table_rollup.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("stash-rollup-v1"));
        assert!(text.contains("compute"));
        for suffix in [".csv", ".json", "_rollup.json"] {
            let _ =
                std::fs::remove_file(results_dir().join(format!("unit_test_rollup_table{suffix}")));
        }
    }

    #[test]
    fn sweeps_have_expected_sizes() {
        assert_eq!(p2_configs().len(), 4);
        assert_eq!(p3_configs().len(), 5);
        assert!(bench_iters() >= 1);
    }
}
