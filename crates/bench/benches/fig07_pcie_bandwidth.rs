//! Fig. 7: per-GPU PCIe bandwidth measured on P2 instances with all GPUs
//! probing concurrently. Expected shape: xlarge > 8xlarge > 16xlarge — the
//! 16xlarge "slices" the shared host fabric 16 ways.

use stash_bench::Table;
use stash_flowsim::net::FlowNet;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{p2_16xlarge, p2_8xlarge, p2_xlarge};
use stash_hwtopo::topology::Topology;

fn main() {
    let mut t = Table::new(
        "fig07_pcie_bandwidth",
        "Per-GPU PCIe bandwidth on P2 (paper Fig. 7)",
        &["instance", "gpus_probing", "per_gpu_gbps"],
    );
    let mut seen = Vec::new();
    for inst in [p2_xlarge(), p2_8xlarge(), p2_16xlarge()] {
        let mut net = FlowNet::new();
        let topo = Topology::build(&ClusterSpec::single(inst.clone()), &mut net);
        let rates = topo.pcie_bandwidth_probe(&net, 0);
        let per_gpu = rates[0] / 1e9;
        seen.push(per_gpu);
        t.row(vec![
            inst.name,
            rates.len().to_string(),
            format!("{per_gpu:.2}"),
        ]);
    }
    assert!(
        seen[0] > seen[1] && seen[1] > seen[2],
        "Fig. 7 shape: {seen:?}"
    );
    t.finish();
    print!("{}", t.to_bar_chart(&["instance"], "per_gpu_gbps"));
    println!("shape check: per-GPU bandwidth collapses as instance size grows ✓");
}
