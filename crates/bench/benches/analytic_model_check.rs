//! §VI analytic-model check: the closed form `T = (tau + G/(L·B))·L`
//! against (a) the per-bucket collective cost under PyTorch-style 25 MB
//! bucketing (a *different* bucket structure than the per-layer one the
//! closed form assumes) and (b) the full engine's measured communication
//! stall, which overlap can only shrink.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{bench_iters, Table};
use stash_collectives::bucket::Bucketing;
use stash_core::analytic::{comm_estimate, comm_simulated, link_parameters};
use stash_core::profiler::Stash;
use stash_dnn::{synth, zoo};
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{p2_16xlarge, p3_16xlarge};

fn main() {
    let clusters = [
        ClusterSpec::single(p3_16xlarge()),
        ClusterSpec::single(p2_16xlarge()),
    ];
    let models = [
        zoo::resnet18(),
        zoo::resnet50(),
        zoo::vgg11(),
        zoo::alexnet(),
        synth::resnet(152),
    ];
    let mut t = Table::new(
        "analytic_model_check",
        "Closed-form (tau + G/(L·B))·L vs 25MB-bucket simulation and engine stall (paper §VI)",
        &[
            "cluster",
            "tau_us",
            "B_gbps",
            "model",
            "closed_form_ms",
            "bucketed_sim_ms",
            "engine_stall_ms",
            "form_vs_sim",
        ],
    );
    for cluster in &clusters {
        let p = link_parameters(cluster);
        for model in &models {
            let est = comm_estimate(cluster, model, Bucketing::PerLayer)
                .total
                .as_secs_f64();
            let sim = comm_simulated(cluster, model, Bucketing::pytorch_default()).as_secs_f64();
            // Engine-measured interconnect stall per iteration: overlap can
            // hide communication, never add any.
            let report = Stash::new(model.clone())
                .with_batch(32)
                .with_sampled_iterations(bench_iters())
                .profile(cluster)
                .expect("profile");
            let iters = 1_281_167.0 / (cluster.world_size() as f64 * 32.0);
            let engine_stall = report.interconnect_stall().map_or(0.0, |d| d.as_secs_f64()) / iters;
            let ratio = est / sim;
            t.row(vec![
                cluster.display_name(),
                format!("{:.0}", p.tau_seconds * 1e6),
                format!("{:.1}", p.bandwidth_bps / 1e9),
                model.name.clone(),
                format!("{:.2}", est * 1e3),
                format!("{:.2}", sim * 1e3),
                format!("{:.2}", engine_stall * 1e3),
                format!("{ratio:.2}"),
            ]);
            // Coarser (25 MB) buckets remove per-layer latency, so they can
            // only be cheaper than the per-layer closed form — and on
            // bandwidth-bound paths they converge to it.
            assert!(
                sim <= est * 1.05,
                "{} on {}: coarse buckets cannot cost more ({sim} vs {est})",
                model.name,
                cluster.display_name()
            );
            assert!(
                engine_stall <= est * 1.5,
                "{} on {}: exposed stall ({engine_stall}s) cannot exceed total comm ({est}s)",
                model.name,
                cluster.display_name()
            );
        }
    }
    t.finish();
    println!("shape check: closed form bounds the exposed stall and tracks coarse bucketing ✓");
}
