//! Criterion micro-benchmarks of the simulator itself: epoch simulation
//! throughput, the max-min fair solver, and communication-plan
//! construction. These track the *reproduction's* performance, not the
//! paper's results.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use stash_collectives::bucket::{Bucketing, CommPlan};
use stash_ddl::config::{EpochMode, TrainConfig};
use stash_ddl::engine::run_epoch;
use stash_dnn::zoo;
use stash_flowsim::fairness::max_min_rates;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{p3_16xlarge, p3_8xlarge};

fn bench_engine(c: &mut Criterion) {
    c.bench_function("epoch_resnet18_p3_16xlarge_5iters", |b| {
        let mut cfg = TrainConfig::synthetic(
            ClusterSpec::single(p3_16xlarge()),
            zoo::resnet18(),
            32,
            32 * 5,
        );
        cfg.epoch_mode = EpochMode::Full;
        b.iter(|| run_epoch(std::hint::black_box(&cfg)).unwrap());
    });
    c.bench_function("epoch_alexnet_2x_p3_8xlarge_5iters", |b| {
        let mut cfg = TrainConfig::synthetic(
            ClusterSpec::homogeneous(p3_8xlarge(), 2),
            zoo::alexnet(),
            32,
            32 * 5,
        );
        cfg.epoch_mode = EpochMode::Full;
        b.iter(|| run_epoch(std::hint::black_box(&cfg)).unwrap());
    });
}

fn bench_solver(c: &mut Criterion) {
    let caps: Vec<f64> = (0..32).map(|i| 1e9 + i as f64).collect();
    let routes: Vec<Vec<usize>> = (0..64).map(|i| vec![i % 32, (i * 7) % 32]).collect();
    c.bench_function("max_min_rates_32links_64flows", |b| {
        b.iter(|| max_min_rates(std::hint::black_box(&caps), std::hint::black_box(&routes)));
    });
}

fn bench_plans(c: &mut Criterion) {
    let model = zoo::resnet50();
    c.bench_function("comm_plan_resnet50_per_layer", |b| {
        b.iter(|| CommPlan::new(std::hint::black_box(&model), Bucketing::PerLayer));
    });
    c.bench_function("zoo_build_all_models", |b| {
        b.iter(zoo::all_models);
    });
}

criterion_group!(benches, bench_engine, bench_solver, bench_plans);
criterion_main!(benches);
