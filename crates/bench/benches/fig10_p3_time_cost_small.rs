//! Fig. 10: training time and cost per epoch, P3, small models.
//!
//! Expected shapes: p3.16xlarge is the most performant; p3.2xlarge the
//! most cost-optimal; the networked pair the least cost-optimal multi-GPU
//! option.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{
    p3_configs, rollup_from_reports, run_sweep, small_model_batches, SweepJob, Table,
};
use stash_core::cost::epoch_cost;
use stash_dnn::zoo;

fn main() {
    let mut t = Table::new(
        "fig10_p3_time_cost_small",
        "Training time and cost per epoch, P3, small models (paper Fig. 10)",
        &["model", "batch", "config", "epoch_s", "epoch_cost_usd"],
    );
    let mut jobs = Vec::new();
    for model in zoo::small_models() {
        for batch in small_model_batches() {
            for cluster in p3_configs() {
                jobs.push(SweepJob::new(model.clone(), batch, cluster));
            }
        }
    }
    let (results, perf) = run_sweep(jobs.clone());
    t.set_rollup(rollup_from_reports(
        results.iter().filter_map(|r| r.as_ref().ok()),
    ));

    let mut fastest_votes = std::collections::HashMap::<String, u32>::new();
    let mut cheapest_votes = std::collections::HashMap::<String, u32>::new();
    let per_point = p3_configs().len();
    for (jobs_chunk, results_chunk) in jobs.chunks(per_point).zip(results.chunks(per_point)) {
        let mut fastest: Option<(String, f64)> = None;
        let mut cheapest: Option<(String, f64)> = None;
        for (job, result) in jobs_chunk.iter().zip(results_chunk) {
            let r = result.as_ref().expect("profile");
            let bill = epoch_cost(r, &job.cluster);
            let secs = bill.epoch_time.as_secs_f64();
            if fastest.as_ref().is_none_or(|(_, s)| secs < *s) {
                fastest = Some((job.cluster.display_name(), secs));
            }
            if cheapest.as_ref().is_none_or(|(_, c)| bill.epoch_cost < *c) {
                cheapest = Some((job.cluster.display_name(), bill.epoch_cost));
            }
            t.row(vec![
                job.stash.model().name.clone(),
                job.stash.per_gpu_batch().to_string(),
                job.cluster.display_name(),
                format!("{secs:.1}"),
                format!("{:.2}", bill.epoch_cost),
            ]);
        }
        *fastest_votes.entry(fastest.unwrap().0).or_insert(0) += 1;
        *cheapest_votes.entry(cheapest.unwrap().0).or_insert(0) += 1;
    }
    t.set_perf(perf);
    t.finish();
    let f16 = fastest_votes.get("p3.16xlarge").copied().unwrap_or(0)
        + fastest_votes.get("p3.24xlarge").copied().unwrap_or(0);
    assert!(
        f16 >= 7,
        "16x/24x should usually be fastest: {fastest_votes:?}"
    );
    let c2 = cheapest_votes.get("p3.2xlarge").copied().unwrap_or(0);
    assert!(
        c2 >= 8,
        "p3.2xlarge should usually be cheapest: {cheapest_votes:?}"
    );
    println!("shape check: 16x-class fastest ({f16}/10), 2xlarge cheapest ({c2}/10) ✓");
}
