//! Fig. 4: CPU (prep) and disk (fetch) stall percentages on the P2 family,
//! small models, smallest/largest batch sizes.
//!
//! Expected shapes: CPU stalls negligible everywhere (AWS vCPUs keep up);
//! disk stalls scale with the number of data-loading workers (= GPUs per
//! instance), worst on p2.16xlarge.

use stash_bench::{bench_stash, p2_configs, pct, small_model_batches, Table};
use stash_dnn::zoo;

fn main() {
    let mut t = Table::new(
        "fig04_p2_cpu_disk",
        "CPU & disk stall % of training time, P2, small models (paper Fig. 4)",
        &["model", "batch", "config", "cpu_stall_pct", "disk_stall_pct"],
    );
    let mut worst_cpu: f64 = 0.0;
    let mut disk_8x: f64 = 0.0;
    let mut disk_16x: f64 = 0.0;
    for model in zoo::small_models() {
        for batch in small_model_batches() {
            let stash = bench_stash(model.clone(), batch);
            for cluster in p2_configs() {
                let r = stash.profile(&cluster).expect("profile");
                let cpu = r.cpu_stall_pct().unwrap_or(0.0);
                let disk = r.disk_stall_pct().unwrap_or(0.0);
                worst_cpu = worst_cpu.max(cpu);
                if cluster.display_name() == "p2.8xlarge" {
                    disk_8x += disk;
                }
                if cluster.display_name() == "p2.16xlarge" {
                    disk_16x += disk;
                }
                t.row(vec![
                    model.name.clone(),
                    batch.to_string(),
                    cluster.display_name(),
                    pct(Some(cpu)),
                    pct(Some(disk)),
                ]);
            }
        }
    }
    t.finish();
    assert!(worst_cpu < 20.0, "CPU stalls should be negligible, worst {worst_cpu}%");
    assert!(disk_16x > disk_8x, "disk stall must grow with workers: 16x {disk_16x} vs 8x {disk_8x}");
    println!("shape check: CPU negligible (max {worst_cpu:.1}%), disk stall worst on 16xlarge ✓");
}
