//! Fig. 4: CPU (prep) and disk (fetch) stall percentages on the P2 family,
//! small models, smallest/largest batch sizes.
//!
//! Expected shapes: CPU stalls negligible everywhere (AWS vCPUs keep up);
//! disk stalls scale with the number of data-loading workers (= GPUs per
//! instance), worst on p2.16xlarge.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{
    p2_configs, pct, rollup_from_reports, run_sweep, small_model_batches, SweepJob, Table,
};
use stash_dnn::zoo;

fn main() {
    let mut t = Table::new(
        "fig04_p2_cpu_disk",
        "CPU & disk stall % of training time, P2, small models (paper Fig. 4)",
        &[
            "model",
            "batch",
            "config",
            "cpu_stall_pct",
            "disk_stall_pct",
        ],
    );
    let mut jobs = Vec::new();
    for model in zoo::small_models() {
        for batch in small_model_batches() {
            for cluster in p2_configs() {
                jobs.push(SweepJob::new(model.clone(), batch, cluster));
            }
        }
    }
    let (results, perf) = run_sweep(jobs.clone());
    t.set_rollup(rollup_from_reports(
        results.iter().filter_map(|r| r.as_ref().ok()),
    ));

    let mut worst_cpu: f64 = 0.0;
    let mut disk_8x: f64 = 0.0;
    let mut disk_16x: f64 = 0.0;
    for (job, result) in jobs.iter().zip(results) {
        let r = result.expect("profile");
        let cpu = r.cpu_stall_pct().unwrap_or(0.0);
        let disk = r.disk_stall_pct().unwrap_or(0.0);
        worst_cpu = worst_cpu.max(cpu);
        if job.cluster.display_name() == "p2.8xlarge" {
            disk_8x += disk;
        }
        if job.cluster.display_name() == "p2.16xlarge" {
            disk_16x += disk;
        }
        t.row(vec![
            job.stash.model().name.clone(),
            job.stash.per_gpu_batch().to_string(),
            job.cluster.display_name(),
            pct(Some(cpu)),
            pct(Some(disk)),
        ]);
    }
    t.set_perf(perf);
    t.finish();
    assert!(
        worst_cpu < 20.0,
        "CPU stalls should be negligible, worst {worst_cpu}%"
    );
    assert!(
        disk_16x > disk_8x,
        "disk stall must grow with workers: 16x {disk_16x} vs 8x {disk_8x}"
    );
    println!("shape check: CPU negligible (max {worst_cpu:.1}%), disk stall worst on 16xlarge ✓");
}
