//! Fig. 9: CPU and disk stall % on P3 for the large models (ResNet50,
//! VGG11) and BERT-large.
//!
//! Expected shapes: CPU stall negligible; disk stall high for the 8-GPU
//! experiments on the gp2 volume; BERT's tiny SQuAD dataset produces no
//! meaningful fetch stall.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{
    large_model_batches, p3_configs, pct, rollup_from_reports, run_sweep, SweepJob, Table,
};
use stash_dnn::zoo;

fn main() {
    let mut t = Table::new(
        "fig09_p3_cpu_disk_large",
        "CPU & disk stall %, P3, large models + BERT (paper Fig. 9)",
        &[
            "model",
            "batch",
            "config",
            "cpu_stall_pct",
            "disk_stall_pct",
        ],
    );
    let mut jobs = Vec::new();
    for model in zoo::large_vision_models() {
        for batch in large_model_batches() {
            for cluster in p3_configs() {
                jobs.push(SweepJob::new(model.clone(), batch, cluster));
            }
        }
    }
    // BERT-large: batch 4 (the 16 GB limit). May legitimately fail to fit on
    // some configs, so its results stay fallible below.
    let bert_start = jobs.len();
    for cluster in p3_configs() {
        jobs.push(SweepJob::new(zoo::bert_large(), 4, cluster));
    }
    let (results, perf) = run_sweep(jobs.clone());
    t.set_rollup(rollup_from_reports(
        results.iter().filter_map(|r| r.as_ref().ok()),
    ));

    let mut worst_cpu: f64 = 0.0;
    let mut bert_disk: f64 = 0.0;
    let mut vision_disk_16x: f64 = 0.0;
    for (i, (job, result)) in jobs.iter().zip(results).enumerate() {
        if i < bert_start {
            let r = result.expect("profile");
            let cpu = r.cpu_stall_pct().unwrap_or(0.0);
            let d = r.disk_stall_pct().unwrap_or(0.0);
            worst_cpu = worst_cpu.max(cpu);
            if job.cluster.display_name() == "p3.16xlarge" {
                vision_disk_16x += d;
            }
            t.row(vec![
                job.stash.model().name.clone(),
                job.stash.per_gpu_batch().to_string(),
                job.cluster.display_name(),
                pct(Some(cpu)),
                pct(Some(d)),
            ]);
        } else {
            let r = match result {
                Ok(r) => r,
                Err(e) => {
                    t.row(vec![
                        "BERT-large".to_string(),
                        "4".to_string(),
                        job.cluster.display_name(),
                        format!("skipped: {e}"),
                        String::new(),
                    ]);
                    continue;
                }
            };
            let d = r.disk_stall_pct().unwrap_or(0.0);
            bert_disk = bert_disk.max(d);
            t.row(vec![
                "BERT-large".to_string(),
                "4".to_string(),
                job.cluster.display_name(),
                pct(r.cpu_stall_pct()),
                pct(Some(d)),
            ]);
        }
    }
    t.set_perf(perf);
    t.finish();
    assert!(worst_cpu < 20.0, "CPU stall negligible, got {worst_cpu}%");
    assert!(
        vision_disk_16x > 0.0,
        "8-GPU vision runs must show fetch stalls"
    );
    assert!(
        bert_disk < 5.0,
        "SQuAD is tiny; BERT disk stall was {bert_disk}%"
    );
    println!("shape check: CPU negligible, vision disk stalls on 8-GPU configs, BERT none ✓");
}
