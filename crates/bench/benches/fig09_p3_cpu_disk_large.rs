//! Fig. 9: CPU and disk stall % on P3 for the large models (ResNet50,
//! VGG11) and BERT-large.
//!
//! Expected shapes: CPU stall negligible; disk stall high for the 8-GPU
//! experiments on the gp2 volume; BERT's tiny SQuAD dataset produces no
//! meaningful fetch stall.

use stash_bench::{bench_stash, large_model_batches, p3_configs, pct, Table};
use stash_dnn::zoo;

fn main() {
    let mut t = Table::new(
        "fig09_p3_cpu_disk_large",
        "CPU & disk stall %, P3, large models + BERT (paper Fig. 9)",
        &["model", "batch", "config", "cpu_stall_pct", "disk_stall_pct"],
    );
    let mut worst_cpu: f64 = 0.0;
    let mut bert_disk: f64 = 0.0;
    let mut vision_disk_16x: f64 = 0.0;
    for model in zoo::large_vision_models() {
        for batch in large_model_batches() {
            let stash = bench_stash(model.clone(), batch);
            for cluster in p3_configs() {
                let r = stash.profile(&cluster).expect("profile");
                let cpu = r.cpu_stall_pct().unwrap_or(0.0);
                let d = r.disk_stall_pct().unwrap_or(0.0);
                worst_cpu = worst_cpu.max(cpu);
                if cluster.display_name() == "p3.16xlarge" {
                    vision_disk_16x += d;
                }
                t.row(vec![
                    model.name.clone(),
                    batch.to_string(),
                    cluster.display_name(),
                    pct(Some(cpu)),
                    pct(Some(d)),
                ]);
            }
        }
    }
    // BERT-large: batch 4 (the 16 GB limit).
    let stash = bench_stash(zoo::bert_large(), 4);
    for cluster in p3_configs() {
        let r = match stash.profile(&cluster) {
            Ok(r) => r,
            Err(e) => {
                t.row(vec![
                    "BERT-large".to_string(),
                    "4".to_string(),
                    cluster.display_name(),
                    format!("skipped: {e}"),
                    String::new(),
                ]);
                continue;
            }
        };
        let d = r.disk_stall_pct().unwrap_or(0.0);
        bert_disk = bert_disk.max(d);
        t.row(vec![
            "BERT-large".to_string(),
            "4".to_string(),
            cluster.display_name(),
            pct(r.cpu_stall_pct()),
            pct(Some(d)),
        ]);
    }
    t.finish();
    assert!(worst_cpu < 20.0, "CPU stall negligible, got {worst_cpu}%");
    assert!(vision_disk_16x > 0.0, "8-GPU vision runs must show fetch stalls");
    assert!(bert_disk < 5.0, "SQuAD is tiny; BERT disk stall was {bert_disk}%");
    println!("shape check: CPU negligible, vision disk stalls on 8-GPU configs, BERT none ✓");
}
