//! Fig. 5: interconnect stall % for small models on P2 (a) and P3 (b).
//!
//! For single instances this is the paper's `(T2-T1)/T1`; for the
//! networked pairs (the `*2` configurations in the figure's legend) the
//! communication stall vs a single GPU is `(T5-T1)/T1`.
//!
//! Expected shapes: p2.16xlarge worst in P2 (PCIe contention);
//! p3.8xlarge anomalously high in P3 (sub-optimal crossbar slice).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{pct, rollup_from_reports, run_sweep, small_model_batches, SweepJob, Table};
use stash_dnn::zoo;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{p2_16xlarge, p2_8xlarge, p3_16xlarge, p3_8xlarge};

fn comm_stall_vs_single_gpu(r: &stash_core::report::StallReport) -> Option<f64> {
    let t1 = r.times.t1?;
    let multi = r.times.t5.or(r.times.t2)?;
    Some(multi.saturating_sub(t1).ratio(t1) * 100.0)
}

fn main() {
    let configs = [
        ("P2", ClusterSpec::single(p2_8xlarge())),
        ("P2", ClusterSpec::homogeneous(p2_8xlarge(), 2)),
        ("P2", ClusterSpec::single(p2_16xlarge())),
        ("P3", ClusterSpec::single(p3_8xlarge())),
        ("P3", ClusterSpec::homogeneous(p3_8xlarge(), 2)),
        ("P3", ClusterSpec::single(p3_16xlarge())),
    ];
    let mut t = Table::new(
        "fig05_ic_small",
        "Interconnect/communication stall %, small models (paper Fig. 5)",
        &["family", "model", "batch", "config", "comm_stall_pct"],
    );
    let mut jobs = Vec::new();
    let mut families = Vec::new();
    for model in zoo::small_models() {
        for batch in small_model_batches() {
            for (family, cluster) in &configs {
                jobs.push(SweepJob::new(model.clone(), batch, cluster.clone()));
                families.push(*family);
            }
        }
    }
    let (results, perf) = run_sweep(jobs.clone());
    t.set_rollup(rollup_from_reports(
        results.iter().filter_map(|r| r.as_ref().ok()),
    ));

    let mut stalls: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    for ((job, family), result) in jobs.iter().zip(families).zip(results) {
        let r = result.expect("profile");
        let s = comm_stall_vs_single_gpu(&r).unwrap_or(0.0);
        *stalls.entry(job.cluster.display_name()).or_insert(0.0) += s;
        t.row(vec![
            family.to_string(),
            job.stash.model().name.clone(),
            job.stash.per_gpu_batch().to_string(),
            job.cluster.display_name(),
            pct(Some(s)),
        ]);
    }
    t.set_perf(perf);
    t.finish();
    assert!(
        stalls["p2.16xlarge"] > stalls["p2.8xlarge"],
        "p2.16xlarge must stall worst: {stalls:?}"
    );
    assert!(
        stalls["p3.8xlarge"] > stalls["p3.16xlarge"],
        "p3.8xlarge slicing anomaly: {stalls:?}"
    );
    println!("shape check: p2.16xlarge worst (PCIe slicing), p3.8xlarge > p3.16xlarge (crossbar slice) ✓");
}
