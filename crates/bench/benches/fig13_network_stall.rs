//! Fig. 13: network stall of two networked p3.8xlarge instances across
//! batch sizes 4-32.
//!
//! Expected shape: stalls in the hundreds of percent ("as high as 500%"),
//! monotonically falling as the batch grows (compute grows, gradient
//! volume does not).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{pct, rollup_from_reports, run_sweep, SweepJob, Table};
use stash_dnn::zoo;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::p3_8xlarge;

fn main() {
    let mut t = Table::new(
        "fig13_network_stall",
        "Network stall % of 2x p3.8xlarge vs batch size (paper Fig. 13)",
        &["model", "batch", "nw_stall_pct"],
    );
    let cluster = ClusterSpec::homogeneous(p3_8xlarge(), 2);
    let batches = [4_u64, 8, 16, 32];
    let mut jobs = Vec::new();
    for model in [zoo::resnet50(), zoo::vgg11()] {
        for batch in batches {
            jobs.push(SweepJob::new(model.clone(), batch, cluster.clone()));
        }
    }
    let (results, perf) = run_sweep(jobs.clone());
    t.set_rollup(rollup_from_reports(
        results.iter().filter_map(|r| r.as_ref().ok()),
    ));

    let mut peak: f64 = 0.0;
    for (jobs_chunk, results_chunk) in jobs
        .chunks(batches.len())
        .zip(results.chunks(batches.len()))
    {
        let mut series = Vec::new();
        for (job, result) in jobs_chunk.iter().zip(results_chunk) {
            let r = result.as_ref().expect("profile");
            let nw = r.network_stall_pct().unwrap_or(0.0);
            peak = peak.max(nw);
            series.push(nw);
            t.row(vec![
                job.stash.model().name.clone(),
                job.stash.per_gpu_batch().to_string(),
                pct(Some(nw)),
            ]);
        }
        assert!(
            series.windows(2).all(|w| w[0] >= w[1] * 0.95),
            "{}: stall must fall with batch: {series:?}",
            jobs_chunk[0].stash.model().name
        );
    }
    t.set_perf(perf);
    t.finish();
    print!("{}", t.to_bar_chart(&["model", "batch"], "nw_stall_pct"));
    assert!(
        peak > 300.0,
        "network stalls reach hundreds of percent, peak {peak}%"
    );
    println!("shape check: network stall up to {peak:.0}% and falling with batch size ✓");
}
