//! Ablation: ring vs tree vs parameter-server collectives across the
//! network — reproducing the related-work claim (paper §III) that PS
//! communication performance "is strictly less than all-reduce".

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{bench_iters, Table};
use stash_collectives::schedule::Algorithm;
use stash_core::profiler::Stash;
use stash_dnn::zoo;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::p3_8xlarge;

fn main() {
    let mut t = Table::new(
        "ablation_allreduce",
        "Collective algorithm ablation on 2x p3.8xlarge (paper §III PS claim)",
        &["model", "algorithm", "epoch_s", "nw_stall_pct"],
    );
    let cluster = ClusterSpec::homogeneous(p3_8xlarge(), 2);
    for model in [zoo::resnet18(), zoo::vgg11()] {
        let mut times = std::collections::HashMap::new();
        for algo in [Algorithm::Ring, Algorithm::Tree, Algorithm::ParameterServer] {
            let stash = Stash::new(model.clone())
                .with_batch(32)
                .with_algorithm(algo)
                .with_sampled_iterations(bench_iters());
            let r = stash.profile(&cluster).expect("profile");
            let secs = r.times.t5.unwrap().as_secs_f64();
            times.insert(algo.label(), secs);
            t.row(vec![
                model.name.clone(),
                algo.label().to_string(),
                format!("{secs:.1}"),
                format!("{:.1}", r.network_stall_pct().unwrap_or(0.0)),
            ]);
        }
        assert!(
            times["parameter-server"] > times["ring"],
            "{}: PS must be slower than ring ({} vs {})",
            model.name,
            times["parameter-server"],
            times["ring"]
        );
    }
    t.finish();
    println!("shape check: parameter server strictly worse than ring all-reduce ✓");
}
