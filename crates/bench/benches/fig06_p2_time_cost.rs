//! Fig. 6: training time and monetary cost per epoch for P2, small models.
//!
//! Expected shapes: two networked p2.8xlarge beat one p2.16xlarge on time
//! (6a) at the same hourly price, so also on cost (6b); p2.xlarge is the
//! cheapest (no interconnect stalls).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{
    p2_configs, rollup_from_reports, run_sweep, small_model_batches, SweepJob, Table,
};
use stash_core::cost::epoch_cost;
use stash_dnn::zoo;

fn main() {
    let mut t = Table::new(
        "fig06_p2_time_cost",
        "Training time and cost per epoch, P2, small models (paper Fig. 6)",
        &["model", "batch", "config", "epoch_s", "epoch_cost_usd"],
    );
    let mut jobs = Vec::new();
    for model in zoo::small_models() {
        for batch in small_model_batches() {
            for cluster in p2_configs() {
                jobs.push(SweepJob::new(model.clone(), batch, cluster));
            }
        }
    }
    let (results, perf) = run_sweep(jobs.clone());
    t.set_rollup(rollup_from_reports(
        results.iter().filter_map(|r| r.as_ref().ok()),
    ));

    let mut time_16x = 0.0;
    let mut time_8x2 = 0.0;
    let mut cheapest_votes = std::collections::HashMap::<String, u32>::new();
    let per_point = p2_configs().len();
    for (jobs_chunk, results_chunk) in jobs.chunks(per_point).zip(results.chunks(per_point)) {
        let mut best: Option<(String, f64)> = None;
        for (job, result) in jobs_chunk.iter().zip(results_chunk) {
            let r = result.as_ref().expect("profile");
            let bill = epoch_cost(r, &job.cluster);
            let secs = bill.epoch_time.as_secs_f64();
            match job.cluster.display_name().as_str() {
                "p2.16xlarge" => time_16x += secs,
                "p2.8xlarge*2" => time_8x2 += secs,
                _ => {}
            }
            if best.as_ref().is_none_or(|(_, c)| bill.epoch_cost < *c) {
                best = Some((job.cluster.display_name(), bill.epoch_cost));
            }
            t.row(vec![
                job.stash.model().name.clone(),
                job.stash.per_gpu_batch().to_string(),
                job.cluster.display_name(),
                format!("{secs:.1}"),
                format!("{:.2}", bill.epoch_cost),
            ]);
        }
        *cheapest_votes.entry(best.unwrap().0).or_insert(0) += 1;
    }
    t.set_perf(perf);
    t.finish();
    assert!(
        time_8x2 < time_16x,
        "8xlarge*2 ({time_8x2:.0}s) must beat 16xlarge ({time_16x:.0}s)"
    );
    let xlarge_wins = cheapest_votes.get("p2.xlarge").copied().unwrap_or(0);
    assert!(
        xlarge_wins >= 8,
        "p2.xlarge should usually be cheapest: {cheapest_votes:?}"
    );
    println!("shape check: 8xlarge*2 faster than 16xlarge; p2.xlarge cheapest in {xlarge_wins}/10 sweeps ✓");
}
