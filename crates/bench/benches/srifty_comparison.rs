//! §VI-B: the true cost of a Srifty-style recommender.
//!
//! Srifty grid-probes bandwidth across buffer sizes and cluster shapes
//! before it can predict anything; Stash's characterization ships with the
//! paper at no cost to users. This experiment (i) runs the probing
//! campaign and bills it, (ii) checks the resulting predictor against the
//! full engine, and (iii) prints the bill next to Stash's (zero).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{bench_iters, Table};
use stash_core::srifty::{compare, grid_probe, standard_buffer_grid, SriftyPredictor};
use stash_dnn::zoo;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{p2_16xlarge, p2_8xlarge, p3_16xlarge, p3_8xlarge};

fn main() {
    let _ = bench_iters();
    let clusters = vec![
        ClusterSpec::single(p2_8xlarge()),
        ClusterSpec::single(p2_16xlarge()),
        ClusterSpec::single(p3_8xlarge()),
        ClusterSpec::single(p3_16xlarge()),
        ClusterSpec::homogeneous(p3_8xlarge(), 2),
        ClusterSpec::homogeneous(p2_8xlarge(), 2),
    ];
    let (measurements, bill) = grid_probe(&clusters, &standard_buffer_grid());
    let predictor = SriftyPredictor::fit(&measurements);

    let mut t = Table::new(
        "srifty_comparison",
        "Srifty-style probe-and-predict vs the engine, plus the probing bill (paper §VI-B)",
        &[
            "cluster",
            "model",
            "predicted_sps",
            "simulated_sps",
            "ratio",
        ],
    );
    let mut worst_ratio: f64 = 1.0;
    for cluster in &clusters {
        for model in [zoo::resnet18(), zoo::vgg11()] {
            let c = compare(&predictor, cluster, &model, 32).expect("compare");
            worst_ratio = worst_ratio.max(c.ratio.max(1.0 / c.ratio));
            t.row(vec![
                c.cluster.clone(),
                model.name.clone(),
                format!("{:.0}", c.predicted),
                format!("{:.0}", c.simulated),
                format!("{:.2}", c.ratio),
            ]);
        }
    }
    t.finish();
    println!(
        "probing bill: {} measurements, {:.2} VM-hours, ${:.2} (Stash: $0.00 for users)",
        bill.measurements, bill.vm_hours, bill.usd
    );
    assert!(
        bill.usd > 10.0,
        "the campaign must cost real money: ${:.2}",
        bill.usd
    );
    assert!(
        worst_ratio < 3.0,
        "predictions should be in the ballpark, worst {worst_ratio:.2}x"
    );
    println!(
        "shape check: probe-based prediction works but the probing itself costs ${:.2} ✓",
        bill.usd
    );
}
