//! Fig. 12: training time and cost per epoch, P3, large models + BERT.
//!
//! Expected shapes: p3.16xlarge and p3.24xlarge are equally performant
//! (same NVLink), so the pricier 24xlarge is the least cost-optimal.

use stash_bench::{
    large_model_batches, p3_configs, rollup_from_reports, run_sweep, SweepJob, Table,
};
use stash_core::cost::epoch_cost;
use stash_dnn::zoo;

fn main() {
    let mut t = Table::new(
        "fig12_p3_time_cost_large",
        "Training time and cost per epoch, P3, large models (paper Fig. 12)",
        &["model", "batch", "config", "epoch_s", "epoch_cost_usd"],
    );
    let mut points: Vec<(stash_dnn::model::Model, u64)> = Vec::new();
    for model in zoo::large_vision_models() {
        for batch in large_model_batches() {
            points.push((model.clone(), batch));
        }
    }
    points.push((zoo::bert_large(), 4));
    let mut jobs = Vec::new();
    for (model, batch) in &points {
        for cluster in p3_configs() {
            jobs.push(SweepJob::new(model.clone(), *batch, cluster));
        }
    }
    let (results, perf) = run_sweep(jobs.clone());
    t.set_rollup(rollup_from_reports(
        results.iter().filter_map(|r| r.as_ref().ok()),
    ));

    let mut t16 = 0.0_f64;
    let mut t24 = 0.0_f64;
    let mut c16 = 0.0_f64;
    let mut c24 = 0.0_f64;
    for (job, result) in jobs.iter().zip(results) {
        let r = match result {
            Ok(r) => r,
            Err(e) => {
                t.row(vec![
                    job.stash.model().name.clone(),
                    job.stash.per_gpu_batch().to_string(),
                    job.cluster.display_name(),
                    format!("skipped: {e}"),
                    String::new(),
                ]);
                continue;
            }
        };
        let bill = epoch_cost(&r, &job.cluster);
        match job.cluster.display_name().as_str() {
            "p3.16xlarge" => {
                t16 += bill.epoch_time.as_secs_f64();
                c16 += bill.epoch_cost;
            }
            "p3.24xlarge" => {
                t24 += bill.epoch_time.as_secs_f64();
                c24 += bill.epoch_cost;
            }
            _ => {}
        }
        t.row(vec![
            job.stash.model().name.clone(),
            job.stash.per_gpu_batch().to_string(),
            job.cluster.display_name(),
            format!("{:.1}", bill.epoch_time.as_secs_f64()),
            format!("{:.2}", bill.epoch_cost),
        ]);
    }
    t.set_perf(perf);
    t.finish();
    let time_ratio = t24 / t16;
    assert!(
        (0.85..1.15).contains(&time_ratio),
        "24x ≈ 16x in time, ratio {time_ratio}"
    );
    assert!(c24 > c16, "24xlarge must cost more: ${c24:.2} vs ${c16:.2}");
    println!(
        "shape check: 16xlarge and 24xlarge equally performant, 24xlarge least cost-optimal ✓"
    );
}
