//! Fig. 16: micro-characterization — interconnect stall (a) and network
//! stall (b) as the number of layers varies (synthetic ResNet/VGG), plus
//! the no-batch-norm and no-residual ablations.
//!
//! Expected shapes: both stalls grow with depth; VGG has *lower*
//! interconnect stall than much-smaller ResNets but far *higher* network
//! stall; removing BN lowers stalls; removing residuals changes little.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{bench_iters, pct, rollup_from_reports, Table};
use stash_core::profiler::Stash;
use stash_dnn::synth::{resnet, resnet_with, vgg, ResNetOptions};
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::p3_8xlarge;

fn main() {
    let mut t = Table::new(
        "fig16_micro",
        "I/C and N/W stalls vs layer count, synthetic models (paper Fig. 16)",
        &[
            "model",
            "sync_points",
            "grads_mb",
            "ic_stall_pct",
            "nw_stall_pct",
            "ic_stall_s",
            "nw_stall_s",
        ],
    );
    let mut models = Vec::new();
    for d in [18, 34, 50, 101, 152] {
        models.push(resnet(d));
    }
    for d in [11, 13, 16, 19] {
        models.push(vgg(d));
    }
    models.push(resnet_with(
        50,
        ResNetOptions {
            batch_norm: false,
            residual: true,
        },
    ));
    models.push(resnet_with(
        50,
        ResNetOptions {
            batch_norm: true,
            residual: false,
        },
    ));

    // All experiments at batch 32 on a p3.16xlarge-class machine, with the
    // networked pair for the N/W series (paper setup).
    let cluster = ClusterSpec::homogeneous(p3_8xlarge(), 2);
    let mut rows = std::collections::HashMap::new();
    let mut reports = Vec::new();
    for model in &models {
        let stash = Stash::new(model.clone())
            .with_batch(32)
            .with_sampled_iterations(bench_iters());
        let r = stash.profile(&cluster).expect("profile");
        let ic_pct = r.interconnect_stall_pct().unwrap_or(0.0);
        let nw_pct = r.network_stall_pct().unwrap_or(0.0);
        let ic_s = r.interconnect_stall().map_or(0.0, |d| d.as_secs_f64());
        let nw_s = r.network_stall().map_or(0.0, |d| d.as_secs_f64());
        rows.insert(model.name.clone(), (ic_pct, nw_pct, ic_s, nw_s));
        t.row(vec![
            model.name.clone(),
            model.trainable_layer_count().to_string(),
            format!("{:.1}", model.gradient_bytes() / 1e6),
            pct(Some(ic_pct)),
            pct(Some(nw_pct)),
            format!("{ic_s:.1}"),
            format!("{nw_s:.1}"),
        ]);
        reports.push(r);
    }
    t.set_rollup(rollup_from_reports(&reports));
    t.finish();

    // §VI-A1: "as the number of layers increases ... both the interconnect
    // stall and network stall TIME increases".
    assert!(
        rows["ResNet152"].2 > rows["ResNet18"].2,
        "I/C stall time grows with depth"
    );
    assert!(
        rows["ResNet152"].3 > rows["ResNet18"].3,
        "N/W stall time grows with depth"
    );
    assert!(
        rows["VGG19"].3 >= rows["VGG11"].3 * 0.95,
        "VGG N/W stall time grows (weakly)"
    );
    // The §VI asymmetry (percentages, as in the figure).
    assert!(
        rows["VGG11"].0 < rows["ResNet152"].0,
        "VGG I/C ({}) below deep ResNet ({})",
        rows["VGG11"].0,
        rows["ResNet152"].0
    );
    assert!(
        rows["VGG11"].1 > rows["ResNet18"].1,
        "VGG N/W ({}) above ResNet ({})",
        rows["VGG11"].1,
        rows["ResNet18"].1
    );
    // Ablations.
    assert!(
        rows["ResNet50-noBN"].0 < rows["ResNet50"].0,
        "removing BN lowers I/C stall"
    );
    let (skip_ic, base_ic) = (rows["ResNet50-noSkip"].0, rows["ResNet50"].0);
    assert!(
        (skip_ic - base_ic).abs() <= 0.3 * base_ic.max(1.0),
        "removing residuals changes little: {skip_ic} vs {base_ic}"
    );
    println!(
        "shape check: depth -> I/C stall, gradients -> N/W stall, BN matters, residuals don't ✓"
    );
}
