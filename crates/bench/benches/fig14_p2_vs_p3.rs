//! Fig. 14: P2 vs P3 training time and cost per epoch across models.
//!
//! Expected shapes: P3 is generally more cost-effective despite its ~3.5x
//! hourly price — except for tiny models (ShuffleNet), which are cheapest
//! on P2.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{rollup_from_reports, run_sweep, SweepJob, Table};
use stash_core::cost::epoch_cost;
use stash_dnn::zoo;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{
    p2_16xlarge, p2_8xlarge, p2_xlarge, p3_16xlarge, p3_2xlarge, p3_8xlarge,
};

fn main() {
    let mut t = Table::new(
        "fig14_p2_vs_p3",
        "P2 vs P3 train-time/cost comparison (paper Fig. 14)",
        &["model", "config", "epoch_s", "epoch_cost_usd"],
    );
    let configs = [
        ClusterSpec::single(p2_xlarge()),
        ClusterSpec::single(p2_8xlarge()),
        ClusterSpec::single(p2_16xlarge()),
        ClusterSpec::single(p3_2xlarge()),
        ClusterSpec::single(p3_8xlarge()),
        ClusterSpec::single(p3_16xlarge()),
    ];
    let models = [
        zoo::shufflenet(),
        zoo::mobilenet_v2(),
        zoo::resnet18(),
        zoo::resnet50(),
    ];
    let mut jobs = Vec::new();
    for model in &models {
        for cluster in &configs {
            jobs.push(SweepJob::new(model.clone(), 32, cluster.clone()));
        }
    }
    let (results, perf) = run_sweep(jobs.clone());
    t.set_rollup(rollup_from_reports(
        results.iter().filter_map(|r| r.as_ref().ok()),
    ));

    let mut cheapest = std::collections::HashMap::<String, String>::new();
    for (jobs_chunk, results_chunk) in jobs
        .chunks(configs.len())
        .zip(results.chunks(configs.len()))
    {
        let mut best: Option<(String, f64)> = None;
        for (job, result) in jobs_chunk.iter().zip(results_chunk) {
            let r = result.as_ref().expect("profile");
            let bill = epoch_cost(r, &job.cluster);
            if best.as_ref().is_none_or(|(_, c)| bill.epoch_cost < *c) {
                best = Some((job.cluster.display_name(), bill.epoch_cost));
            }
            t.row(vec![
                job.stash.model().name.clone(),
                job.cluster.display_name(),
                format!("{:.1}", bill.epoch_time.as_secs_f64()),
                format!("{:.2}", bill.epoch_cost),
            ]);
        }
        cheapest.insert(jobs_chunk[0].stash.model().name.clone(), best.unwrap().0);
    }
    t.set_perf(perf);
    t.finish();
    assert!(
        cheapest["ShuffleNet"].starts_with("p2."),
        "ShuffleNet is cheapest on P2: {cheapest:?}"
    );
    assert!(
        cheapest["ResNet50"].starts_with("p3."),
        "heavy models are cheapest on P3: {cheapest:?}"
    );
    println!("shape check: P3 generally cheaper, except tiny models (ShuffleNet -> P2) ✓");
}
