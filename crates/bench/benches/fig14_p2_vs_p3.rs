//! Fig. 14: P2 vs P3 training time and cost per epoch across models.
//!
//! Expected shapes: P3 is generally more cost-effective despite its ~3.5x
//! hourly price — except for tiny models (ShuffleNet), which are cheapest
//! on P2.

use stash_bench::{bench_stash, Table};
use stash_core::cost::epoch_cost;
use stash_dnn::zoo;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{p2_16xlarge, p2_8xlarge, p2_xlarge, p3_16xlarge, p3_2xlarge, p3_8xlarge};

fn main() {
    let mut t = Table::new(
        "fig14_p2_vs_p3",
        "P2 vs P3 train-time/cost comparison (paper Fig. 14)",
        &["model", "config", "epoch_s", "epoch_cost_usd"],
    );
    let configs = [
        ClusterSpec::single(p2_xlarge()),
        ClusterSpec::single(p2_8xlarge()),
        ClusterSpec::single(p2_16xlarge()),
        ClusterSpec::single(p3_2xlarge()),
        ClusterSpec::single(p3_8xlarge()),
        ClusterSpec::single(p3_16xlarge()),
    ];
    let models = [zoo::shufflenet(), zoo::mobilenet_v2(), zoo::resnet18(), zoo::resnet50()];
    let mut cheapest = std::collections::HashMap::<String, String>::new();
    for model in &models {
        let stash = bench_stash(model.clone(), 32);
        let mut best: Option<(String, f64)> = None;
        for cluster in &configs {
            let r = stash.profile(cluster).expect("profile");
            let bill = epoch_cost(&r, cluster);
            if best.as_ref().is_none_or(|(_, c)| bill.epoch_cost < *c) {
                best = Some((cluster.display_name(), bill.epoch_cost));
            }
            t.row(vec![
                model.name.clone(),
                cluster.display_name(),
                format!("{:.1}", bill.epoch_time.as_secs_f64()),
                format!("{:.2}", bill.epoch_cost),
            ]);
        }
        cheapest.insert(model.name.clone(), best.unwrap().0);
    }
    t.finish();
    assert!(
        cheapest["ShuffleNet"].starts_with("p2."),
        "ShuffleNet is cheapest on P2: {cheapest:?}"
    );
    assert!(
        cheapest["ResNet50"].starts_with("p3."),
        "heavy models are cheapest on P3: {cheapest:?}"
    );
    println!("shape check: P3 generally cheaper, except tiny models (ShuffleNet -> P2) ✓");
}
