//! Microbenchmark: flow-rate recomputation cost under churn.
//!
//! Starts N concurrent flows over a small shared fabric, then drains the
//! network event-by-event. Every start and completion is an allocation
//! event, so this measures the incremental recompute machinery (dedup'd
//! routes, scratch-buffer solver, alone-flow/freed-link shortcuts) end to
//! end at three contention levels.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use stash_flowsim::prelude::*;
use stash_simkit::time::{SimDuration, SimTime};

const LINKS: usize = 8;

/// Start `n_flows` staggered transfers over 8 links, drain to completion.
fn churn(n_flows: usize) -> f64 {
    let mut net = FlowNet::new();
    let ids: Vec<LinkId> = (0..LINKS)
        .map(|i| {
            net.add_link(Link::new(
                format!("l{i}"),
                1e9,
                SimDuration::from_micros(5),
                LinkClass::NvLink,
            ))
        })
        .collect();
    let mut now = SimTime::ZERO;
    for i in 0..n_flows {
        // Two-hop routes spread deterministically over the fabric so some
        // flows contend, some run alone, and some activate mid-stream.
        let route = vec![ids[i % LINKS], ids[(i * 5 + 3) % LINKS]];
        let bytes = 1e6 + (i as f64) * 4096.0;
        net.start_flow(now, FlowSpec::new(route, bytes, i as u64));
        now = now.saturating_add(SimDuration::from_micros(50));
    }
    while net.active_flows() > 0 {
        let Some(t) = net.next_event_time(now) else {
            break;
        };
        now = t;
        net.advance(now);
    }
    net.delivered_bytes()
}

fn bench(c: &mut Criterion) {
    for n in [16usize, 64, 256] {
        c.bench_function(&format!("flownet_recompute/{n}"), |b| {
            b.iter(|| black_box(churn(black_box(n))));
        });
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
