//! Ablation: gradient accumulation (PyTorch `no_sync()` micro-batching).
//!
//! The network stall the paper measures is per-synchronisation; deferring
//! the all-reduce across k micro-batches amortises it over k times the
//! compute. On the 10 Gbps pair this should recover most of the 2-5x
//! slowdown — at the price of an effective batch k times larger.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{bench_iters, Table};
use stash_ddl::config::{EpochMode, TrainConfig};
use stash_ddl::engine::run_epoch;
use stash_dnn::zoo;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::p3_8xlarge;

fn main() {
    let mut t = Table::new(
        "ablation_grad_accumulation",
        "Gradient accumulation on 2x p3.8xlarge (design ablation)",
        &["model", "accumulation", "samples_per_s", "comm_wait_frac"],
    );
    for model in [zoo::resnet50(), zoo::vgg11()] {
        let mut tps = Vec::new();
        for accum in [1_u64, 2, 4, 8] {
            let mut cfg = TrainConfig::synthetic(
                ClusterSpec::homogeneous(p3_8xlarge(), 2),
                model.clone(),
                32,
                32 * accum * 100,
            );
            cfg.grad_accumulation = accum;
            cfg.epoch_mode = EpochMode::Sampled {
                iterations: bench_iters(),
            };
            let r = run_epoch(&cfg).expect("run");
            tps.push(r.throughput);
            t.row(vec![
                model.name.clone(),
                accum.to_string(),
                format!("{:.0}", r.throughput),
                format!("{:.2}", r.comm_wait_fraction()),
            ]);
        }
        assert!(
            tps.windows(2).all(|w| w[1] >= w[0] * 0.98),
            "{}: throughput must not fall as accumulation grows: {tps:?}",
            model.name
        );
        assert!(
            tps[3] > tps[0] * 1.5,
            "{}: 8x accumulation must recover substantial throughput: {tps:?}",
            model.name
        );
    }
    t.finish();
    println!("shape check: accumulation amortises the network stall ✓");
}
