//! Extension: pipeline parallelism for the models the paper excludes.
//!
//! §IV-A defers model/hybrid parallelism; this experiment answers the
//! deferred question with the GPipe-style estimator: DLRM (4B params,
//! infeasible under data parallelism on every catalog instance) becomes
//! feasible on a p3.16xlarge once split into enough stages, and deeper
//! pipelines trade bubble overhead for memory headroom.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::Table;
use stash_core::pipeline::plan;
use stash_dnn::zoo;
use stash_hwtopo::instance::p3_16xlarge;

fn main() {
    let mut t = Table::new(
        "extension_pipeline",
        "GPipe-style pipeline feasibility and throughput (extension beyond the paper)",
        &[
            "model",
            "stages",
            "micro_batches",
            "fits",
            "worst_stage_gb",
            "samples_per_s",
        ],
    );
    let inst = p3_16xlarge();
    let mut dlrm_feasible_at = None;
    for model in [zoo::dlrm(), zoo::bert_large()] {
        for stages in [1_usize, 2, 4, 8] {
            let p = plan(&inst, &model, stages, 4, 8);
            let worst = p
                .stages
                .iter()
                .map(|s| s.memory_bytes)
                .fold(0.0_f64, f64::max);
            if model.name == "DLRM" && p.fits && dlrm_feasible_at.is_none() {
                dlrm_feasible_at = Some(stages);
            }
            t.row(vec![
                model.name.clone(),
                stages.to_string(),
                p.micro_batches.to_string(),
                p.fits.to_string(),
                format!("{:.1}", worst / 1e9),
                format!("{:.0}", p.throughput),
            ]);
        }
    }
    t.finish();
    let at = dlrm_feasible_at.expect("DLRM must become feasible with enough stages");
    assert!(at > 1, "DLRM must NOT fit a single V100");
    println!(
        "shape check: DLRM infeasible under data parallelism, feasible at {at}-stage pipeline ✓"
    );
}
