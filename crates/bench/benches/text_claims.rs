//! Headline in-text claims of the paper (§V), reproduced:
//!
//! * §V-A: large models on P2 suffer extreme interconnect stalls and cost
//!   far more than on P3 ("interconnect stall was observed to be 750% and
//!   monetary cost ... 2000% more than P3" for ResNet50);
//! * §V-B: BERT-large on p3.24xlarge with a doubled batch (8) trains
//!   ~13% faster than p3.16xlarge at batch 4 but still costs more.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{bench_iters, bench_stash, Table};
use stash_core::cost::epoch_cost;
use stash_core::profiler::Stash;
use stash_dnn::dataset::DatasetSpec;
use stash_dnn::zoo;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{p2_16xlarge, p3_16xlarge, p3_24xlarge};

fn main() {
    let mut t = Table::new(
        "text_claims",
        "In-text claims of paper §V",
        &["claim", "config", "metric", "value"],
    );

    // -- ResNet50 on P2 vs P3 -------------------------------------------
    let p2 = ClusterSpec::single(p2_16xlarge());
    let p3 = ClusterSpec::single(p3_16xlarge());
    let stash = bench_stash(zoo::resnet50(), 32);
    let r_p2 = stash.profile(&p2).expect("p2");
    let r_p3 = stash.profile(&p3).expect("p3");
    let ic_p2 = r_p2.interconnect_stall_pct().unwrap();
    let ic_p3 = r_p3.interconnect_stall_pct().unwrap();
    let cost_p2 = epoch_cost(&r_p2, &p2).epoch_cost;
    let cost_p3 = epoch_cost(&r_p3, &p3).epoch_cost;
    t.row(vec![
        "large-model-on-p2".to_string(),
        "p2.16xlarge".to_string(),
        "resnet50_ic_stall_pct".to_string(),
        format!("{ic_p2:.1}"),
    ]);
    t.row(vec![
        "large-model-on-p2".to_string(),
        "p2.16xlarge vs p3.16xlarge".to_string(),
        "epoch_cost_ratio".to_string(),
        format!("{:.2}", cost_p2 / cost_p3),
    ]);
    assert!(
        ic_p2 > 5.0 * ic_p3,
        "P2 I/C stall dwarfs P3: {ic_p2}% vs {ic_p3}%"
    );
    // The paper reports a 20x cost gap (750% I/C stall on their K80s); our
    // simulated gap is smaller but the direction and order are identical.
    assert!(
        cost_p2 > 1.5 * cost_p3,
        "P2 epoch cost dwarfs P3: ${cost_p2:.2} vs ${cost_p3:.2}"
    );

    // -- BERT on p3.24xlarge at doubled batch ----------------------------
    let bert = |batch: u64| {
        Stash::new(zoo::bert_large())
            .with_batch(batch)
            .with_dataset(DatasetSpec::squad2())
            .with_sampled_iterations(bench_iters())
    };
    let c16 = ClusterSpec::single(p3_16xlarge());
    let c24 = ClusterSpec::single(p3_24xlarge());
    let r16 = bert(4).profile(&c16).expect("bert 16x");
    let r24 = bert(8).profile(&c24).expect("bert 24x");
    let t16 = epoch_cost(&r16, &c16);
    let t24 = epoch_cost(&r24, &c24);
    let speedup = 100.0 * (1.0 - t24.epoch_time.as_secs_f64() / t16.epoch_time.as_secs_f64());
    t.row(vec![
        "bert-24xlarge-batch8".to_string(),
        "p3.24xlarge b8 vs p3.16xlarge b4".to_string(),
        "time_improvement_pct".to_string(),
        format!("{speedup:.1}"),
    ]);
    t.row(vec![
        "bert-24xlarge-batch8".to_string(),
        "p3.24xlarge b8 vs p3.16xlarge b4".to_string(),
        "cost_ratio".to_string(),
        format!("{:.2}", t24.epoch_cost / t16.epoch_cost),
    ]);
    assert!(
        speedup > 0.0,
        "doubled batch on 24xlarge must be faster, got {speedup:.1}%"
    );
    assert!(
        t24.epoch_cost > t16.epoch_cost,
        "...but still costlier: ${:.2} vs ${:.2}",
        t24.epoch_cost,
        t16.epoch_cost
    );
    t.finish();
    println!("shape check: P2 punishes large models; BERT on 24xlarge is {speedup:.1}% faster yet costlier ✓");
}
