//! Sweep performance record for the benchmark trajectory
//! (`scripts/bench.sh`).
//!
//! Runs the standard P3 figure sweep (the same cluster grid Figs. 8-12
//! profile) and writes one JSON object describing how fast the simulator
//! core ground through it: wall-clock, delivered events per second,
//! measurement-cache hit rate, and the fraction of requested iterations
//! the steady-state detector fast-forwarded instead of simulating.
//!
//! `scripts/bench.sh` invokes this twice — once with
//! `STASH_FAST_FORWARD=0` (the event-by-event baseline) and once with the
//! optimizations on — and folds both records plus the
//! `flownet_recompute` microbenchmark into `results/BENCH_<n>.json`.
//! Knobs: `STASH_BENCH_ITERS` (iterations per measurement step),
//! `STASH_PERF_OUT` (output path, default `results/perf_report.json`).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::fs;

use stash_bench::{bench_iters, results_dir, run_sweep, SweepJob};
use stash_ddl::config::{EpochMode, TrainConfig};
use stash_ddl::engine::{run_epoch_series, EngineOptions};
use stash_dnn::zoo;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{p3_16xlarge, p3_24xlarge, p3_2xlarge, p3_8xlarge};

/// The figure-sweep grid: every P3 shape of Figs. 8-12 times two small
/// models at batch 32.
fn jobs() -> Vec<SweepJob> {
    let clusters = [
        ClusterSpec::single(p3_2xlarge()),
        ClusterSpec::single(p3_8xlarge()),
        ClusterSpec::homogeneous(p3_8xlarge(), 2),
        ClusterSpec::single(p3_16xlarge()),
        ClusterSpec::single(p3_24xlarge()),
    ];
    let models = [zoo::alexnet(), zoo::resnet18()];
    clusters
        .iter()
        .flat_map(|c| {
            models
                .iter()
                .map(|m| SweepJob::new(m.clone(), 32, c.clone()))
        })
        .collect()
}

fn main() {
    let jobs = jobs();
    // Steps per job: 4 for single-instance clusters, 5 for multi-node.
    let requested_iterations: u64 = jobs
        .iter()
        .map(|j| {
            let steps = if j.cluster.node_count() > 1 { 5 } else { 4 };
            steps * bench_iters()
        })
        .sum();

    // Self-telemetry rides along: the registry view of the same sweep
    // (solver latency percentiles, queue traffic) lands in the record so
    // the benchmark trajectory can track simulator health over revisions.
    stash_telemetry::enable();
    stash_telemetry::metrics::reset_all();
    let (results, perf) = run_sweep(jobs);
    let snap = stash_telemetry::snapshot::Snapshot::take();
    stash_telemetry::disable();
    for (i, r) in results.iter().enumerate() {
        assert!(r.is_ok(), "sweep job {i} failed: {:?}", r.as_ref().err());
    }

    // Iteration-dynamics leg: one representative job re-run under the
    // series recorder so the trajectory also tracks iteration-time CoV
    // and transient-spike counts over revisions. The series is a pure
    // observer (tier-1 differentials prove bit-transparency), so this
    // run's report matches what the sweep measured for the same shape.
    stash_telemetry::enable();
    let mut series_cfg = TrainConfig::synthetic(
        stash_hwtopo::cluster::ClusterSpec::homogeneous(p3_8xlarge(), 2),
        zoo::resnet18(),
        32,
        32 * bench_iters(),
    );
    series_cfg.epoch_mode = EpochMode::Full;
    let sr = run_epoch_series(&series_cfg, &EngineOptions { fast_forward: true }, None)
        .expect("series leg failed");
    stash_telemetry::disable();
    let series_stats = serde_json::json!({
        "cluster": sr.run.report.cluster,
        "model": sr.run.report.model,
        "iteration_cov": sr.series.iteration_cov(),
        "spike_count": sr.series.spike_count(),
        "samples": sr.series.samples.len() as u64,
        "compressed_ff_iterations": sr.series.samples.iter().map(|s| s.ff_iterations).sum::<u64>(),
        "end_ns": sr.series.end_ns,
    });

    let solver = snap
        .histogram("stash_sim_solver_recompute_latency_ns")
        .expect("solver histogram in schema");
    let events_per_sec = perf.sim_events as f64 / perf.wall_secs.max(1e-9);
    let fast_forward_ratio = perf.fast_forwarded_iterations as f64 / requested_iterations as f64;
    let record = serde_json::json!({
        "iters_per_step": bench_iters(),
        "jobs": perf.jobs as u64,
        "threads": perf.threads as u64,
        "wall_secs": perf.wall_secs,
        "sim_events": perf.sim_events,
        "events_per_sec": events_per_sec,
        "cache_hits": perf.cache_hits,
        "cache_misses": perf.cache_misses,
        "cache_hit_rate": perf.hit_rate(),
        "full_recomputes": perf.full_recomputes,
        "shortcut_events": perf.shortcut_events,
        "requested_iterations": requested_iterations,
        "fast_forwarded_iterations": perf.fast_forwarded_iterations,
        "fast_forward_ratio": fast_forward_ratio,
        "series": series_stats,
        "telemetry": serde_json::json!({
            "solver_recompute_p50_ns": solver.quantile(0.50),
            "solver_recompute_p99_ns": solver.quantile(0.99),
            "solver_recompute_count": solver.count,
            "queue_pushed": snap.counter("stash_sim_queue_events_pushed_total"),
            "queue_popped": snap.counter("stash_sim_queue_events_popped_total"),
            "queue_cancelled": snap.counter("stash_sim_queue_events_cancelled_total"),
            "queue_depth_high_water": snap.gauge("stash_sim_queue_depth_high_water"),
        }),
    });

    let out = std::env::var("STASH_PERF_OUT")
        .map_or_else(|_| results_dir().join("perf_report.json"), Into::into);
    fs::write(
        &out,
        serde_json::to_string_pretty(&record).expect("serialize perf record"),
    )
    .expect("write perf record");
    println!(
        "[perf_report: {:.3}s wall, {:.0} events/s, {:.0}% cache hits, {:.0}% fast-forwarded -> {}]",
        perf.wall_secs,
        events_per_sec,
        perf.hit_rate() * 100.0,
        fast_forward_ratio * 100.0,
        out.display()
    );
}
