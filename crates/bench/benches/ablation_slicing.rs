//! Ablation: the p3.8xlarge crossbar-slicing lottery (paper §V-B). A
//! tenant that receives a whole crossbar (`Slicing::Full`) sees
//! p3.16xlarge-class interconnect stalls; a degraded slice pays PCIe
//! prices on the cross-crossbar hops.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{bench_iters, pct, Table};
use stash_core::profiler::Stash;
use stash_dnn::zoo;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{p3_16xlarge, p3_8xlarge_sliced};
use stash_hwtopo::interconnect::Slicing;

fn main() {
    let mut t = Table::new(
        "ablation_slicing",
        "p3.8xlarge crossbar slicing ablation (paper §V-B anomaly)",
        &["model", "config", "ic_stall_pct"],
    );
    for model in [zoo::resnet18(), zoo::resnet50()] {
        let stash = |m: &stash_dnn::model::Model| {
            Stash::new(m.clone())
                .with_batch(32)
                .with_sampled_iterations(bench_iters())
        };
        let ic = |cluster: &ClusterSpec| {
            stash(&model)
                .profile(cluster)
                .expect("profile")
                .interconnect_stall_pct()
                .unwrap_or(0.0)
        };
        let degraded = ic(&ClusterSpec::single(p3_8xlarge_sliced(Slicing::Degraded)));
        let full = ic(&ClusterSpec::single(p3_8xlarge_sliced(Slicing::Full)));
        let x16 = ic(&ClusterSpec::single(p3_16xlarge()));
        t.row(vec![
            model.name.clone(),
            "8xlarge (degraded slice)".into(),
            pct(Some(degraded)),
        ]);
        t.row(vec![
            model.name.clone(),
            "8xlarge (full crossbar)".into(),
            pct(Some(full)),
        ]);
        t.row(vec![model.name.clone(), "16xlarge".into(), pct(Some(x16))]);
        assert!(
            degraded > full,
            "{}: degraded {degraded} > full {full}",
            model.name
        );
        assert!(
            degraded > x16,
            "{}: degraded {degraded} > 16xlarge {x16}",
            model.name
        );
    }
    t.finish();
    println!("shape check: the slicing lottery explains the 8xlarge anomaly ✓");
}
