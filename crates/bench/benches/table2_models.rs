//! Table II: the DDL model zoo with gradient sizes and input datasets.

use stash_bench::Table;
use stash_dnn::dataset::DatasetSpec;
use stash_dnn::zoo::{all_models, ModelClass};

fn main() {
    let mut t = Table::new(
        "table2_models",
        "DDL models used (paper Table II)",
        &[
            "domain",
            "type",
            "name",
            "gradient_size_M",
            "layers",
            "sync_points",
            "dataset",
        ],
    );
    for (model, class) in all_models() {
        let (domain, ty, dataset) = match class {
            ModelClass::SmallVision => ("Vision", "Small", DatasetSpec::imagenet1k()),
            ModelClass::LargeVision => ("Vision", "Large", DatasetSpec::imagenet1k()),
            ModelClass::Nlp => ("NLP", "-", DatasetSpec::squad2()),
        };
        t.row(vec![
            domain.to_string(),
            ty.to_string(),
            model.name.clone(),
            format!("{:.2}", model.param_count() as f64 / 1e6),
            model.layer_count().to_string(),
            model.trainable_layer_count().to_string(),
            format!("{} ({:.0} GB)", dataset.name, dataset.total_bytes / 1e9),
        ]);
    }
    assert_eq!(t.len(), 8, "Table II lists 8 models");
    t.finish();
}
