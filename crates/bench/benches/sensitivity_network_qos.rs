//! Sensitivity: AWS network QoS variance (paper §III).
//!
//! The paper argues network QoS "is subject to high temporal (up to
//! months) and spatial (availability zones, regions) variations and is
//! hard to definitively characterize". This experiment sweeps the
//! achievable fraction of the nominal 10 Gbps on a 2x p3.8xlarge pair and
//! shows how violently the network stall responds — the reason a
//! probe-once recommender (Srifty) goes stale.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{bench_iters, Table};
use stash_core::profiler::Stash;
use stash_dnn::zoo;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::p3_8xlarge;

fn main() {
    let mut t = Table::new(
        "sensitivity_network_qos",
        "Network stall vs achieved network bandwidth (paper §III QoS variance)",
        &["model", "achieved_gbps", "nw_stall_pct"],
    );
    let mut series = Vec::new();
    for multiplier in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let mut inst = p3_8xlarge();
        inst.network_gbps *= multiplier;
        let cluster = ClusterSpec::homogeneous(inst, 2);
        let r = Stash::new(zoo::resnet50())
            .with_batch(32)
            .with_sampled_iterations(bench_iters())
            .profile(&cluster)
            .expect("profile");
        let nw = r.network_stall_pct().unwrap();
        series.push(nw);
        t.row(vec![
            "ResNet50".to_string(),
            format!("{:.1}", 10.0 * multiplier),
            format!("{nw:.1}"),
        ]);
    }
    t.finish();
    assert!(
        series.windows(2).all(|w| w[0] >= w[1]),
        "stall must fall as bandwidth improves: {series:?}"
    );
    assert!(
        series[0] > 3.0 * series[series.len() - 1],
        "a 16x bandwidth swing must move the stall by >3x: {series:?}"
    );
    println!("shape check: network stall is violently sensitive to achieved bandwidth ✓");
}
