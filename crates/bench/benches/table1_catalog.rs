//! Table I: the AWS GPU instance catalog with prices (N. Virginia).

use stash_bench::Table;
use stash_hwtopo::instance::catalog;
use stash_hwtopo::units::gib;

fn main() {
    let mut t = Table::new(
        "table1_catalog",
        "AWS GPU instance types with prices (paper Table I)",
        &[
            "instance",
            "gpus",
            "vcpus",
            "interconnect",
            "gpu_mem_gb",
            "main_mem_gb",
            "network_gbps",
            "price_per_hr",
        ],
    );
    for inst in catalog() {
        t.row(vec![
            inst.name.clone(),
            format!("{}x{}", inst.gpu_count, inst.gpu.label()),
            inst.vcpus.to_string(),
            inst.interconnect.label().to_string(),
            format!("{:.0}", inst.total_gpu_memory_bytes() / gib(1.0)),
            format!("{:.0}", inst.main_memory_bytes / gib(1.0)),
            format!("{:.0}", inst.network_gbps),
            format!("${}", inst.price_per_hour),
        ]);
    }
    assert_eq!(t.len(), 8, "Table I lists 8 instance types");
    t.finish();
}
