//! Fig. 11: interconnect stall % on P3 for small (a) and large (b) models.
//!
//! Expected shapes: p3.16xlarge has the lowest stall; the (degraded)
//! p3.8xlarge is anomalously high; VGG's interconnect stall is low despite
//! its huge gradients; p3.24xlarge matches p3.16xlarge (same NVLink).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{
    large_model_batches, pct, rollup_from_reports, run_sweep, small_model_batches, SweepJob, Table,
};
use stash_dnn::zoo;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{p3_16xlarge, p3_24xlarge, p3_8xlarge};

fn main() {
    let mut t = Table::new(
        "fig11_p3_ic",
        "Interconnect stall %, P3 (paper Fig. 11)",
        &["model", "batch", "config", "ic_stall_pct"],
    );
    let mut points: Vec<(stash_dnn::model::Model, u64)> = Vec::new();
    for model in zoo::small_models() {
        for batch in small_model_batches() {
            points.push((model.clone(), batch));
        }
    }
    for model in zoo::large_vision_models() {
        for batch in large_model_batches() {
            points.push((model.clone(), batch));
        }
    }
    points.push((zoo::bert_large(), 4));
    let mut jobs = Vec::new();
    for (model, batch) in points {
        for inst in [p3_8xlarge(), p3_16xlarge(), p3_24xlarge()] {
            jobs.push(SweepJob::new(
                model.clone(),
                batch,
                ClusterSpec::single(inst),
            ));
        }
    }
    let (results, perf) = run_sweep(jobs.clone());
    t.set_rollup(rollup_from_reports(
        results.iter().filter_map(|r| r.as_ref().ok()),
    ));

    let mut stalls = std::collections::HashMap::<String, f64>::new();
    for (job, result) in jobs.iter().zip(results) {
        let r = result.expect("profile");
        let ic = r.interconnect_stall_pct().unwrap_or(0.0);
        *stalls.entry(job.cluster.display_name()).or_insert(0.0) += ic;
        t.row(vec![
            job.stash.model().name.clone(),
            job.stash.per_gpu_batch().to_string(),
            job.cluster.display_name(),
            pct(Some(ic)),
        ]);
    }
    t.set_perf(perf);
    t.finish();
    assert!(
        stalls["p3.8xlarge"] > stalls["p3.16xlarge"],
        "8xlarge slice anomaly: {stalls:?}"
    );
    let ratio = stalls["p3.24xlarge"] / stalls["p3.16xlarge"].max(1e-9);
    assert!((0.7..1.3).contains(&ratio), "24x ≈ 16x, ratio {ratio}");
    println!("shape check: 16xlarge lowest, 8xlarge anomalous, 24xlarge ≈ 16xlarge ✓");
}
