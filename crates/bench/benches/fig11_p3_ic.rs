//! Fig. 11: interconnect stall % on P3 for small (a) and large (b) models.
//!
//! Expected shapes: p3.16xlarge has the lowest stall; the (degraded)
//! p3.8xlarge is anomalously high; VGG's interconnect stall is low despite
//! its huge gradients; p3.24xlarge matches p3.16xlarge (same NVLink).

use stash_bench::{bench_stash, large_model_batches, pct, small_model_batches, Table};
use stash_core::profiler::Stash;
use stash_dnn::model::Model;
use stash_dnn::zoo;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{p3_16xlarge, p3_24xlarge, p3_8xlarge};

fn sweep(t: &mut Table, stalls: &mut std::collections::HashMap<String, f64>, model: &Model, batch: u64, stash: &Stash) {
    for inst in [p3_8xlarge(), p3_16xlarge(), p3_24xlarge()] {
        let cluster = ClusterSpec::single(inst);
        let r = stash.profile(&cluster).expect("profile");
        let ic = r.interconnect_stall_pct().unwrap_or(0.0);
        *stalls.entry(cluster.display_name()).or_insert(0.0) += ic;
        t.row(vec![
            model.name.clone(),
            batch.to_string(),
            cluster.display_name(),
            pct(Some(ic)),
        ]);
    }
}

fn main() {
    let mut t = Table::new(
        "fig11_p3_ic",
        "Interconnect stall %, P3 (paper Fig. 11)",
        &["model", "batch", "config", "ic_stall_pct"],
    );
    let mut stalls = std::collections::HashMap::new();
    for model in zoo::small_models() {
        for batch in small_model_batches() {
            sweep(&mut t, &mut stalls, &model, batch, &bench_stash(model.clone(), batch));
        }
    }
    for model in zoo::large_vision_models() {
        for batch in large_model_batches() {
            sweep(&mut t, &mut stalls, &model, batch, &bench_stash(model.clone(), batch));
        }
    }
    sweep(&mut t, &mut stalls, &zoo::bert_large(), 4, &bench_stash(zoo::bert_large(), 4));
    t.finish();
    assert!(
        stalls["p3.8xlarge"] > stalls["p3.16xlarge"],
        "8xlarge slice anomaly: {stalls:?}"
    );
    let ratio = stalls["p3.24xlarge"] / stalls["p3.16xlarge"].max(1e-9);
    assert!((0.7..1.3).contains(&ratio), "24x ≈ 16x, ratio {ratio}");
    println!("shape check: 16xlarge lowest, 8xlarge anomalous, 24xlarge ≈ 16xlarge ✓");
}
