//! Fig. 8: CPU and disk stall % on the P3 family, small models.
//!
//! Expected shapes: CPU stall negligible (8a); disk stall highest for the
//! 8-worker p3.16xlarge (8b) whose fast V100s outrun the gp2 volume.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{
    p3_configs, pct, rollup_from_reports, run_sweep, small_model_batches, SweepJob, Table,
};
use stash_dnn::zoo;

fn main() {
    let mut t = Table::new(
        "fig08_p3_cpu_disk_small",
        "CPU & disk stall %, P3, small models (paper Fig. 8)",
        &[
            "model",
            "batch",
            "config",
            "cpu_stall_pct",
            "disk_stall_pct",
        ],
    );
    let mut jobs = Vec::new();
    for model in zoo::small_models() {
        for batch in small_model_batches() {
            for cluster in p3_configs() {
                jobs.push(SweepJob::new(model.clone(), batch, cluster));
            }
        }
    }
    let (results, perf) = run_sweep(jobs.clone());
    t.set_rollup(rollup_from_reports(
        results.iter().filter_map(|r| r.as_ref().ok()),
    ));

    let mut cpu_samples: Vec<f64> = Vec::new();
    let mut disk = std::collections::HashMap::<String, f64>::new();
    for (job, result) in jobs.iter().zip(results) {
        let r = result.expect("profile");
        let cpu = r.cpu_stall_pct().unwrap_or(0.0);
        let d = r.disk_stall_pct().unwrap_or(0.0);
        cpu_samples.push(cpu);
        *disk.entry(job.cluster.display_name()).or_insert(0.0) += d;
        t.row(vec![
            job.stash.model().name.clone(),
            job.stash.per_gpu_batch().to_string(),
            job.cluster.display_name(),
            pct(Some(cpu)),
            pct(Some(d)),
        ]);
    }
    t.set_perf(perf);
    t.finish();
    cpu_samples.sort_by(f64::total_cmp);
    let median_cpu = cpu_samples[cpu_samples.len() / 2];
    let worst_cpu = *cpu_samples.last().unwrap();
    assert!(
        median_cpu < 10.0,
        "CPU stall must stay negligible, median {median_cpu}%"
    );
    assert!(
        worst_cpu < 35.0,
        "even the launch-bound outliers stay modest, worst {worst_cpu}%"
    );
    assert!(
        disk["p3.16xlarge"] > disk["p3.8xlarge"],
        "disk stall highest for 16xlarge: {disk:?}"
    );
    println!(
        "shape check: CPU negligible (median {median_cpu:.1}%), disk stall worst on p3.16xlarge ✓"
    );
}
