//! Ablation: per-layer bucketing (the paper's §VI assumption) vs PyTorch's
//! 25 MB size-capped buckets. Fewer, larger buckets trade per-bucket
//! latency for lost overlap granularity; on a latency-bound interconnect
//! they should reduce the interconnect stall of deep models.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{bench_iters, pct, Table};
use stash_collectives::bucket::Bucketing;
use stash_core::profiler::Stash;
use stash_dnn::zoo;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::p3_16xlarge;

fn main() {
    let mut t = Table::new(
        "ablation_bucketing",
        "Per-layer vs 25 MB gradient bucketing (design ablation)",
        &["model", "bucketing", "buckets", "ic_stall_pct"],
    );
    let cluster = ClusterSpec::single(p3_16xlarge());
    for model in [zoo::resnet50(), zoo::vgg11()] {
        let mut per_layer_ic = 0.0;
        let mut by_size_ic = 0.0;
        for (label, bucketing) in [
            ("per-layer", Bucketing::PerLayer),
            ("25MB", Bucketing::pytorch_default()),
        ] {
            let plan = stash_collectives::bucket::CommPlan::new(&model, bucketing);
            let stash = Stash::new(model.clone())
                .with_batch(32)
                .with_bucketing(bucketing)
                .with_sampled_iterations(bench_iters());
            let r = stash.profile(&cluster).expect("profile");
            let ic = r.interconnect_stall_pct().unwrap_or(0.0);
            if label == "per-layer" {
                per_layer_ic = ic;
            } else {
                by_size_ic = ic;
            }
            t.row(vec![
                model.name.clone(),
                label.to_string(),
                plan.bucket_count().to_string(),
                pct(Some(ic)),
            ]);
        }
        if model.name.starts_with("ResNet") {
            assert!(
                by_size_ic <= per_layer_ic,
                "{}: coarser buckets must not increase the latency-bound stall ({by_size_ic} vs {per_layer_ic})",
                model.name
            );
        }
    }
    t.finish();
    println!("shape check: size-capped buckets reduce latency-bound interconnect stall ✓");
}
