//! Extension: automatic mixed precision (beyond the paper's fp32 setup).
//!
//! AMP moves every stall Stash measures: tensor cores compress compute on
//! V100s, fp16 halves the gradient bytes crossing NVLink and the network.
//! Predictions: (i) faster epochs on P3; (ii) lower network stall
//! percentage is NOT guaranteed — compute shrinks faster than traffic, so
//! the *ratio* can worsen even as absolute time improves; (iii) no gain on
//! tensor-core-less K80s.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{bench_iters, Table};
use stash_core::profiler::Stash;
use stash_dnn::zoo;
use stash_gpucompute::precision::Precision;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{p2_8xlarge, p3_16xlarge, p3_8xlarge};

fn main() {
    let mut t = Table::new(
        "extension_amp",
        "Mixed precision vs fp32 across clusters (extension beyond the paper)",
        &["model", "cluster", "precision", "epoch_s", "nw_stall_pct"],
    );
    let configs = [
        ClusterSpec::single(p3_16xlarge()),
        ClusterSpec::homogeneous(p3_8xlarge(), 2),
        ClusterSpec::single(p2_8xlarge()),
    ];
    for model in [zoo::resnet50(), zoo::vgg11()] {
        for cluster in &configs {
            let mut times = std::collections::HashMap::new();
            for precision in [Precision::Fp32, Precision::Amp] {
                let stash = Stash::new(model.clone())
                    .with_batch(32)
                    .with_precision(precision)
                    .with_sampled_iterations(bench_iters());
                let r = stash.profile(cluster).expect("profile");
                let secs = r.training_epoch_time().unwrap().as_secs_f64();
                times.insert(precision.label(), secs);
                t.row(vec![
                    model.name.clone(),
                    cluster.display_name(),
                    precision.label().to_string(),
                    format!("{secs:.1}"),
                    r.network_stall_pct()
                        .map_or("-".into(), |p| format!("{p:.1}")),
                ]);
            }
            if cluster.display_name().starts_with("p3") {
                assert!(
                    times["amp"] < times["fp32"],
                    "{} on {}: AMP must win on V100s ({} vs {})",
                    model.name,
                    cluster.display_name(),
                    times["amp"],
                    times["fp32"]
                );
            } else {
                // K80: no tensor cores — AMP changes little either way.
                let ratio = times["amp"] / times["fp32"];
                assert!(
                    (0.5..1.2).contains(&ratio),
                    "{}: K80 AMP ratio {ratio}",
                    model.name
                );
            }
        }
    }
    t.finish();
    println!("shape check: AMP wins on tensor-core GPUs, is a wash on K80 ✓");
}
