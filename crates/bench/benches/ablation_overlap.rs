//! Ablation: communication/computation overlap (PyTorch DDP's backward
//! hook pipeline). Disabling overlap serializes every bucket after the
//! backward pass; on NVLink this costs real time, quantifying how much
//! DDP's overlap hides.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{bench_iters, Table};
use stash_ddl::config::{EpochMode, TrainConfig};
use stash_ddl::engine::run_epoch;
use stash_dnn::zoo;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::p3_16xlarge;

fn main() {
    let mut t = Table::new(
        "ablation_overlap",
        "Comm/compute overlap ablation on p3.16xlarge (design ablation)",
        &["model", "overlap", "epoch_s", "comm_wait_s"],
    );
    for model in [zoo::resnet50(), zoo::vgg11()] {
        let mut with_overlap = 0.0;
        let mut without = 0.0;
        for overlap in [true, false] {
            let mut cfg = TrainConfig::synthetic(
                ClusterSpec::single(p3_16xlarge()),
                model.clone(),
                32,
                32 * 200,
            );
            cfg.overlap = overlap;
            cfg.epoch_mode = EpochMode::Sampled {
                iterations: bench_iters(),
            };
            let r = run_epoch(&cfg).expect("run");
            let secs = r.epoch_time.as_secs_f64();
            if overlap {
                with_overlap = secs;
            } else {
                without = secs;
            }
            t.row(vec![
                model.name.clone(),
                overlap.to_string(),
                format!("{secs:.2}"),
                format!("{:.2}", r.comm_wait.as_secs_f64()),
            ]);
        }
        assert!(
            without >= with_overlap,
            "{}: overlap must not slow training ({without} vs {with_overlap})",
            model.name
        );
    }
    t.finish();
    println!("shape check: DDP's overlap hides exposed communication ✓");
}
