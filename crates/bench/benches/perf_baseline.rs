//! Revision-portable sweep timer for `scripts/bench.sh`.
//!
//! Runs the identical figure sweep to `perf_report` but records only the
//! fields every revision's `SweepPerf` exposes (wall-clock, cache
//! counters), so `bench.sh` can inject this file into a checkout of an
//! older revision and time the *same workload* on the *old simulator
//! core* — that measured wall-clock is the "pre-PR baseline" the
//! `BENCH_<n>.json` speedup is computed against.
//!
//! Knobs: `STASH_BENCH_ITERS`, `STASH_PERF_OUT` (default
//! `results/perf_baseline.json`).

#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::fs;

use stash_bench::{bench_iters, results_dir, run_sweep, SweepJob};
use stash_dnn::zoo;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{p3_16xlarge, p3_24xlarge, p3_2xlarge, p3_8xlarge};

/// Must stay byte-for-byte the same grid as `perf_report::jobs`.
fn jobs() -> Vec<SweepJob> {
    let clusters = [
        ClusterSpec::single(p3_2xlarge()),
        ClusterSpec::single(p3_8xlarge()),
        ClusterSpec::homogeneous(p3_8xlarge(), 2),
        ClusterSpec::single(p3_16xlarge()),
        ClusterSpec::single(p3_24xlarge()),
    ];
    let models = [zoo::alexnet(), zoo::resnet18()];
    clusters
        .iter()
        .flat_map(|c| {
            models
                .iter()
                .map(|m| SweepJob::new(m.clone(), 32, c.clone()))
        })
        .collect()
}

fn main() {
    let (results, perf) = run_sweep(jobs());
    for (i, r) in results.iter().enumerate() {
        assert!(r.is_ok(), "sweep job {i} failed: {:?}", r.as_ref().err());
    }
    let record = serde_json::json!({
        "iters_per_step": bench_iters(),
        "jobs": perf.jobs as u64,
        "threads": perf.threads as u64,
        "wall_secs": perf.wall_secs,
        "cache_hits": perf.cache_hits,
        "cache_misses": perf.cache_misses,
        "cache_hit_rate": perf.hit_rate(),
    });
    let out = std::env::var("STASH_PERF_OUT")
        .map_or_else(|_| results_dir().join("perf_baseline.json"), Into::into);
    fs::write(
        &out,
        serde_json::to_string_pretty(&record).expect("serialize baseline record"),
    )
    .expect("write baseline record");
    println!(
        "[perf_baseline: {:.3}s wall for {} jobs -> {}]",
        perf.wall_secs,
        perf.jobs,
        out.display()
    );
}
