//! Extension: the same characterization across clouds.
//!
//! The paper's intro names AWS, Azure and GCP but studies AWS only. Since
//! all three rent the same K80/V100 silicon behind different packaging,
//! Stash's methodology ports directly; this sweep characterizes the
//! analogous Azure/GCP shapes next to their AWS counterparts.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{bench_iters, pct, Table};
use stash_core::cost::epoch_cost;
use stash_core::profiler::Stash;
use stash_dnn::zoo;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{p2_8xlarge, p3_16xlarge, p3_8xlarge_sliced};
use stash_hwtopo::interconnect::Slicing;
use stash_hwtopo::providers::{azure_nc24, azure_nc24s_v3, gcp_n1_k80x4, gcp_n1_v100x8};

fn main() {
    let mut t = Table::new(
        "extension_cross_cloud",
        "AWS vs Azure vs GCP for the same silicon (extension beyond the paper)",
        &[
            "model",
            "cloud",
            "instance",
            "ic_stall_pct",
            "epoch_s",
            "epoch_cost_usd",
        ],
    );
    let configs = [
        ("aws", ClusterSpec::single(p2_8xlarge())),
        ("azure", ClusterSpec::single(azure_nc24())),
        ("gcp", ClusterSpec::single(gcp_n1_k80x4())),
        ("aws", ClusterSpec::single(p3_8xlarge_sliced(Slicing::Full))),
        ("azure", ClusterSpec::single(azure_nc24s_v3())),
        ("aws", ClusterSpec::single(p3_16xlarge())),
        ("gcp", ClusterSpec::single(gcp_n1_v100x8())),
    ];
    let mut nvlink_ic = Vec::new();
    let mut pcie_ic = Vec::new();
    for model in [zoo::resnet18()] {
        let stash = Stash::new(model.clone())
            .with_batch(32)
            .with_sampled_iterations(bench_iters());
        for (cloud, cluster) in &configs {
            let r = stash.profile(cluster).expect("profile");
            let ic = r.interconnect_stall_pct().unwrap_or(0.0);
            let bill = epoch_cost(&r, cluster);
            let nvlink = cluster.instances[0].interconnect.has_nvlink();
            if nvlink {
                nvlink_ic.push(ic);
            } else if cluster.world_size() > 1 {
                pcie_ic.push(ic);
            }
            t.row(vec![
                model.name.clone(),
                (*cloud).to_string(),
                cluster.display_name(),
                pct(Some(ic)),
                format!("{:.1}", bill.epoch_time.as_secs_f64()),
                format!("{:.2}", bill.epoch_cost),
            ]);
        }
    }
    t.finish();
    // The silicon, not the cloud, decides the interconnect stall.
    let max_nvlink = nvlink_ic.iter().fold(0.0_f64, |a, &b| a.max(b));
    let min_pcie = pcie_ic.iter().fold(f64::INFINITY, |a, &b| a.min(b));
    assert!(
        max_nvlink < min_pcie,
        "every NVLink shape must beat every PCIe shape: nvlink {nvlink_ic:?} vs pcie {pcie_ic:?}"
    );
    println!("shape check: interconnect stalls follow the silicon across clouds ✓");
}
