//! Fig. 15: GPU memory utilisation, P2 (K80) vs P3 (V100), ShuffleNet vs
//! ResNet18 across batch sizes.
//!
//! Expected shape: ShuffleNet's V100 utilisation is very low — it cannot
//! exploit the large GPU, which is why it trains cost-effectively on P2.

use stash_bench::Table;
use stash_dnn::zoo;
use stash_gpucompute::memory::utilization_pct;
use stash_hwtopo::gpu::GpuModel;

fn main() {
    let mut t = Table::new(
        "fig15_gpu_memory",
        "GPU memory utilisation %, P2 vs P3 (paper Fig. 15)",
        &["model", "batch", "gpu", "memory_util_pct"],
    );
    let mut shuffle_v100: Vec<f64> = Vec::new();
    let mut resnet_v100: Vec<f64> = Vec::new();
    for model in [zoo::shufflenet(), zoo::resnet18()] {
        for batch in [32_u64, 64, 128] {
            for gpu in [GpuModel::K80, GpuModel::V100] {
                let util = utilization_pct(&gpu.spec(), &model, batch);
                if gpu == GpuModel::V100 {
                    if model.name == "ShuffleNet" {
                        shuffle_v100.push(util);
                    } else {
                        resnet_v100.push(util);
                    }
                }
                t.row(vec![
                    model.name.clone(),
                    batch.to_string(),
                    gpu.label().to_string(),
                    format!("{util:.1}"),
                ]);
            }
        }
    }
    t.finish();
    // ShuffleNet sits below ResNet18 at every batch size, and never
    // reaches a third of the V100's memory even at batch 128.
    for (s, r) in shuffle_v100.iter().zip(&resnet_v100) {
        assert!(s < r, "ShuffleNet must underuse the V100: {s:.1} vs {r:.1}");
    }
    assert!(shuffle_v100.last().unwrap() < &35.0);
    println!("shape check: ShuffleNet has low GPU utilisation on V100 ✓");
}
