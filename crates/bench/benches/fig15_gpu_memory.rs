//! Fig. 15: GPU memory utilisation, P2 (K80) vs P3 (V100), ShuffleNet vs
//! ResNet18 across batch sizes.
//!
//! Expected shape: ShuffleNet's V100 utilisation is very low — it cannot
//! exploit the large GPU, which is why it trains cost-effectively on P2.

#![allow(clippy::unwrap_used, clippy::expect_used)]

use stash_bench::{bench_iters, rollup_from_reports, Table};
use stash_core::profiler::Stash;
use stash_dnn::zoo;
use stash_gpucompute::memory::utilization_pct;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::gpu::GpuModel;
use stash_hwtopo::instance::{p2_xlarge, p3_2xlarge};

fn main() {
    let mut t = Table::new(
        "fig15_gpu_memory",
        "GPU memory utilisation %, P2 vs P3 (paper Fig. 15)",
        &["model", "batch", "gpu", "memory_util_pct"],
    );
    let mut shuffle_v100: Vec<f64> = Vec::new();
    let mut resnet_v100: Vec<f64> = Vec::new();
    for model in [zoo::shufflenet(), zoo::resnet18()] {
        for batch in [32_u64, 64, 128] {
            for gpu in [GpuModel::K80, GpuModel::V100] {
                let util = utilization_pct(&gpu.spec(), &model, batch);
                if gpu == GpuModel::V100 {
                    if model.name == "ShuffleNet" {
                        shuffle_v100.push(util);
                    } else {
                        resnet_v100.push(util);
                    }
                }
                t.row(vec![
                    model.name.clone(),
                    batch.to_string(),
                    gpu.label().to_string(),
                    format!("{util:.1}"),
                ]);
            }
        }
    }
    // A profiled counterpart of the memory table — one run per model on
    // the single-GPU instance of each family — so this figure emits the
    // same `results/<name>_rollup.json` artifact as the rest of the set.
    let mut reports = Vec::new();
    for model in [zoo::shufflenet(), zoo::resnet18()] {
        for instance in [p2_xlarge(), p3_2xlarge()] {
            let stash = Stash::new(model.clone())
                .with_batch(32)
                .with_sampled_iterations(bench_iters());
            let cluster = ClusterSpec::single(instance);
            reports.push(stash.profile(&cluster).expect("profile"));
        }
    }
    t.set_rollup(rollup_from_reports(&reports));
    t.finish();
    // ShuffleNet sits below ResNet18 at every batch size, and never
    // reaches a third of the V100's memory even at batch 128.
    for (s, r) in shuffle_v100.iter().zip(&resnet_v100) {
        assert!(s < r, "ShuffleNet must underuse the V100: {s:.1} vs {r:.1}");
    }
    assert!(shuffle_v100.last().unwrap() < &35.0);
    println!("shape check: ShuffleNet has low GPU utilisation on V100 ✓");
}
