//! GPU memory model.
//!
//! Training memory = model state (weights + gradients + SGD momentum) +
//! saved activations x batch + framework overhead. This model decides which
//! batch sizes fit on which GPUs — reproducing the paper's constraints
//! (BERT-large fits batch 4 on a 16 GB V100, batch 8 only on the 32 GB
//! p3.24xlarge) — and produces the memory-utilisation comparison of
//! Fig. 15.

use serde::Serialize;
use stash_dnn::model::Model;
use stash_hwtopo::gpu::GpuSpec;

/// Multiplier on raw activation bytes accounting for autograd-saved
/// intermediates, cuDNN workspaces and allocator fragmentation.
pub const ACTIVATION_OVERHEAD: f64 = 1.5;

/// Fixed CUDA context + framework reservation per process, bytes.
pub const FRAMEWORK_RESERVED: f64 = 0.5e9;

/// Copies of parameter-sized state resident on the GPU: weights,
/// gradients, SGD momentum.
pub const PARAM_STATE_COPIES: f64 = 3.0;

/// Breakdown of one rank's GPU memory demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct MemoryEstimate {
    /// Weights + gradients + optimizer state, bytes.
    pub model_state_bytes: f64,
    /// Saved activations for the mini-batch, bytes.
    pub activation_bytes: f64,
    /// Input batch staged on the device, bytes.
    pub input_bytes: f64,
    /// Framework/context reservation, bytes.
    pub reserved_bytes: f64,
}

impl MemoryEstimate {
    /// Total bytes demanded.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.model_state_bytes + self.activation_bytes + self.input_bytes + self.reserved_bytes
    }
}

/// Estimates per-GPU training memory for `model` at per-GPU `batch`
/// (fp32; see [`estimate_with`] for other precisions).
#[must_use]
pub fn estimate(model: &Model, batch: u64) -> MemoryEstimate {
    estimate_with(model, batch, crate::precision::Precision::Fp32)
}

/// Precision-aware memory estimate: AMP halves activations but keeps
/// fp32 master state (plus fp16 working copies).
#[must_use]
pub fn estimate_with(
    model: &Model,
    batch: u64,
    precision: crate::precision::Precision,
) -> MemoryEstimate {
    MemoryEstimate {
        model_state_bytes: model.param_count() as f64
            * 4.0
            * PARAM_STATE_COPIES
            * precision.state_factor(),
        activation_bytes: model.activation_bytes()
            * batch as f64
            * ACTIVATION_OVERHEAD
            * precision.memory_factor(),
        input_bytes: model.input_sample_bytes * batch as f64,
        reserved_bytes: FRAMEWORK_RESERVED,
    }
}

/// Whether `model` at `batch` fits in `gpu` memory.
#[must_use]
pub fn fits(gpu: &GpuSpec, model: &Model, batch: u64) -> bool {
    estimate(model, batch).total() <= gpu.mem_bytes
}

/// GPU memory utilisation percentage (may exceed 100 when oversubscribed)
/// — the metric of paper Fig. 15.
#[must_use]
pub fn utilization_pct(gpu: &GpuSpec, model: &Model, batch: u64) -> f64 {
    estimate(model, batch).total() / gpu.mem_bytes * 100.0
}

/// Largest power-of-two-friendly batch (from the given candidates,
/// descending) that fits; `None` if even the smallest does not fit.
#[must_use]
pub fn max_batch_from(gpu: &GpuSpec, model: &Model, candidates: &[u64]) -> Option<u64> {
    let mut sorted: Vec<u64> = candidates.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    sorted.into_iter().find(|&b| fits(gpu, model, b))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use stash_dnn::zoo;
    use stash_hwtopo::gpu::GpuModel;

    #[test]
    fn bert_batch_limits_match_the_paper() {
        // §V: batch 4 is the max that fits BERT-large in a 16 GB V100;
        // the 32 GB p3.24xlarge allows batch 8.
        let bert = zoo::bert_large();
        let v100 = GpuModel::V100.spec();
        let v100_32 = GpuModel::V100_32.spec();
        assert!(
            fits(&v100, &bert, 4),
            "batch 4 must fit 16GB: {:.1} GB",
            estimate(&bert, 4).total() / 1e9
        );
        assert!(
            !fits(&v100, &bert, 8),
            "batch 8 must NOT fit 16GB: {:.1} GB",
            estimate(&bert, 8).total() / 1e9
        );
        assert!(fits(&v100_32, &bert, 8), "batch 8 must fit 32GB");
    }

    #[test]
    fn small_models_fit_batch_128_on_k80() {
        // The paper sweeps small models up to batch 128 on 12 GB K80s.
        let k80 = GpuModel::K80.spec();
        for m in zoo::small_models() {
            assert!(
                fits(&k80, &m, 128),
                "{} at 128 needs {:.1} GB",
                m.name,
                estimate(&m, 128).total() / 1e9
            );
        }
    }

    #[test]
    fn large_models_fit_batch_32_on_v100() {
        let v100 = GpuModel::V100.spec();
        for m in zoo::large_vision_models() {
            assert!(fits(&v100, &m, 32), "{}", m.name);
        }
    }

    #[test]
    fn fig15_shufflenet_underuses_v100() {
        // ShuffleNet's V100 memory utilisation is far below ResNet18's.
        let v100 = GpuModel::V100.spec();
        let shuffle = utilization_pct(&v100, &zoo::shufflenet(), 128);
        let res = utilization_pct(&v100, &zoo::resnet18(), 128);
        assert!(shuffle < res, "{shuffle} vs {res}");
        assert!(shuffle < 50.0, "{shuffle}");
    }

    #[test]
    fn k80_utilisation_exceeds_v100() {
        // Same workload on the smaller-memory K80 shows higher utilisation.
        let k80 = GpuModel::K80.spec();
        let v100 = GpuModel::V100.spec();
        let m = zoo::resnet18();
        assert!(utilization_pct(&k80, &m, 64) > utilization_pct(&v100, &m, 64));
    }

    #[test]
    fn max_batch_from_candidates() {
        let v100 = GpuModel::V100.spec();
        let bert = zoo::bert_large();
        assert_eq!(max_batch_from(&v100, &bert, &[4, 8, 16, 32]), Some(4));
        let v100_32 = GpuModel::V100_32.spec();
        // The paper runs batch 8 on the 32 GB card; anything >= 8 is
        // consistent with "twice the per-GPU memory".
        assert!(max_batch_from(&v100_32, &bert, &[4, 8, 16, 32]).unwrap() >= 8);
    }

    #[test]
    fn amp_fits_bigger_bert_batches() {
        use crate::precision::Precision;
        let bert = zoo::bert_large();
        let v100 = GpuModel::V100.spec();
        // fp32 tops out at 4; AMP's halved activations admit 8 on 16 GB.
        let amp8 = estimate_with(&bert, 8, Precision::Amp);
        assert!(
            amp8.total() <= v100.mem_bytes,
            "{:.1} GB",
            amp8.total() / 1e9
        );
        assert!(!fits(&v100, &bert, 8));
    }

    #[test]
    fn estimate_components_add_up() {
        let e = estimate(&zoo::alexnet(), 32);
        assert_eq!(
            e.total(),
            e.model_state_bytes + e.activation_bytes + e.input_bytes + e.reserved_bytes
        );
        assert!(e.model_state_bytes > 0.0 && e.activation_bytes > 0.0);
    }
}
