//! Roofline execution-time model.
//!
//! Each layer's kernel time is `max(compute time, memory time) + launch
//! overhead`: compute-bound layers run at a capped fraction of peak FLOP/s,
//! memory-bound layers (BN, ReLU, pooling) at HBM bandwidth, and tiny
//! kernels are dominated by the fixed launch cost — which is what makes
//! small models unable to exploit a V100 (paper §V-C / Fig. 15).

use serde::Serialize;
use stash_dnn::layer::Layer;
use stash_dnn::model::Model;
use stash_hwtopo::gpu::GpuSpec;
use stash_simkit::time::SimDuration;

use crate::precision::Precision;

/// Fraction of peak FLOP/s a well-tuned fp32 training kernel sustains
/// (cuDNN convolutions/GEMMs typically land at 50-70% of peak).
pub const MAX_EFFICIENCY: f64 = 0.55;

/// Backward-pass FLOPs relative to forward (grad w.r.t. inputs + weights).
pub const BWD_FLOP_FACTOR: f64 = 2.0;

/// Per-sample execution-time model for one GPU.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ComputeModel {
    gpu: GpuSpec,
    efficiency: f64,
    precision: Precision,
}

impl ComputeModel {
    /// Creates the model with the default kernel efficiency (fp32).
    #[must_use]
    pub fn new(gpu: GpuSpec) -> Self {
        ComputeModel {
            gpu,
            efficiency: MAX_EFFICIENCY,
            precision: Precision::Fp32,
        }
    }

    /// Switches the numeric precision (AMP engages tensor cores and halves
    /// memory traffic on capable GPUs).
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Self {
        self.precision = precision;
        self
    }

    /// Overrides the sustained-efficiency cap (ablations/tests).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < efficiency <= 1`.
    #[must_use]
    pub fn with_efficiency(mut self, efficiency: f64) -> Self {
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1]"
        );
        self.efficiency = efficiency;
        self
    }

    /// The GPU this model describes.
    #[must_use]
    pub fn gpu(&self) -> &GpuSpec {
        &self.gpu
    }

    fn kernel_time(&self, flops: f64, bytes: f64) -> SimDuration {
        let speedup = self.precision.compute_speedup(&self.gpu);
        let compute_s = flops / (self.gpu.peak_flops * self.efficiency * speedup);
        let memory_s = bytes * self.precision.memory_factor() / self.gpu.mem_bandwidth_bps;
        SimDuration::from_secs_f64(compute_s.max(memory_s)) + self.gpu.kernel_launch
    }

    /// Forward time of one layer for a mini-batch of `batch` samples.
    #[must_use]
    pub fn layer_fwd(&self, layer: &Layer, batch: u64) -> SimDuration {
        self.kernel_time(
            layer.flops_fwd * batch as f64,
            layer.bytes_fwd * batch as f64,
        )
    }

    /// Backward time of one layer for a mini-batch of `batch` samples.
    #[must_use]
    pub fn layer_bwd(&self, layer: &Layer, batch: u64) -> SimDuration {
        self.kernel_time(
            layer.flops_fwd * BWD_FLOP_FACTOR * batch as f64,
            layer.bytes_fwd * BWD_FLOP_FACTOR * batch as f64,
        )
    }

    /// Whole-model forward time for one mini-batch.
    #[must_use]
    pub fn fwd_time(&self, model: &Model, batch: u64) -> SimDuration {
        model.layers.iter().map(|l| self.layer_fwd(l, batch)).sum()
    }

    /// Whole-model backward time for one mini-batch.
    #[must_use]
    pub fn bwd_time(&self, model: &Model, batch: u64) -> SimDuration {
        model.layers.iter().map(|l| self.layer_bwd(l, batch)).sum()
    }

    /// Optimizer step (SGD + momentum): reads weights/grads/momentum and
    /// writes weights/momentum — 5 parameter-sized HBM accesses in one
    /// fused sweep.
    #[must_use]
    pub fn optimizer_step_time(&self, model: &Model) -> SimDuration {
        let bytes = model.param_count() as f64 * 4.0 * 5.0;
        SimDuration::from_secs_f64(bytes / self.gpu.mem_bandwidth_bps) + self.gpu.kernel_launch
    }

    /// Pure single-GPU iteration time (forward + backward + step), i.e.
    /// training with data already resident — the paper's step-1/2 synthetic
    /// baseline before communication.
    #[must_use]
    pub fn iteration_time(&self, model: &Model, batch: u64) -> SimDuration {
        self.fwd_time(model, batch) + self.bwd_time(model, batch) + self.optimizer_step_time(model)
    }

    /// Throughput in samples/sec at the given batch size.
    #[must_use]
    pub fn throughput(&self, model: &Model, batch: u64) -> f64 {
        let t = self.iteration_time(model, batch).as_secs_f64();
        if t <= 0.0 {
            0.0
        } else {
            batch as f64 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_dnn::zoo;
    use stash_hwtopo::gpu::GpuModel;

    fn k80() -> ComputeModel {
        ComputeModel::new(GpuModel::K80.spec())
    }
    fn v100() -> ComputeModel {
        ComputeModel::new(GpuModel::V100.spec())
    }

    #[test]
    fn v100_beats_k80_on_heavy_models() {
        let m = zoo::resnet50();
        let tp_k80 = k80().throughput(&m, 32);
        let tp_v100 = v100().throughput(&m, 32);
        assert!(tp_v100 > 3.0 * tp_k80, "{tp_v100} vs {tp_k80}");
    }

    #[test]
    fn throughputs_are_plausible() {
        // Shape-level sanity: V100 ResNet50 fp32 lands in the hundreds of
        // images/sec; K80 in the tens.
        let m = zoo::resnet50();
        let v = v100().throughput(&m, 32);
        assert!((150.0..2000.0).contains(&v), "V100 resnet50: {v}");
        let k = k80().throughput(&m, 32);
        assert!((20.0..400.0).contains(&k), "K80 resnet50: {k}");
    }

    #[test]
    fn small_models_are_launch_bound_on_v100() {
        // ShuffleNet gains little from quadrupling batch size on a V100
        // because kernels are tiny (paper §V-C): throughput at batch 128
        // is much better than 4x would predict at batch 32... i.e.
        // throughput grows sublinearly in compute terms but the *gap* to
        // linear scaling shows launch-bound behaviour at small batch.
        let m = zoo::shufflenet();
        let t32 = v100().iteration_time(&m, 32).as_secs_f64();
        let t128 = v100().iteration_time(&m, 128).as_secs_f64();
        // If fully compute-bound, t128 = 4 * t32. Launch overhead makes
        // t128 < 3.5 * t32.
        assert!(t128 < 3.5 * t32, "t32={t32} t128={t128}");
    }

    #[test]
    fn backward_costs_about_twice_forward() {
        let m = zoo::resnet18();
        let f = v100().fwd_time(&m, 64).as_secs_f64();
        let b = v100().bwd_time(&m, 64).as_secs_f64();
        let ratio = b / f;
        assert!((1.5..2.5).contains(&ratio), "bwd/fwd = {ratio}");
    }

    #[test]
    fn iteration_is_sum_of_parts() {
        let m = zoo::alexnet();
        let cm = v100();
        let total = cm.iteration_time(&m, 32);
        let parts = cm.fwd_time(&m, 32) + cm.bwd_time(&m, 32) + cm.optimizer_step_time(&m);
        assert_eq!(total, parts);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn bad_efficiency_rejected() {
        let _ = v100().with_efficiency(1.5);
    }

    #[test]
    fn amp_speeds_up_v100_but_not_k80() {
        use crate::precision::Precision;
        let m = zoo::resnet50();
        let v_fp32 = v100().iteration_time(&m, 32);
        let v_amp = v100().with_precision(Precision::Amp).iteration_time(&m, 32);
        assert!(v_amp < v_fp32, "amp {v_amp} vs fp32 {v_fp32}");
        let k_fp32 = k80().iteration_time(&m, 32);
        let k_amp = k80().with_precision(Precision::Amp).iteration_time(&m, 32);
        // K80 has no tensor cores: only the (small) memory-traffic halving
        // helps, so the gain must be modest.
        assert!(k_amp >= k_fp32.mul_f64(0.8), "k80 amp {k_amp} vs {k_fp32}");
    }

    #[test]
    fn efficiency_scales_compute_bound_layers() {
        let m = zoo::vgg11();
        let fast = ComputeModel::new(GpuModel::V100.spec()).with_efficiency(1.0);
        let slow = ComputeModel::new(GpuModel::V100.spec()).with_efficiency(0.25);
        assert!(slow.fwd_time(&m, 32) > fast.fwd_time(&m, 32));
    }
}
