//! # stash-gpucompute — GPU execution-time and memory models
//!
//! Maps a DNN description (`stash-dnn`) onto a GPU device spec
//! (`stash-hwtopo`):
//!
//! * [`kernel`] — per-layer roofline timing (`max(flops/peak,
//!   bytes/bandwidth) + launch`), whole-model iteration time, throughput;
//! * [`memory`] — per-rank training memory demand, fit checks and the
//!   Fig. 15 utilisation metric.
//!
//! # Examples
//!
//! ```
//! use stash_gpucompute::prelude::*;
//! use stash_dnn::zoo;
//! use stash_hwtopo::gpu::GpuModel;
//!
//! let cm = ComputeModel::new(GpuModel::V100.spec());
//! let resnet = zoo::resnet50();
//! assert!(cm.throughput(&resnet, 32) > 100.0); // images/sec
//! assert!(memory::fits(cm.gpu(), &resnet, 32));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod kernel;
pub mod memory;
pub mod precision;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::kernel::{ComputeModel, BWD_FLOP_FACTOR, MAX_EFFICIENCY};
    pub use crate::memory::{self, MemoryEstimate};
    pub use crate::precision::Precision;
}
