//! Numeric precision of the training run.
//!
//! The paper trains in fp32; automatic mixed precision (AMP) is the
//! obvious extension knob, and it moves *every* stall the profiler
//! measures: tensor cores speed up compute (V100/A100 only), fp16
//! halves gradient traffic (interconnect and network stalls) and halves
//! activation memory (allowing larger batches).

use serde::{Deserialize, Serialize};

use stash_hwtopo::gpu::{GpuModel, GpuSpec};

/// Numeric precision for training.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Precision {
    /// Plain fp32 — the paper's configuration.
    #[default]
    Fp32,
    /// Automatic mixed precision: fp16 compute/activations/gradients with
    /// fp32 master weights.
    Amp,
}

impl Precision {
    /// Bytes per gradient element on the wire.
    #[must_use]
    pub fn gradient_bytes_per_param(self) -> f64 {
        match self {
            Precision::Fp32 => 4.0,
            Precision::Amp => 2.0,
        }
    }

    /// Effective speedup of arithmetic throughput on `gpu` (tensor cores
    /// sustain ~2-3x end-to-end over fp32; pre-Volta GPUs gain nothing).
    #[must_use]
    pub fn compute_speedup(self, gpu: &GpuSpec) -> f64 {
        match (self, gpu.model) {
            (Precision::Fp32, _) | (Precision::Amp, GpuModel::K80) => 1.0,
            (Precision::Amp, GpuModel::V100 | GpuModel::V100_32) => 2.5,
            (Precision::Amp, GpuModel::A100) => 3.0,
        }
    }

    /// Scale factor on activation memory and kernel memory traffic.
    #[must_use]
    pub fn memory_factor(self) -> f64 {
        match self {
            Precision::Fp32 => 1.0,
            Precision::Amp => 0.5,
        }
    }

    /// Scale factor on parameter-sized GPU state (AMP keeps fp32 master
    /// weights and optimizer state plus fp16 working copies).
    #[must_use]
    pub fn state_factor(self) -> f64 {
        match self {
            Precision::Fp32 => 1.0,
            // (4 B weights + 4 B momentum + 4 B master) fp32 = 12 B vs
            // AMP: 4 + 4 + 4 master + 2 fp16 weights + 2 fp16 grads = 16 B
            // over the fp32 12 B baseline → 4/3.
            Precision::Amp => 4.0 / 3.0,
        }
    }

    /// Short label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Precision::Fp32 => "fp32",
            Precision::Amp => "amp",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amp_only_speeds_up_tensor_core_gpus() {
        let k80 = GpuModel::K80.spec();
        let v100 = GpuModel::V100.spec();
        let a100 = GpuModel::A100.spec();
        assert_eq!(Precision::Amp.compute_speedup(&k80), 1.0);
        assert!(Precision::Amp.compute_speedup(&v100) > 2.0);
        assert!(Precision::Amp.compute_speedup(&a100) >= Precision::Amp.compute_speedup(&v100));
        assert_eq!(Precision::Fp32.compute_speedup(&v100), 1.0);
    }

    #[test]
    fn amp_halves_wire_and_activation_bytes() {
        assert_eq!(Precision::Amp.gradient_bytes_per_param(), 2.0);
        assert_eq!(Precision::Amp.memory_factor(), 0.5);
        assert!(
            Precision::Amp.state_factor() > 1.0,
            "master copies cost state"
        );
    }

    #[test]
    fn default_is_the_papers_fp32() {
        assert_eq!(Precision::default(), Precision::Fp32);
        assert_eq!(Precision::Fp32.label(), "fp32");
        assert_eq!(Precision::Amp.label(), "amp");
    }
}
