//! The event-driven distributed-training engine.
//!
//! Simulates synchronous data-parallel training the way PyTorch DDP
//! executes it: every rank runs `wait-for-batch → forward → backward`
//! where the backward pass releases gradient buckets in reverse layer
//! order; buckets are all-reduced **in order, one at a time** (NCCL
//! single-stream semantics), overlapped with the remaining backward
//! compute; the iteration ends when both the backward pass and the last
//! bucket's collective have finished, followed by the optimizer step.
//!
//! All transfers — collective hops, SSD fetches, page-cache reads, H2D
//! uploads — are flows in one shared [`FlowNet`], so bus/SSD/NIC
//! contention between subsystems is emergent.

use std::collections::{BTreeMap, VecDeque};
use std::sync::OnceLock;

use stash_collectives::bucket::CommPlan;
use stash_collectives::constants::GRAD_HOOK_OVERHEAD;
use stash_collectives::schedule::{allreduce_transfers, allreduce_transfers_among, TransferSpec};
use stash_datapipe::loader::{LoaderAction, LoaderSpec, NodeLoader, TransferPurpose};
use stash_faults::plan::{FaultKind, FaultPlan};
use stash_flowsim::link::{LinkClass, LinkId};
use stash_flowsim::net::{FlowId, FlowNet, FlowSpec};
use stash_gpucompute::kernel::ComputeModel;
use stash_gpucompute::memory;
use stash_hwtopo::topology::{GpuId, Topology};
use stash_simkit::prelude::*;
use stash_telemetry::series::{IterSeries, SeriesRecorder, SeriesSample};
use stash_trace::{Category, SharedTracer, Track};

use crate::config::{ActiveGpus, DataMode, TrainConfig};
use crate::error::TrainError;
use crate::perf_stats;
use crate::recovery::{FaultOutcome, FaultRecord, FaultedRun, StragglerDetection};
use crate::report::{EpochReport, IterationSample};

/// Panicking accessor for engine invariants. The engine's phase machine
/// guarantees a number of `Option` fields are populated whenever the
/// corresponding code path runs (the fault scheduler once a plan is
/// armed, the fast-forward state inside a skip, the per-node loaders
/// after setup). This makes the invariant explicit at each site while
/// keeping the crate free of `unwrap`/`expect` under the clippy deny
/// gate: a violated invariant is a simulator bug, never a user error.
trait Req<T> {
    fn req(self, what: &str) -> T;
}

impl<T> Req<T> for Option<T> {
    #[inline]
    #[track_caller]
    fn req(self, what: &str) -> T {
        match self {
            Some(v) => v,
            None => panic!("engine invariant violated: {what}"),
        }
    }
}

const TAG_COMM: u64 = 1 << 48;
const TAG_LOADER: u64 = 2 << 48;

fn loader_tag(node: usize, worker: usize) -> u64 {
    TAG_LOADER | ((node as u64) << 16) | worker as u64
}

fn decode_loader_tag(tag: u64) -> (usize, usize) {
    (((tag >> 16) & 0xFFFF) as usize, (tag & 0xFFFF) as usize)
}

#[derive(Debug)]
enum Ev {
    NetWake,
    RankCompute {
        rank: usize,
    },
    LoaderPrep {
        node: usize,
        worker: usize,
    },
    /// Plan event `idx` fires (fault injection).
    Fault {
        idx: usize,
    },
    /// Window fault `idx` closes.
    FaultClear {
        idx: usize,
    },
    /// A preemption's restart delay elapsed; parked ranks resume.
    FaultResume,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    AwaitBatch,
    Forward,
    Backward {
        seg: usize,
    },
    AwaitComm,
    Step,
    /// Parked at a preemption barrier (iteration-boundary quantized),
    /// waiting for the restart delay or elastic re-formation.
    Recovering,
    Done,
}

#[derive(Debug)]
struct RankState {
    gpu: GpuId,
    phase: Phase,
    iter: u64,
    /// Micro-batch index within the current iteration (gradient
    /// accumulation); communication happens only on the last one.
    micro: u64,
    wait_start: Option<SimTime>,
    first_iter_done: Option<SimTime>,
    done_at: Option<SimTime>,
    compute: SimDuration,
    data_wait: SimDuration,
    comm_wait: SimDuration,
    /// Fault-recovery stall: preemption barrier waits, restart delays and
    /// replayed iterations. Zero on fault-free runs.
    recovery: SimDuration,
    /// Excess compute inflicted by transient straggler windows. Zero on
    /// fault-free runs.
    straggler: SimDuration,
}

#[derive(Debug)]
struct NodeCompute {
    fwd: SimDuration,
    bwd_segments: Vec<SimDuration>,
    step: SimDuration,
}

/// Rank-0 accumulators at the start of the current iteration.
#[derive(Debug, Default, Clone, Copy)]
struct IterMark {
    start: SimTime,
    data_wait: SimDuration,
    comm_wait: SimDuration,
}

#[derive(Debug)]
struct Comm {
    world: usize,
    ready: Vec<usize>,
    started: usize,
    completed: usize,
    inflight_remaining: usize,
}

/// Knobs controlling *how* an epoch is simulated. Every combination
/// produces a bit-identical [`EpochReport`]; the options only trade
/// simulation effort.
#[derive(Debug, Clone)]
pub struct EngineOptions {
    /// Detect the exact periodic steady state of synthetic-data runs and
    /// extend the remaining iterations analytically instead of simulating
    /// them event by event. Defaults from the `STASH_FAST_FORWARD`
    /// environment variable (`0` disables; anything else — including
    /// unset — enables).
    pub fast_forward: bool,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            fast_forward: fast_forward_env_default(),
        }
    }
}

/// `STASH_FAST_FORWARD` parsed once per process: reading environment
/// variables allocates, and [`EngineOptions::default`] sits on the
/// zero-allocation hot path.
fn fast_forward_env_default() -> bool {
    static FF_ENV: OnceLock<bool> = OnceLock::new();
    *FF_ENV.get_or_init(|| std::env::var_os("STASH_FAST_FORWARD").is_none_or(|v| v != "0"))
}

/// Reusable simulation state: the flow network, the event queue and the
/// engine's pooled scratch buffers.
///
/// [`run_epoch_in`] borrows an arena for the duration of one epoch and
/// returns it with all capacity intact, so a sweep that simulates
/// thousands of configurations allocates its arenas once per worker
/// instead of once per epoch. A reused arena is observationally identical
/// to a fresh one — reports are bit-identical either way.
#[derive(Debug, Default)]
pub struct EngineArena {
    net: FlowNet,
    q: EventQueue<Ev>,
    completed: Vec<(FlowId, u64)>,
    loader_work: VecDeque<(usize, LoaderAction)>,
}

impl EngineArena {
    /// Creates an empty arena (buffers grow on first use).
    #[must_use]
    pub fn new() -> EngineArena {
        EngineArena::default()
    }
}

/// Consecutive identical iteration fingerprints (per rank) and identical
/// host-bus load cycles (globally) required before fast-forward engages.
const FF_CONFIRM: u32 = 3;

/// Per-rank steady-state fingerprint: the integer-ns deltas of one
/// iteration. Two iterations with equal deltas are indistinguishable to
/// every accumulator the report reads.
#[derive(Debug, Default, Clone, Copy)]
struct FfRank {
    last_done: SimTime,
    compute: SimDuration,
    data_wait: SimDuration,
    comm_wait: SimDuration,
    /// (iteration period, Δcompute, Δdata_wait, Δcomm_wait) in ns.
    delta: (u64, u64, u64, u64),
    repeats: u32,
    seen: bool,
}

/// Steady-state detector. Lives only on synthetic-data, untraced runs.
#[derive(Debug)]
struct FfState {
    ranks: Vec<FfRank>,
    last_boundary: Option<SimTime>,
    cycle_repeats: u32,
    /// Host-bus load samples of the previous completed iteration cycle.
    probe_prev: Vec<(SimTime, f64)>,
    /// Scratch for the cycle currently being compared.
    probe_cur: Vec<(SimTime, f64)>,
}

/// The reporting rank's accumulator baseline at the last emitted series
/// boundary. Every series bucket is the exact integer-ns delta of these
/// fields, so the series totals reconcile against the rank accumulators
/// (and through them the [`EpochReport`]) by construction.
#[derive(Debug, Default, Clone, Copy)]
struct SeriesMark {
    start: SimTime,
    compute: SimDuration,
    data_wait: SimDuration,
    comm_wait: SimDuration,
    recovery: SimDuration,
    straggler: SimDuration,
    /// Flow-solver full-recompute counter at the boundary.
    recomputes: u64,
}

/// Live iteration-series recording state: the bounded exact-sum recorder
/// plus the delta baseline. Constructed only when a series entry point
/// was used **and** the telemetry switch is on; `None` otherwise, so the
/// default path records nothing and allocates nothing.
#[derive(Debug)]
struct SeriesState {
    rec: SeriesRecorder,
    mark: SeriesMark,
}

/// Snapshot of a rank's timing accumulators, taken when replay of lost
/// iterations begins so the replayed work can be re-billed as recovery
/// stall when it completes.
#[derive(Debug, Clone, Copy)]
struct AccumSnap {
    compute: SimDuration,
    data_wait: SimDuration,
    comm_wait: SimDuration,
}

/// Live state of the fault injector and the recovery machinery.
///
/// Constructed **only** for a non-empty [`FaultPlan`]; when absent, every
/// fault branch in the engine is skipped and the simulation is
/// bit-identical to the fault-free engine (enforced by the workspace
/// `faults_differential` test).
#[derive(Debug)]
struct FaultRuntime {
    plan: FaultPlan,
    /// Whether each window fault is currently open.
    open: Vec<bool>,
    /// Whether each plan event fired before the epoch finished.
    fired: Vec<bool>,
    /// Wall-clock stall blamed directly on each plan event.
    blame: Vec<SimDuration>,
    /// Plan events not yet fully resolved. Fast-forward may only engage
    /// once this reaches zero (and no replay is active): an engaged
    /// fast-forward would otherwise skip straight past scheduled faults.
    outstanding: usize,
    /// Per-rank product of the slowdowns of open straggler windows
    /// (exactly 1.0 when none are open).
    slow_factor: Vec<f64>,
    /// Nominal `(tx, rx)` NIC capacities per node, captured before any
    /// fault fires so overlapping windows compose multiplicatively and
    /// restore exactly.
    nominal_nic: Vec<[(LinkId, f64); 2]>,
    /// Nominal SSD capacity per node.
    nominal_ssd: Vec<(LinkId, f64)>,
    /// Preemptions waiting for the current one to resolve.
    preempt_queue: VecDeque<usize>,
    /// The preemption currently gathering ranks at the iteration barrier.
    barrier: Option<usize>,
    /// The preemption whose restart delay is running (barrier complete).
    resume: Option<usize>,
    /// Per-rank replay state: `(replay_until, snapshot, blamed event)`.
    replay: Vec<Option<(u64, AccumSnap, usize)>>,
    /// Ranks with an active replay.
    replaying: usize,
    /// Nodes permanently removed by elastic re-formation.
    dead_nodes: Vec<bool>,
    /// Ranks removed from the active set by elastic re-formation.
    dead_ranks: Vec<usize>,
    /// First-notify time of each gradient bucket this iteration
    /// (straggler detection bookkeeping; never perturbs timing).
    bucket_first: Vec<Option<SimTime>>,
    /// Current straggler-detection timeout; grows by the policy backoff
    /// after each detection so a persistent straggler is flagged a
    /// bounded number of times.
    timeout: SimDuration,
    detections: Vec<StragglerDetection>,
    replayed_iterations: u64,
}

/// Runs one training epoch under `cfg` and reports the timing breakdown.
///
/// # Errors
///
/// Returns [`TrainError::InvalidConfig`] for contradictory settings and
/// [`TrainError::OutOfMemory`] when the model + batch exceeds any
/// participating GPU's memory.
pub fn run_epoch(cfg: &TrainConfig) -> Result<EpochReport, TrainError> {
    run_epoch_inner(cfg, None, &EngineOptions::default(), None, None, false).map(|(r, _)| r.report)
}

/// [`run_epoch`] with explicit [`EngineOptions`]. The report is
/// bit-identical for every option combination.
///
/// # Errors
///
/// As for [`run_epoch`].
pub fn run_epoch_with(
    cfg: &TrainConfig,
    options: &EngineOptions,
) -> Result<EpochReport, TrainError> {
    run_epoch_inner(cfg, None, options, None, None, false).map(|(r, _)| r.report)
}

/// [`run_epoch`] reusing a caller-owned [`EngineArena`] for the flow
/// network, event queue and scratch buffers: repeated measurements stop
/// paying per-epoch allocation and deallocation. The report is
/// bit-identical to a fresh-arena run.
///
/// # Errors
///
/// As for [`run_epoch`].
pub fn run_epoch_in(cfg: &TrainConfig, arena: &mut EngineArena) -> Result<EpochReport, TrainError> {
    run_epoch_inner(
        cfg,
        None,
        &EngineOptions::default(),
        None,
        Some(arena),
        false,
    )
    .map(|(r, _)| r.report)
}

/// [`run_epoch_in`] with explicit [`EngineOptions`].
///
/// # Errors
///
/// As for [`run_epoch`].
pub fn run_epoch_in_with(
    cfg: &TrainConfig,
    options: &EngineOptions,
    arena: &mut EngineArena,
) -> Result<EpochReport, TrainError> {
    run_epoch_inner(cfg, None, options, None, Some(arena), false).map(|(r, _)| r.report)
}

/// [`run_epoch`] with a trace recorder attached: compute, stall-wait,
/// all-reduce-bucket and loader-pipeline spans are emitted through
/// `tracer` as the simulation executes.
///
/// The report is bit-identical to the untraced run — tracing observes the
/// engine, it never perturbs it. With a disabled tracer
/// ([`stash_trace::Tracer::disabled`]) this *is* the untraced run: no
/// event is constructed and nothing is allocated.
///
/// # Errors
///
/// As for [`run_epoch`].
pub fn run_epoch_traced(
    cfg: &TrainConfig,
    tracer: &SharedTracer,
) -> Result<EpochReport, TrainError> {
    run_epoch_inner(
        cfg,
        Some(tracer),
        &EngineOptions::default(),
        None,
        None,
        false,
    )
    .map(|(r, _)| r.report)
}

/// Runs one epoch with `plan`'s faults injected through the event queue
/// and the engine's recovery machinery (checkpoint/restart replay,
/// elastic re-formation, bounded-timeout straggler detection) engaged.
///
/// An **empty** plan is bit-identical to [`run_epoch`] — fault handling
/// is only constructed for plans that schedule at least one event.
///
/// # Errors
///
/// As for [`run_epoch`], plus [`TrainError::InvalidFaultPlan`] when the
/// plan does not fit the cluster.
pub fn run_epoch_faulted(cfg: &TrainConfig, plan: &FaultPlan) -> Result<FaultedRun, TrainError> {
    run_epoch_inner(
        cfg,
        None,
        &EngineOptions::default(),
        Some(plan),
        None,
        false,
    )
    .map(|(r, _)| r)
}

/// [`run_epoch_faulted`] with explicit [`EngineOptions`]. Steady-state
/// fast-forward disengages while any fault is pending or being recovered
/// from and re-engages once the plan is quiescent, so the report is
/// bit-identical across option combinations.
///
/// # Errors
///
/// As for [`run_epoch_faulted`].
pub fn run_epoch_faulted_with(
    cfg: &TrainConfig,
    plan: &FaultPlan,
    options: &EngineOptions,
) -> Result<FaultedRun, TrainError> {
    run_epoch_inner(cfg, None, options, Some(plan), None, false).map(|(r, _)| r)
}

/// [`run_epoch_faulted`] with a trace recorder attached: recovery and
/// straggler stall flow into the trace as first-class span categories
/// ([`Category::Recovery`], [`Category::Straggler`]) so critical-path
/// attribution and `stash report` work on chaos runs unchanged.
///
/// # Errors
///
/// As for [`run_epoch_faulted`].
pub fn run_epoch_faulted_traced(
    cfg: &TrainConfig,
    plan: &FaultPlan,
    tracer: &SharedTracer,
) -> Result<FaultedRun, TrainError> {
    run_epoch_inner(
        cfg,
        Some(tracer),
        &EngineOptions::default(),
        Some(plan),
        None,
        false,
    )
    .map(|(r, _)| r)
}

/// An epoch result paired with its iteration-resolved time series.
#[derive(Debug)]
pub struct SeriesRun {
    /// The report and fault outcome, bit-identical to the same epoch run
    /// through any other entry point.
    pub run: FaultedRun,
    /// The recorded series. Empty when the telemetry switch
    /// ([`stash_telemetry::enabled`]) was off.
    pub series: IterSeries,
}

/// Runs one epoch recording the iteration-resolved time series: one
/// sample per iteration of the reporting rank (wall ns, the five stall
/// categories, solver recomputes, queue-depth high-water), fast-forwarded
/// spans as explicitly-marked compressed regions, fault windows as
/// annotations. Recording rides behind the process-wide telemetry switch
/// — with [`stash_telemetry::enabled`] off the series comes back empty —
/// and never perturbs the simulation: the report is bit-identical to
/// [`run_epoch`] / [`run_epoch_faulted`] with the same inputs, and the
/// series category totals reconcile against the report's stall
/// accumulators at integer-ns exactness (extrapolation factor included).
///
/// Unlike `record_trace`, series recording does **not** disable
/// steady-state fast-forward: compressed regions are first-class samples.
///
/// # Errors
///
/// As for [`run_epoch_faulted`] (or [`run_epoch`] when `plan` is `None`).
pub fn run_epoch_series(
    cfg: &TrainConfig,
    options: &EngineOptions,
    plan: Option<&FaultPlan>,
) -> Result<SeriesRun, TrainError> {
    run_epoch_inner(cfg, None, options, plan, None, true)
        .map(|(run, series)| SeriesRun { run, series })
}

/// [`run_epoch_series`] reusing a caller-owned [`EngineArena`].
///
/// # Errors
///
/// As for [`run_epoch_series`].
pub fn run_epoch_series_in(
    cfg: &TrainConfig,
    options: &EngineOptions,
    plan: Option<&FaultPlan>,
    arena: &mut EngineArena,
) -> Result<SeriesRun, TrainError> {
    run_epoch_inner(cfg, None, options, plan, Some(arena), true)
        .map(|(run, series)| SeriesRun { run, series })
}

fn run_epoch_inner(
    cfg: &TrainConfig,
    tracer: Option<&SharedTracer>,
    options: &EngineOptions,
    plan: Option<&FaultPlan>,
    arena: Option<&mut EngineArena>,
    record_series: bool,
) -> Result<(FaultedRun, IterSeries), TrainError> {
    cfg.validate()?;
    if let Some(p) = plan {
        p.validate(cfg.cluster.world_size(), cfg.cluster.node_count())
            .map_err(|e| TrainError::InvalidFaultPlan(e.to_string()))?;
    }
    for inst in &cfg.cluster.instances {
        let spec = inst.gpu.spec();
        let est = memory::estimate_with(&cfg.model, cfg.per_gpu_batch, cfg.precision);
        if est.total() > spec.mem_bytes {
            return Err(TrainError::OutOfMemory {
                gpu: spec.name.to_string(),
                required_bytes: est.total(),
                capacity_bytes: spec.mem_bytes,
            });
        }
    }
    let mut local = EngineArena::default();
    let arena = arena.unwrap_or(&mut local);
    let mut engine = Engine::new(cfg, options, plan, arena, record_series)?;
    if let Some(t) = tracer {
        engine.attach_tracer(t);
    }
    let result = engine.run();
    let series = engine.take_series();
    engine.into_arena(arena);
    result.map(|run| (run, series))
}

struct Engine<'a> {
    cfg: &'a TrainConfig,
    q: EventQueue<Ev>,
    net: FlowNet,
    topo: Topology,
    plan: CommPlan,
    node_compute: Vec<NodeCompute>,
    ranks: Vec<RankState>,
    active: Vec<usize>,
    comm: Option<Comm>,
    loaders: Vec<Option<NodeLoader>>,
    /// The single pending [`Ev::NetWake`], if any. Keeping (and
    /// cancelling) the key guarantees at most one wake is ever queued:
    /// without cancellation, every same-timestamp stale wake re-arms a
    /// fresh future wake, and the duplicate population grows by one per
    /// rate change — quadratic event counts on contended epochs.
    next_wake: Option<(SimTime, EventKey)>,
    sim_iters: u64,
    trace: Vec<IterationSample>,
    iter_mark: IterMark,
    /// Whether bucket all-reduces overlap with backward compute. Requested
    /// via [`TrainConfig::overlap`], but *forced off* when the collective
    /// ring is staged through the PCIe host fabric: without peer-to-peer
    /// DMA the staged copies monopolise the GPU's DMA engines and streams,
    /// so in practice (and in the paper's P2 measurements) communication
    /// serializes with compute.
    overlap: bool,
    /// Optional span recorder shared with the flow network. `None` for
    /// untraced runs.
    tracer: Option<SharedTracer>,
    /// Cached `tracer.is_enabled()`: gates every emission site and all
    /// trace-only bookkeeping with one predictable branch.
    trace_on: bool,
    /// Stall class of gradient synchronisation on this cluster: `Network`
    /// when ranks span instances, `Interconnect` within one.
    comm_cat: Category,
    /// When the in-flight all-reduce bucket entered the network, and its
    /// bucket index (for per-bucket blame in trace analysis).
    bucket_open: Option<(SimTime, usize)>,
    /// Start time and purpose of each loader worker's in-flight transfer,
    /// keyed by `(node, worker)`. Populated only when tracing.
    xfer_open: BTreeMap<(usize, usize), (SimTime, TransferPurpose)>,
    /// Per-bucket all-reduce transfer plans, computed once at construction.
    /// `allreduce_transfers` depends only on the (static) topology and the
    /// bucket's wire bytes, so starting flows from the cached plan is
    /// bit-identical to replanning every iteration — without the per-bucket
    /// `Vec` and route clones.
    comm_plans: Vec<Vec<TransferSpec>>,
    /// Pooled buffer ping-ponged with [`FlowNet`]'s completion list.
    completed_buf: Vec<(FlowId, u64)>,
    /// Pooled loader action work-list.
    loader_work: VecDeque<(usize, LoaderAction)>,
    /// Steady-state fast-forward detector; `None` when ineligible
    /// (real-data input, tracing, per-iteration trace recording, or
    /// disabled via [`EngineOptions`]).
    ff: Option<FfState>,
    /// Fault injector and recovery machinery; `None` unless a non-empty
    /// [`FaultPlan`] was supplied, in which case every fault branch is
    /// dead code and the simulation is bit-identical to the fault-free
    /// engine.
    faults: Option<FaultRuntime>,
    /// Iterations skipped by fast-forward (diagnostic only; flushed to
    /// [`perf_stats`], never reported in the [`EpochReport`]).
    ff_iterations: u64,
    /// Flow-network recompute counters at construction, so per-epoch deltas
    /// survive arena reuse.
    net_stats0: (u64, u64),
    /// Iteration-series recorder; `None` unless a series entry point was
    /// used with the telemetry switch on. Pure observation — never
    /// perturbs the simulation.
    series: Option<SeriesState>,
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("world", &self.active.len())
            .field("now", &self.q.now())
            .finish()
    }
}

impl<'a> Engine<'a> {
    fn new(
        cfg: &'a TrainConfig,
        options: &EngineOptions,
        fault_plan: Option<&FaultPlan>,
        arena: &mut EngineArena,
        record_series: bool,
    ) -> Result<Engine<'a>, TrainError> {
        let mut net = std::mem::take(&mut arena.net);
        if net.link_count() > 0 {
            // A non-empty network means this arena already ran an epoch:
            // its slabs and route pools come back warm.
            stash_telemetry::metrics::ARENA_REUSE.inc();
        }
        net.reset();
        let mut q = std::mem::take(&mut arena.q);
        q.reset();
        let mut completed_buf = std::mem::take(&mut arena.completed);
        completed_buf.clear();
        let mut loader_work = std::mem::take(&mut arena.loader_work);
        loader_work.clear();
        let topo = Topology::build(&cfg.cluster, &mut net);
        let plan = CommPlan::new(&cfg.model, cfg.bucketing);
        let sim_iters = cfg.simulated_iterations();

        let node_compute: Vec<NodeCompute> = cfg
            .cluster
            .instances
            .iter()
            .map(|inst| {
                let cm = ComputeModel::new(inst.gpu.spec()).with_precision(cfg.precision);
                let bwd_segments = plan
                    .buckets
                    .iter()
                    .map(|b| {
                        (b.layer_range.0..b.layer_range.1)
                            .map(|i| cm.layer_bwd(&cfg.model.layers[i], cfg.per_gpu_batch))
                            .sum()
                    })
                    .collect();
                NodeCompute {
                    fwd: cm.fwd_time(&cfg.model, cfg.per_gpu_batch),
                    bwd_segments,
                    step: cm.optimizer_step_time(&cfg.model),
                }
            })
            .collect();

        let active: Vec<usize> = match cfg.active {
            ActiveGpus::All => (0..topo.world_size()).collect(),
            ActiveGpus::Single => vec![0],
        };
        let ranks: Vec<RankState> = (0..topo.world_size())
            .map(|r| RankState {
                gpu: topo.rank_gpu(r),
                phase: Phase::Done,
                iter: 0,
                micro: 0,
                wait_start: None,
                first_iter_done: None,
                done_at: None,
                compute: SimDuration::ZERO,
                data_wait: SimDuration::ZERO,
                comm_wait: SimDuration::ZERO,
                recovery: SimDuration::ZERO,
                straggler: SimDuration::ZERO,
            })
            .collect();

        let world = active.len();
        let staged_ring = world > 1
            && allreduce_transfers(&topo, &net, cfg.algorithm, 1.0)
                .iter()
                .any(|t| {
                    t.route
                        .iter()
                        .any(|l| net.link(*l).class == LinkClass::PcieHostBus)
                });
        let overlap = cfg.overlap && !staged_ring;
        let comm = (world > 1).then(|| Comm {
            world,
            ready: vec![0; plan.buckets.len()],
            started: 0,
            completed: 0,
            inflight_remaining: 0,
        });
        let comm_plans: Vec<Vec<TransferSpec>> = if world > 1 {
            plan.buckets
                .iter()
                .map(|b| {
                    // Bucket bytes are planned in fp32; scale to the wire
                    // precision.
                    let bytes = b.bytes * cfg.precision.gradient_bytes_per_param() / 4.0;
                    allreduce_transfers(&topo, &net, cfg.algorithm, bytes)
                })
                .collect()
        } else {
            Vec::new()
        };

        let net_stats0 = net.recompute_stats();
        // Fast-forward needs exactly repeating iterations: synthetic input
        // (loader pipelines have their own long-period state), no
        // per-iteration trace samples, and enough iterations for the
        // detector to confirm a cycle and still have something to skip.
        let ff = (options.fast_forward
            && cfg.data.is_synthetic()
            && !cfg.record_trace
            && sim_iters > u64::from(FF_CONFIRM) + 2)
            .then(|| FfState {
                ranks: vec![FfRank::default(); topo.world_size()],
                last_boundary: None,
                cycle_repeats: 0,
                probe_prev: Vec::new(),
                probe_cur: Vec::new(),
            });
        if ff.is_some() {
            // Record the host bus — the one lane whose utilization the
            // report reads — so skipped cycles can be replayed exactly.
            net.set_load_probe(topo.host_bus(0));
        }

        // Fault machinery exists only for non-empty plans: the empty-plan
        // path must stay bit-identical to the fault-free engine.
        let faults = fault_plan.filter(|p| !p.is_empty()).map(|p| {
            let nodes = cfg.cluster.node_count();
            FaultRuntime {
                plan: p.clone(),
                open: vec![false; p.events.len()],
                fired: vec![false; p.events.len()],
                blame: vec![SimDuration::ZERO; p.events.len()],
                outstanding: p.events.len(),
                slow_factor: vec![1.0; topo.world_size()],
                nominal_nic: (0..nodes)
                    .map(|n| topo.degraded_nic_capacities(&net, n, 1.0))
                    .collect(),
                nominal_ssd: (0..nodes)
                    .map(|n| topo.degraded_ssd_capacity(&net, n, 1.0))
                    .collect(),
                preempt_queue: VecDeque::new(),
                barrier: None,
                resume: None,
                replay: vec![None; topo.world_size()],
                replaying: 0,
                dead_nodes: vec![false; nodes],
                dead_ranks: Vec::new(),
                bucket_first: vec![None; plan.buckets.len()],
                timeout: p.recovery.straggler_timeout,
                detections: Vec::new(),
                replayed_iterations: 0,
            }
        });
        // Checkpoint replay re-consumes input batches, so loaders need
        // headroom beyond the epoch's own iterations. Zero without a
        // restart-style preemption, keeping fault-free runs untouched.
        let replay_slack: u64 = faults.as_ref().map_or(0, |fr| {
            fr.plan
                .events
                .iter()
                .filter(|e| {
                    matches!(
                        e.kind,
                        FaultKind::Preemption {
                            restart_after: Some(_),
                            ..
                        }
                    )
                })
                .count() as u64
                * fr.plan.recovery.checkpoint_every
        });

        let loaders: Vec<Option<NodeLoader>> = match &cfg.data {
            DataMode::Synthetic => vec![None; cfg.cluster.node_count()],
            DataMode::Real { dataset, cache } => cfg
                .cluster
                .instances
                .iter()
                .enumerate()
                .map(|(n, inst)| {
                    // Each node streams its shard of the dataset.
                    let shard = stash_dnn::dataset::DatasetSpec {
                        name: dataset.name.clone(),
                        num_samples: dataset.num_samples / cfg.cluster.node_count() as u64,
                        total_bytes: dataset.total_bytes / cfg.cluster.node_count() as f64,
                        prep_cost_factor: dataset.prep_cost_factor,
                    };
                    Some(NodeLoader::new(LoaderSpec {
                        gpus: inst.gpu_count,
                        workers_per_gpu: stash_datapipe::loader::DEFAULT_WORKERS_PER_GPU,
                        vcpus: inst.vcpus,
                        per_gpu_batch: cfg.per_gpu_batch,
                        batches_per_gpu: sim_iters + replay_slack,
                        dataset: shard,
                        decoded_sample_bytes: cfg.model.input_sample_bytes,
                        cache: *cache,
                        main_memory_bytes: inst.main_memory_bytes,
                        prefetch_depth: 2,
                        disk_route: topo.disk_route(n),
                        dram_route: topo.dram_route(n),
                        h2d_routes: (0..inst.gpu_count)
                            .map(|g| topo.h2d_route(GpuId { node: n, local: g }))
                            .collect(),
                        per_sample_disk_latency: inst.storage.per_sample_latency,
                    }))
                })
                .collect(),
        };

        Ok(Engine {
            cfg,
            q,
            net,
            topo,
            plan,
            node_compute,
            ranks,
            active,
            comm,
            loaders,
            next_wake: None,
            sim_iters,
            trace: Vec::new(),
            iter_mark: IterMark::default(),
            overlap,
            tracer: None,
            trace_on: false,
            comm_cat: if cfg.cluster.node_count() > 1 {
                Category::Network
            } else {
                Category::Interconnect
            },
            bucket_open: None,
            xfer_open: BTreeMap::new(),
            comm_plans,
            completed_buf,
            loader_work,
            ff,
            faults,
            ff_iterations: 0,
            net_stats0,
            // Behind the telemetry switch like every other self-observation
            // layer: a series entry point with the switch off records
            // nothing (and allocates nothing).
            series: (record_series && stash_telemetry::enabled()).then(|| SeriesState {
                rec: SeriesRecorder::new(),
                mark: SeriesMark {
                    recomputes: net_stats0.0,
                    ..SeriesMark::default()
                },
            }),
        })
    }

    /// Returns the reusable state to `arena`, capacity intact.
    fn into_arena(self, arena: &mut EngineArena) {
        arena.net = self.net;
        arena.q = self.q;
        arena.completed = self.completed_buf;
        arena.loader_work = self.loader_work;
    }

    /// Attaches a shared tracer; when it is enabled, the flow network gets
    /// the same handle so network events interleave with engine spans.
    fn attach_tracer(&mut self, tracer: &SharedTracer) {
        self.trace_on = tracer.borrow().is_enabled();
        self.tracer = Some(tracer.clone());
        if self.trace_on {
            self.net.set_tracer(tracer.clone());
            // Fast-forward would skip the very spans the tracer exists to
            // record; an enabled tracer always sees the full simulation.
            self.ff = None;
            self.net.clear_load_probe();
        }
    }

    /// Records a complete span; a no-op unless tracing is enabled.
    fn emit_span(
        &self,
        track: Track,
        category: Category,
        name: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        if self.trace_on {
            self.tracer
                .as_ref()
                .req("trace_on implies tracer")
                .borrow_mut()
                .span(track, category, name, start, end);
        }
    }

    /// Records a complete span carrying a numeric payload (bucket or
    /// backward-segment index); a no-op unless tracing is enabled.
    #[allow(clippy::too_many_arguments)]
    fn emit_span_arg(
        &self,
        track: Track,
        category: Category,
        name: &'static str,
        arg: u32,
        start: SimTime,
        end: SimTime,
    ) {
        if self.trace_on {
            self.tracer
                .as_ref()
                .req("trace_on implies tracer")
                .borrow_mut()
                .span_arg(track, category, name, arg, start, end);
        }
    }

    /// Records an instant marker; a no-op unless tracing is enabled.
    fn emit_instant(&self, track: Track, category: Category, name: &'static str, at: SimTime) {
        if self.trace_on {
            self.tracer
                .as_ref()
                .req("trace_on implies tracer")
                .borrow_mut()
                .instant(track, category, name, at);
        }
    }

    /// The timeline lane of `rank`'s GPU.
    fn gpu_track(&self, rank: usize) -> Track {
        let gpu = self.ranks[rank].gpu;
        Track::gpu(gpu.node, gpu.local)
    }

    // ----- iteration series ---------------------------------------------

    /// Emits one series bucket covering `rank`'s activity from the last
    /// mark to `end`, then re-baselines the mark at `end`. Category
    /// fields are signed accumulator deltas, so a zero-iteration call
    /// after a replay rewind (or an elastic reporting-rank change) emits
    /// exactly the correction that keeps the running series totals equal
    /// to the current reporting rank's accumulators. A no-op unless
    /// series recording is on.
    fn emit_series(
        &mut self,
        rank: usize,
        end: SimTime,
        start_iter: u64,
        iterations: u64,
        ff: u64,
    ) {
        let Some(s) = self.series.as_mut() else {
            return;
        };
        let r = &self.ranks[rank];
        let (full_recomputes, _) = self.net.recompute_stats();
        let m = s.mark;
        let delta =
            |cur: SimDuration, base: SimDuration| cur.as_nanos() as i64 - base.as_nanos() as i64;
        s.rec.record(SeriesSample {
            start_iter,
            iterations,
            ff_iterations: ff,
            start_ns: m.start.as_nanos(),
            wall_ns: end.duration_since(m.start).as_nanos(),
            compute_ns: delta(r.compute, m.compute),
            data_wait_ns: delta(r.data_wait, m.data_wait),
            comm_wait_ns: delta(r.comm_wait, m.comm_wait),
            recovery_ns: delta(r.recovery, m.recovery),
            straggler_ns: delta(r.straggler, m.straggler),
            recomputes: full_recomputes - m.recomputes,
            queue_depth_hw: self.q.take_depth_high_water(),
        });
        s.mark = SeriesMark {
            start: end,
            compute: r.compute,
            data_wait: r.data_wait,
            comm_wait: r.comm_wait,
            recovery: r.recovery,
            straggler: r.straggler,
            recomputes: full_recomputes,
        };
    }

    /// Opens a fault-window annotation on the series (no-op when off).
    fn series_annotate_open(&mut self, idx: usize, label: &str, kind: &str) {
        let now = self.q.now();
        if let Some(s) = self.series.as_mut() {
            s.rec.annotate_open(idx as u64, label, kind, now.as_nanos());
        }
    }

    /// Closes a fault-window annotation on the series (no-op when off).
    fn series_annotate_close(&mut self, idx: usize) {
        let now = self.q.now();
        if let Some(s) = self.series.as_mut() {
            s.rec.annotate_close(idx as u64, now.as_nanos());
        }
    }

    /// Finishes series recording (empty when it never started). The end
    /// stamp is the last rank completion — after a fast-forward the
    /// analytic completion times run past the event-queue clock.
    fn take_series(&mut self) -> IterSeries {
        let Some(s) = self.series.take() else {
            return IterSeries::default();
        };
        let end = self
            .active
            .iter()
            .filter_map(|r| self.ranks[*r].done_at)
            .max()
            .unwrap_or_else(|| self.q.now());
        s.rec.finish(end.as_nanos())
    }

    fn run(&mut self) -> Result<FaultedRun, TrainError> {
        // Kick loaders and ranks.
        for node in 0..self.loaders.len() {
            if self.loaders[node].is_some() {
                let actions = self.loaders[node].as_mut().req("loader").start();
                self.apply_loader_actions(node, actions);
            }
        }
        for i in 0..self.active.len() {
            let rank = self.active[i];
            self.begin_iteration(rank);
        }
        // Arm the fault plan: every event goes through the one event
        // queue, so injection is as deterministic as the engine itself.
        for idx in 0..self.faults.as_ref().map_or(0, |fr| fr.plan.events.len()) {
            let at = self.faults.as_ref().req("faults").plan.events[idx].at;
            self.q.schedule_at(at, Ev::Fault { idx });
        }
        self.schedule_wake();

        let mut event_guard: u64 = 0;
        while !self.all_done() {
            let Some((_, ev)) = self.q.pop() else {
                panic!(
                    "deadlock: event queue drained with ranks unfinished (phases: {:?})",
                    self.active
                        .iter()
                        .map(|r| self.ranks[*r].phase)
                        .collect::<Vec<_>>()
                );
            };
            event_guard += 1;
            assert!(event_guard < 500_000_000, "runaway simulation");
            if stash_telemetry::flight::flight_enabled() {
                let (code, a, b) = match &ev {
                    Ev::NetWake => ("net_wake", 0, 0),
                    Ev::RankCompute { rank } => ("rank_compute", *rank as u64, 0),
                    Ev::LoaderPrep { node, worker } => {
                        ("loader_prep", *node as u64, *worker as u64)
                    }
                    Ev::Fault { idx } => ("fault", *idx as u64, 0),
                    Ev::FaultClear { idx } => ("fault_clear", *idx as u64, 0),
                    Ev::FaultResume => ("fault_resume", 0, 0),
                };
                stash_telemetry::flight::flight_record(self.q.now().as_nanos(), code, a, b);
            }
            match ev {
                Ev::NetWake => {
                    self.next_wake = None;
                    self.net.advance(self.q.now());
                }
                Ev::RankCompute { rank } => self.on_rank_compute(rank),
                Ev::LoaderPrep { node, worker } => {
                    // A preempted node's loader is gone; late prep events
                    // for it are dropped.
                    if let Some(loader) = self.loaders[node].as_mut() {
                        let actions = loader.prep_done(worker);
                        self.apply_loader_actions(node, actions);
                    }
                }
                Ev::Fault { idx } => {
                    stash_telemetry::metrics::FAULT_BRANCHES.inc();
                    self.on_fault_fired(idx);
                }
                Ev::FaultClear { idx } => {
                    stash_telemetry::metrics::FAULT_BRANCHES.inc();
                    self.on_fault_cleared(idx);
                }
                Ev::FaultResume => {
                    stash_telemetry::metrics::FAULT_BRANCHES.inc();
                    self.on_fault_resume();
                }
            }
            self.drain_flows();
            self.schedule_wake();
        }
        let report = self.build_report();
        let faults = self.fault_outcome();
        Ok(FaultedRun { report, faults })
    }

    fn all_done(&self) -> bool {
        self.active
            .iter()
            .all(|r| self.ranks[*r].phase == Phase::Done && self.ranks[*r].done_at.is_some())
    }

    // ----- rank state machine -----------------------------------------

    fn begin_iteration(&mut self, rank: usize) {
        let now = self.q.now();
        if self.ranks[rank].iter >= self.sim_iters {
            self.ranks[rank].phase = Phase::Done;
            self.ranks[rank].done_at = Some(now);
            return;
        }
        self.ranks[rank].micro = 0;
        self.begin_micro_batch(rank);
    }

    /// Starts one micro-batch: acquire input (real data) then forward.
    fn begin_micro_batch(&mut self, rank: usize) {
        let now = self.q.now();
        let node = self.ranks[rank].gpu.node;
        let local = self.ranks[rank].gpu.local;
        if self.loaders[node].is_some() {
            let (ok, actions) = self.loaders[node].as_mut().req("loader").try_take(local);
            self.apply_loader_actions(node, actions);
            if ok {
                self.start_forward(rank);
            } else {
                self.ranks[rank].phase = Phase::AwaitBatch;
                self.ranks[rank].wait_start = Some(now);
            }
        } else {
            self.start_forward(rank);
        }
    }

    /// Applies the straggler slowdown to `rank`'s compute durations.
    fn straggle(&self, rank: usize, dur: SimDuration) -> SimDuration {
        match self.cfg.straggler {
            Some(s) if s.rank == rank => dur.mul_f64(s.slowdown),
            _ => dur,
        }
    }

    /// Excess time open straggler windows inflict on a compute interval
    /// that *starts* now. [`SimDuration::ZERO`] on fault-free runs.
    fn fault_extra(&self, rank: usize, dur: SimDuration) -> SimDuration {
        match &self.faults {
            Some(fr) if fr.slow_factor[rank] > 1.0 => {
                dur.mul_f64(fr.slow_factor[rank]).saturating_sub(dur)
            }
            _ => SimDuration::ZERO,
        }
    }

    /// The span category for `rank`'s work right now: replayed iterations
    /// are recovery stall, everything else keeps its nominal category.
    fn rank_cat(&self, rank: usize, cat: Category) -> Category {
        match &self.faults {
            Some(fr) if fr.replay[rank].is_some() => Category::Recovery,
            _ => cat,
        }
    }

    /// Books `dur` of compute for `rank` (plus any straggler-window
    /// excess, billed to the `straggler` accumulator and emitted as its
    /// own span so the timeline still tiles exactly), then schedules the
    /// completion event.
    fn run_compute(&mut self, rank: usize, dur: SimDuration, name: &'static str, arg: Option<u32>) {
        let extra = self.fault_extra(rank, dur);
        self.ranks[rank].compute += dur;
        if !extra.is_zero() {
            self.ranks[rank].straggler += extra;
            self.blame_straggler(rank, extra);
        }
        if self.trace_on {
            let now = self.q.now();
            let cat = self.rank_cat(rank, Category::Compute);
            match arg {
                Some(a) => self.emit_span_arg(self.gpu_track(rank), cat, name, a, now, now + dur),
                None => self.emit_span(self.gpu_track(rank), cat, name, now, now + dur),
            }
            if !extra.is_zero() {
                self.emit_span(
                    self.gpu_track(rank),
                    Category::Straggler,
                    "straggler_excess",
                    now + dur,
                    now + dur + extra,
                );
            }
        }
        self.q.schedule_in(dur + extra, Ev::RankCompute { rank });
    }

    fn start_forward(&mut self, rank: usize) {
        let dur = self.straggle(rank, self.node_compute[self.ranks[rank].gpu.node].fwd);
        self.ranks[rank].phase = Phase::Forward;
        self.run_compute(rank, dur, "forward", None);
    }

    fn is_sync_micro(&self, rank: usize) -> bool {
        self.ranks[rank].micro + 1 >= self.cfg.grad_accumulation.max(1)
    }

    fn start_backward_segment(&mut self, rank: usize, seg: usize) {
        let node = self.ranks[rank].gpu.node;
        let mut dur = self.straggle(rank, self.node_compute[node].bwd_segments[seg]);
        if self.comm.is_some() && self.is_sync_micro(rank) {
            dur += GRAD_HOOK_OVERHEAD; // DDP autograd hook per bucket
        }
        self.ranks[rank].phase = Phase::Backward { seg };
        self.run_compute(rank, dur, "backward", Some(seg as u32));
    }

    fn start_step(&mut self, rank: usize) {
        let dur = self.straggle(rank, self.node_compute[self.ranks[rank].gpu.node].step);
        self.ranks[rank].phase = Phase::Step;
        self.run_compute(rank, dur, "step", None);
    }

    fn on_rank_compute(&mut self, rank: usize) {
        match self.ranks[rank].phase {
            Phase::Forward => self.start_backward_segment(rank, 0),
            Phase::Backward { seg } => {
                let syncing = self.is_sync_micro(rank);
                if self.overlap && syncing {
                    self.notify_bucket_ready(rank, seg);
                }
                let last = seg + 1 >= self.plan.buckets.len();
                if !last {
                    self.start_backward_segment(rank, seg + 1);
                } else if !syncing {
                    // Accumulation micro-batch: no synchronisation, go
                    // straight to the next forward (PyTorch `no_sync()`).
                    self.ranks[rank].micro += 1;
                    self.begin_micro_batch(rank);
                } else {
                    if !self.overlap {
                        for k in 0..self.plan.buckets.len() {
                            self.notify_bucket_ready(rank, k);
                        }
                    }
                    match &self.comm {
                        None => self.start_step(rank),
                        Some(c) if c.completed >= self.plan.buckets.len() => {
                            // Communication already finished (cannot happen
                            // before our own last notify, but kept for
                            // symmetry with the reset path).
                            self.start_step(rank);
                        }
                        Some(_) => {
                            self.ranks[rank].phase = Phase::AwaitComm;
                            self.ranks[rank].wait_start = Some(self.q.now());
                        }
                    }
                }
            }
            Phase::Step => {
                self.ranks[rank].iter += 1;
                if self.ranks[rank].first_iter_done.is_none() {
                    self.ranks[rank].first_iter_done = Some(self.q.now());
                }
                if self.trace_on {
                    self.emit_instant(
                        self.gpu_track(rank),
                        Category::Compute,
                        "iter_done",
                        self.q.now(),
                    );
                }
                if self.cfg.record_trace && rank == self.active[0] {
                    let r = &self.ranks[rank];
                    let now = self.q.now();
                    self.trace.push(IterationSample {
                        iteration: r.iter - 1,
                        total: now.duration_since(self.iter_mark.start),
                        data_wait: r.data_wait - self.iter_mark.data_wait,
                        comm_wait: r.comm_wait - self.iter_mark.comm_wait,
                    });
                    self.iter_mark = IterMark {
                        start: now,
                        data_wait: r.data_wait,
                        comm_wait: r.comm_wait,
                    };
                }
                if self.series.is_some() && rank == self.active[0] {
                    // One series bucket per reporting-rank iteration. Must
                    // precede the fault boundary below: a replay rewind
                    // there emits its correction against this mark.
                    let now = self.q.now();
                    let it = self.ranks[rank].iter - 1;
                    self.emit_series(rank, now, it, 1, 0);
                }
                if self.faults.is_some() && self.on_fault_step_boundary(rank) {
                    // Captured by a preemption barrier (or retired at it).
                    return;
                }
                // Fast-forward stays disengaged while any fault is
                // pending, open or being recovered from: an engaged
                // fast-forward would skip straight past scheduled faults.
                if self.ff.is_some() && self.faults_quiescent() && self.on_ff_iteration_done(rank) {
                    // Steady state confirmed: every rank's remaining
                    // iterations were just extended analytically.
                    return;
                }
                self.begin_iteration(rank);
            }
            other => panic!("compute completion in unexpected phase {other:?}"),
        }
    }

    // ----- steady-state fast-forward ------------------------------------

    /// Updates the steady-state fingerprints after `rank` finished an
    /// iteration. Returns `true` when the periodic steady state is
    /// confirmed and the remaining iterations have been applied
    /// analytically — every active rank is then `Done`.
    ///
    /// The detector is conservative: it requires, for [`FF_CONFIRM`]
    /// consecutive iteration cycles, (a) every rank's integer-ns deltas
    /// (period, Δcompute, Δdata_wait, Δcomm_wait) to repeat exactly and
    /// (b) the host-bus load samples to repeat bitwise, shifted by exactly
    /// one period. Everything the report reads is a function of those
    /// quantities, so extending by `n` more periods is indistinguishable
    /// from simulating them.
    fn on_ff_iteration_done(&mut self, rank: usize) -> bool {
        let now = self.q.now();
        let iter = self.ranks[rank].iter;

        // Refresh this rank's iteration fingerprint.
        {
            let ff = self.ff.as_mut().req("ff state");
            let fr = &mut ff.ranks[rank];
            let r = &self.ranks[rank];
            let delta = (
                now.duration_since(fr.last_done).as_nanos(),
                (r.compute - fr.compute).as_nanos(),
                (r.data_wait - fr.data_wait).as_nanos(),
                (r.comm_wait - fr.comm_wait).as_nanos(),
            );
            fr.repeats = if fr.seen && delta == fr.delta {
                fr.repeats + 1
            } else {
                0
            };
            fr.delta = delta;
            fr.last_done = now;
            fr.compute = r.compute;
            fr.data_wait = r.data_wait;
            fr.comm_wait = r.comm_wait;
            fr.seen = true;
        }

        // Cycle boundary: every active rank has now finished this
        // iteration (synchronous training keeps ranks within one
        // iteration of each other, so the last finisher closes the cycle).
        if !self.active.iter().all(|&r| self.ranks[r].iter >= iter) {
            return false;
        }

        let period = match self.ff.as_ref().req("ff state").last_boundary {
            Some(b) => now.duration_since(b).as_nanos(),
            None => 0,
        };
        let ranks_periodic = period > 0
            && self.active.iter().all(|&r| {
                let fr = &self.ff.as_ref().req("ff state").ranks[r];
                fr.repeats >= FF_CONFIRM && fr.delta.0 == period
            });

        // Compare this cycle's host-bus load samples against the previous
        // cycle, shifted by one period.
        {
            let ff = self.ff.as_mut().req("ff state");
            let mut cur = std::mem::take(&mut ff.probe_cur);
            self.net.take_probe_samples(&mut cur);
            let p = SimDuration::from_nanos(period);
            let cycle_matches = ranks_periodic
                && ff.probe_prev.len() == cur.len()
                && ff
                    .probe_prev
                    .iter()
                    .zip(cur.iter())
                    .all(|(&(t0, v0), &(t1, v1))| t0 + p == t1 && v0.to_bits() == v1.to_bits());
            ff.cycle_repeats = if cycle_matches {
                ff.cycle_repeats + 1
            } else {
                0
            };
            std::mem::swap(&mut ff.probe_prev, &mut cur);
            ff.probe_cur = cur;
            ff.last_boundary = Some(now);
        }

        let confirmed = self.ff.as_ref().req("ff state").cycle_repeats >= FF_CONFIRM
            && self.net.active_flows() == 0
            && self.sim_iters > iter;
        if !confirmed {
            return false;
        }
        stash_telemetry::metrics::FF_CONFIRMATIONS.inc();
        self.fast_forward_to_end(iter, period);
        true
    }

    /// Extends the confirmed steady state by the remaining
    /// `sim_iters - iter` periods: rank accumulators and completion times
    /// are set to exactly the values event-by-event simulation would
    /// produce, and the recorded host-bus load cycle is replayed
    /// (time-shifted) so link utilization integrates identically.
    fn fast_forward_to_end(&mut self, iter: u64, period_ns: u64) {
        let n = self.sim_iters - iter;
        debug_assert!(n > 0);
        {
            let ff = self.ff.as_ref().req("ff state");
            for &r in &self.active {
                debug_assert_eq!(self.ranks[r].iter, iter, "rank {r} not at the boundary");
                let fr = &ff.ranks[r];
                let rs = &mut self.ranks[r];
                rs.iter = self.sim_iters;
                rs.phase = Phase::Done;
                rs.done_at = Some(fr.last_done + SimDuration::from_nanos(fr.delta.0 * n));
                // Overwrite rather than add: ranks that closed their
                // iteration before the boundary have already accrued
                // compute for the next one, which the analytic extension
                // accounts for.
                rs.compute = fr.compute + SimDuration::from_nanos(fr.delta.1 * n);
                rs.data_wait = fr.data_wait + SimDuration::from_nanos(fr.delta.2 * n);
                rs.comm_wait = fr.comm_wait + SimDuration::from_nanos(fr.delta.3 * n);
                rs.wait_start = None;
                rs.micro = 0;
            }
        }
        // Replay the host-bus load cycle for the skipped periods, then
        // advance the network clock to where the full simulation's last
        // network event would have left it.
        let w = self.net.last_advance();
        let host_bus = self.topo.host_bus(0);
        let p = SimDuration::from_nanos(period_ns);
        {
            let ff = self.ff.as_ref().req("ff state");
            self.net.replay_probe_load(host_bus, &ff.probe_prev, p, n);
        }
        self.net.clear_load_probe();
        self.net.advance(w + SimDuration::from_nanos(period_ns * n));
        self.ff_iterations = n;
        self.ff = None;
        // The skipped span becomes one explicitly-marked compressed series
        // bucket: the reporting rank's accumulators were just set to their
        // analytic end values, so the delta from the mark is exactly the
        // `n` skipped periods.
        if self.series.is_some() {
            if let Some(&r0) = self.active.first() {
                if let Some(end) = self.ranks[r0].done_at {
                    self.emit_series(r0, end, iter, n, n);
                }
            }
        }
    }

    // ----- communicator -------------------------------------------------

    fn notify_bucket_ready(&mut self, rank: usize, bucket: usize) {
        if self.comm.is_none() {
            return;
        }
        {
            let comm = self.comm.as_mut().req("comm");
            comm.ready[bucket] += 1;
        }
        self.note_bucket_notify(rank, bucket);
        self.try_start_comm();
    }

    /// Bounded-timeout straggler detection: pure bookkeeping on the
    /// first-to-last skew of each gradient bucket. Never perturbs timing.
    fn note_bucket_notify(&mut self, rank: usize, bucket: usize) {
        let now = self.q.now();
        let world = match &self.comm {
            Some(c) => c.world,
            None => return,
        };
        let ready = self.comm.as_ref().req("comm").ready[bucket];
        let Some(fr) = &mut self.faults else {
            return;
        };
        match fr.bucket_first[bucket] {
            None => fr.bucket_first[bucket] = Some(now),
            Some(first) if ready >= world => {
                let gap = now.duration_since(first);
                if gap > fr.timeout {
                    fr.detections.push(StragglerDetection {
                        at: now,
                        rank,
                        bucket,
                        gap,
                    });
                    fr.timeout = fr.timeout.mul_f64(fr.plan.recovery.straggler_backoff);
                }
            }
            Some(_) => {}
        }
    }

    fn try_start_comm(&mut self) {
        let Some(comm) = self.comm.as_ref() else {
            return;
        };
        let next = comm.started;
        if next >= self.plan.buckets.len()
            || comm.started != comm.completed // one bucket in flight at a time
            || comm.ready[next] < comm.world
        {
            return;
        }
        let transfers = &self.comm_plans[next];
        debug_assert!(!transfers.is_empty(), "world > 1 must communicate");
        let now = self.q.now();
        for t in transfers.iter() {
            self.net
                .start_flow_borrowed(now, &t.route, t.bytes, t.extra_latency, TAG_COMM);
        }
        let inflight = transfers.len();
        let comm = self.comm.as_mut().req("comm");
        comm.inflight_remaining = inflight;
        comm.started += 1;
        self.bucket_open = Some((now, next));
    }

    fn on_comm_flow_done(&mut self) {
        let comm = self.comm.as_mut().req("comm flow without communicator");
        comm.inflight_remaining -= 1;
        if comm.inflight_remaining > 0 {
            return;
        }
        comm.completed += 1;
        let bucket_start = self.bucket_open.take();
        if self.trace_on {
            let (start, bucket) = bucket_start.req("bucket completion without an open bucket");
            self.emit_span_arg(
                Track::comm(),
                self.comm_cat,
                "allreduce",
                bucket as u32,
                start,
                self.q.now(),
            );
        }
        let comm = self.comm.as_mut().req("comm flow without communicator");
        if comm.completed >= self.plan.buckets.len() {
            // Iteration's gradients are synchronised everywhere.
            comm.ready.iter_mut().for_each(|r| *r = 0);
            comm.started = 0;
            comm.completed = 0;
            if let Some(fr) = &mut self.faults {
                fr.bucket_first.iter_mut().for_each(|b| *b = None);
            }
            let now = self.q.now();
            let mut released = 0;
            for i in 0..self.active.len() {
                let rank = self.active[i];
                if self.ranks[rank].phase != Phase::AwaitComm {
                    continue;
                }
                released += 1;
                let start = self.ranks[rank].wait_start.take().req("wait start");
                self.ranks[rank].comm_wait += now.duration_since(start);
                if self.trace_on {
                    self.emit_span(
                        self.gpu_track(rank),
                        self.rank_cat(rank, self.comm_cat),
                        "await_comm",
                        start,
                        now,
                    );
                }
                self.start_step(rank);
            }
            debug_assert_eq!(released, self.comm.as_ref().req("comm").world);
        } else {
            self.try_start_comm();
        }
    }

    // ----- fault injection and recovery -----------------------------------

    /// `true` when the plan is fully resolved: every event fired, every
    /// window closed, every recovery completed. Fast-forward may only
    /// engage while this holds, so it can never skip a scheduled fault.
    fn faults_quiescent(&self) -> bool {
        self.faults
            .as_ref()
            .is_none_or(|fr| fr.outstanding == 0 && fr.replaying == 0)
    }

    /// Attributes straggler-window excess to the most recently opened
    /// window targeting `rank`.
    fn blame_straggler(&mut self, rank: usize, extra: SimDuration) {
        let Some(fr) = &mut self.faults else { return };
        for (i, ev) in fr.plan.events.iter().enumerate().rev() {
            if fr.open[i] {
                if let FaultKind::StragglerWindow { rank: r, .. } = ev.kind {
                    if r == rank {
                        fr.blame[i] += extra;
                        return;
                    }
                }
            }
        }
    }

    fn on_fault_fired(&mut self, idx: usize) {
        let now = self.q.now();
        let kind = {
            let fr = self.faults.as_mut().req("faults");
            fr.fired[idx] = true;
            fr.plan.events[idx].kind.clone()
        };
        if self.series.is_some() {
            // Fault windows overlay the series as annotations; they close
            // at resolution (window end or preemption recovery complete).
            let label = match &kind {
                FaultKind::Preemption { node, .. } => format!("preemption node{node}"),
                FaultKind::StragglerWindow { rank, .. } => format!("straggler rank{rank}"),
                FaultKind::LinkDegradation { node, .. } => format!("link node{node}"),
                FaultKind::DiskBrownout { node, .. } => format!("disk node{node}"),
            };
            self.series_annotate_open(idx, &label, kind.label());
        }
        match kind {
            FaultKind::StragglerWindow { rank, duration, .. } => {
                self.faults.as_mut().req("faults").open[idx] = true;
                self.refresh_slow_factor(rank);
                self.q.schedule_at(now + duration, Ev::FaultClear { idx });
            }
            FaultKind::LinkDegradation { node, duration, .. } => {
                self.faults.as_mut().req("faults").open[idx] = true;
                self.apply_nic_state(node);
                self.q.schedule_at(now + duration, Ev::FaultClear { idx });
            }
            FaultKind::DiskBrownout { node, duration, .. } => {
                self.faults.as_mut().req("faults").open[idx] = true;
                self.apply_ssd_state(node);
                self.q.schedule_at(now + duration, Ev::FaultClear { idx });
            }
            FaultKind::Preemption { .. } => {
                self.faults
                    .as_mut()
                    .req("faults")
                    .preempt_queue
                    .push_back(idx);
                self.arm_next_preemption();
            }
        }
    }

    fn on_fault_cleared(&mut self, idx: usize) {
        let kind = {
            let fr = self.faults.as_mut().req("faults");
            fr.open[idx] = false;
            fr.plan.events[idx].kind.clone()
        };
        match kind {
            FaultKind::StragglerWindow { rank, .. } => self.refresh_slow_factor(rank),
            FaultKind::LinkDegradation { node, .. } => self.apply_nic_state(node),
            FaultKind::DiskBrownout { node, .. } => self.apply_ssd_state(node),
            FaultKind::Preemption { .. } => unreachable!("preemptions have no clear event"),
        }
        self.resolve_fault(idx);
    }

    /// Re-derives `rank`'s slowdown multiplier from the open straggler
    /// windows: the product is exactly 1.0 again when the last closes.
    fn refresh_slow_factor(&mut self, rank: usize) {
        let fr = self.faults.as_mut().req("faults");
        let mut f = 1.0;
        for (i, ev) in fr.plan.events.iter().enumerate() {
            if fr.open[i] {
                if let FaultKind::StragglerWindow {
                    rank: r, slowdown, ..
                } = ev.kind
                {
                    if r == rank {
                        f *= slowdown;
                    }
                }
            }
        }
        fr.slow_factor[rank] = f;
    }

    /// Re-derives a node's NIC capacities from the open degradation
    /// windows: multiplicative over overlapping windows against the
    /// *nominal* capacity, so the restore when the last window closes is
    /// exact.
    fn apply_nic_state(&mut self, node: usize) {
        let now = self.q.now();
        let (targets, factor) = {
            let fr = self.faults.as_ref().req("faults");
            let mut f = 1.0;
            for (i, ev) in fr.plan.events.iter().enumerate() {
                if fr.open[i] {
                    if let FaultKind::LinkDegradation {
                        node: n, factor, ..
                    } = ev.kind
                    {
                        if n == node {
                            f *= factor;
                        }
                    }
                }
            }
            (fr.nominal_nic[node], f)
        };
        for (l, nominal) in targets {
            self.net.set_link_capacity(now, l, nominal * factor);
        }
    }

    /// Re-derives a node's SSD capacity and the loader's brownout retry
    /// flag from the open brownout windows.
    fn apply_ssd_state(&mut self, node: usize) {
        let now = self.q.now();
        let ((link, nominal), factor, brown) = {
            let fr = self.faults.as_ref().req("faults");
            let mut f = 1.0;
            let mut brown = false;
            for (i, ev) in fr.plan.events.iter().enumerate() {
                if fr.open[i] {
                    if let FaultKind::DiskBrownout {
                        node: n, factor, ..
                    } = ev.kind
                    {
                        if n == node {
                            f *= factor;
                            brown = true;
                        }
                    }
                }
            }
            (fr.nominal_ssd[node], f, brown)
        };
        self.net.set_link_capacity(now, link, nominal * factor);
        if let Some(loader) = self.loaders[node].as_mut() {
            loader.set_brownout(brown);
        }
    }

    /// Fault bookkeeping at an iteration boundary: completes replay
    /// re-billing and parks the rank when a preemption barrier is armed
    /// (preemptions are quantized to iteration boundaries). Returns
    /// `true` when the rank was parked or retired and must not begin
    /// another iteration through the normal path.
    fn on_fault_step_boundary(&mut self, rank: usize) -> bool {
        if self
            .faults
            .as_ref()
            .and_then(|fr| fr.replay[rank])
            .is_some_and(|(until, _, _)| self.ranks[rank].iter >= until)
        {
            self.finish_replay(rank);
        }
        if self.faults.as_ref().is_none_or(|fr| fr.barrier.is_none()) {
            return false;
        }
        let now = self.q.now();
        if self.ranks[rank].iter >= self.sim_iters {
            // The epoch is already over for this rank; finished work is
            // final (the terminal state counts as checkpointed).
            self.ranks[rank].phase = Phase::Done;
            self.ranks[rank].done_at = Some(now);
        } else {
            self.ranks[rank].phase = Phase::Recovering;
            self.ranks[rank].wait_start = Some(now);
        }
        self.try_complete_barrier();
        true
    }

    /// Replay of lost iterations finished: everything accrued since the
    /// rollback snapshot is re-billed as recovery stall. The rank's total
    /// accounted time is unchanged, so its timeline still tiles exactly.
    fn finish_replay(&mut self, rank: usize) {
        let Some(fr) = &mut self.faults else { return };
        let Some((_, snap, idx)) = fr.replay[rank].take() else {
            return;
        };
        fr.replaying -= 1;
        let r = &mut self.ranks[rank];
        let delta = r.compute.saturating_sub(snap.compute)
            + r.data_wait.saturating_sub(snap.data_wait)
            + r.comm_wait.saturating_sub(snap.comm_wait);
        r.recovery += delta;
        r.compute = snap.compute;
        r.data_wait = snap.data_wait;
        r.comm_wait = snap.comm_wait;
        fr.blame[idx] += delta;
        // The rewound accumulators must never underflow a later
        // per-iteration sample's baseline.
        if self.cfg.record_trace && rank == self.active[0] {
            self.iter_mark.data_wait = self.ranks[rank].data_wait;
            self.iter_mark.comm_wait = self.ranks[rank].comm_wait;
        }
        // The series already recorded the replayed work as compute/data/
        // comm; emit the rewind as a zero-width correction (negative
        // category deltas, positive recovery) so its running totals keep
        // matching the accumulators exactly.
        if self.series.is_some() && rank == self.active[0] {
            let now = self.q.now();
            let it = self.ranks[rank].iter;
            self.emit_series(rank, now, it, 0, 0);
        }
    }

    /// Completes the armed preemption barrier once every active rank is
    /// parked (or done): restart-style preemptions schedule the resume,
    /// elastic ones re-form the cluster in place.
    fn try_complete_barrier(&mut self) {
        let Some(idx) = self.faults.as_ref().and_then(|fr| fr.barrier) else {
            return;
        };
        let all_in = self
            .active
            .iter()
            .all(|&r| matches!(self.ranks[r].phase, Phase::Recovering | Phase::Done));
        if !all_in {
            return;
        }
        let kind = self.faults.as_ref().req("faults").plan.events[idx]
            .kind
            .clone();
        let FaultKind::Preemption { restart_after, .. } = kind else {
            unreachable!("barrier is only armed by preemptions");
        };
        let parked = self
            .active
            .iter()
            .any(|&r| self.ranks[r].phase == Phase::Recovering);
        self.faults.as_mut().req("faults").barrier = None;
        if !parked {
            // The epoch outran the fault: nothing left to preempt.
            self.resolve_fault(idx);
            return;
        }
        // Both outcomes pay a wall-clock gap before training resumes:
        // replacement capacity for a restart, rendezvous + communicator
        // rebuild for an elastic re-formation.
        let delay = restart_after.unwrap_or(
            self.faults
                .as_ref()
                .req("faults")
                .plan
                .recovery
                .reform_delay,
        );
        self.faults.as_mut().req("faults").resume = Some(idx);
        self.q.schedule_in(delay, Ev::FaultResume);
    }

    /// The restart delay elapsed: bill the outage, roll every parked rank
    /// back to its last checkpoint (lost iterations will be replayed) and
    /// resume training.
    fn on_fault_resume(&mut self) {
        let now = self.q.now();
        let Some(idx) = self.faults.as_mut().req("faults").resume.take() else {
            return;
        };
        let kind = self.faults.as_ref().req("faults").plan.events[idx]
            .kind
            .clone();
        let FaultKind::Preemption {
            node,
            restart_after,
        } = kind
        else {
            unreachable!("resume is only armed by preemptions");
        };
        if restart_after.is_none() {
            self.reform_elastic(idx, node);
            return;
        }
        let ckpt = self
            .faults
            .as_ref()
            .req("faults")
            .plan
            .recovery
            .checkpoint_every
            .max(1);
        let mut resumed: Vec<usize> = Vec::new();
        for i in 0..self.active.len() {
            let rank = self.active[i];
            if self.ranks[rank].phase != Phase::Recovering {
                continue;
            }
            let start = self.ranks[rank].wait_start.take().req("barrier wait start");
            let wait = now.duration_since(start);
            self.ranks[rank].recovery += wait;
            self.emit_span(
                self.gpu_track(rank),
                Category::Recovery,
                "preempt_wait",
                start,
                now,
            );
            let it = self.ranks[rank].iter;
            let ck = (it / ckpt) * ckpt;
            let snap = AccumSnap {
                compute: self.ranks[rank].compute,
                data_wait: self.ranks[rank].data_wait,
                comm_wait: self.ranks[rank].comm_wait,
            };
            let fr = self.faults.as_mut().req("faults");
            fr.blame[idx] += wait;
            if ck < it {
                // Iterations since the last checkpoint are lost. A rank
                // caught mid-replay keeps its original snapshot and
                // replay target; it only rolls further back.
                if fr.replay[rank].is_none() {
                    fr.replay[rank] = Some((it, snap, idx));
                    fr.replaying += 1;
                }
                fr.replayed_iterations += it - ck;
                self.ranks[rank].iter = ck;
            }
            resumed.push(rank);
        }
        // Fresh per-iteration mark for the reporting rank: the sample
        // covering the outage would otherwise swallow the recovery gap.
        if self.cfg.record_trace && resumed.contains(&self.active[0]) {
            self.iter_mark.start = now;
        }
        for &rank in &resumed {
            self.begin_iteration(rank);
        }
        self.resolve_fault(idx);
    }

    /// Elastic re-formation: the preempted node's ranks retire where they
    /// stand, the survivors bill the barrier wait as recovery stall,
    /// rebuild the collective over the survivor ring and continue.
    fn reform_elastic(&mut self, idx: usize, node: usize) {
        let now = self.q.now();
        let mut resumed: Vec<usize> = Vec::new();
        let mut survivors: Vec<usize> = Vec::new();
        for i in 0..self.active.len() {
            let rank = self.active[i];
            if self.ranks[rank].phase == Phase::Recovering {
                let start = self.ranks[rank].wait_start.take().req("barrier wait start");
                let wait = now.duration_since(start);
                self.ranks[rank].recovery += wait;
                self.faults.as_mut().req("faults").blame[idx] += wait;
                self.emit_span(
                    self.gpu_track(rank),
                    Category::Recovery,
                    "reform_wait",
                    start,
                    now,
                );
            }
            if self.ranks[rank].gpu.node == node {
                let fr = self.faults.as_mut().req("faults");
                if fr.replay[rank].take().is_some() {
                    fr.replaying -= 1;
                }
                fr.dead_ranks.push(rank);
                self.ranks[rank].phase = Phase::Done;
                if self.ranks[rank].done_at.is_none() {
                    self.ranks[rank].done_at = Some(now);
                }
            } else {
                if self.ranks[rank].phase == Phase::Recovering {
                    resumed.push(rank);
                }
                survivors.push(rank);
            }
        }
        self.active = survivors;
        self.faults.as_mut().req("faults").dead_nodes[node] = true;
        self.loaders[node] = None;
        // Rescale the collective to the survivor ring.
        let world = self.active.len();
        if world > 1 {
            let ring: Vec<GpuId> = self.active.iter().map(|&r| self.ranks[r].gpu).collect();
            self.comm = Some(Comm {
                world,
                ready: vec![0; self.plan.buckets.len()],
                started: 0,
                completed: 0,
                inflight_remaining: 0,
            });
            self.comm_plans = self
                .plan
                .buckets
                .iter()
                .map(|b| {
                    let bytes = b.bytes * self.cfg.precision.gradient_bytes_per_param() / 4.0;
                    allreduce_transfers_among(
                        &self.topo,
                        &self.net,
                        self.cfg.algorithm,
                        bytes,
                        &ring,
                    )
                })
                .collect();
        } else {
            self.comm = None;
            self.comm_plans.clear();
        }
        // Fresh per-iteration mark: the reporting rank may have changed.
        if self.cfg.record_trace && !self.active.is_empty() {
            let r = &self.ranks[self.active[0]];
            self.iter_mark = IterMark {
                start: now,
                data_wait: r.data_wait,
                comm_wait: r.comm_wait,
            };
        }
        // Rebase the series onto the (possibly new) reporting rank: the
        // zero-iteration bucket's deltas are new-rank accumulators minus
        // the totals recorded so far, so the running sums continue to
        // match the rank the report will read.
        if self.series.is_some() {
            if let Some(&r0) = self.active.first() {
                let it = self.ranks[r0].iter;
                self.emit_series(r0, now, it, 0, 0);
            }
        }
        for &rank in &resumed {
            self.begin_iteration(rank);
        }
        self.resolve_fault(idx);
    }

    /// Marks a plan event fully resolved and arms the next queued
    /// preemption, if any.
    fn resolve_fault(&mut self, idx: usize) {
        self.series_annotate_close(idx);
        self.faults.as_mut().req("faults").outstanding -= 1;
        self.arm_next_preemption();
    }

    fn arm_next_preemption(&mut self) {
        let armed = {
            let fr = self.faults.as_mut().req("faults");
            if fr.barrier.is_none() && fr.resume.is_none() {
                if let Some(next) = fr.preempt_queue.pop_front() {
                    fr.barrier = Some(next);
                    true
                } else {
                    false
                }
            } else {
                false
            }
        };
        if armed {
            // Every rank may already be parked or done (back-to-back
            // preemptions).
            self.try_complete_barrier();
        }
    }

    /// Consumes the fault runtime into the outcome half of the result.
    fn fault_outcome(&mut self) -> FaultOutcome {
        match self.faults.take() {
            None => FaultOutcome::default(),
            Some(fr) => FaultOutcome {
                events: fr
                    .plan
                    .events
                    .iter()
                    .enumerate()
                    .map(|(i, ev)| FaultRecord {
                        label: ev.kind.label().to_string(),
                        at: ev.at,
                        fired: fr.fired[i],
                        blame: fr.blame[i],
                    })
                    .collect(),
                detections: fr.detections,
                replayed_iterations: fr.replayed_iterations,
                dead_nodes: fr
                    .dead_nodes
                    .iter()
                    .enumerate()
                    .filter_map(|(n, &d)| d.then_some(n))
                    .collect(),
            },
        }
    }

    // ----- loaders --------------------------------------------------------

    fn apply_loader_actions(&mut self, node: usize, actions: Vec<LoaderAction>) {
        // Pooled work-list: `apply_loader_actions` never re-enters itself,
        // so the engine-owned deque is always free here.
        let mut work = std::mem::take(&mut self.loader_work);
        debug_assert!(work.is_empty());
        work.extend(actions.into_iter().map(|a| (node, a)));
        while let Some((n, action)) = work.pop_front() {
            match action {
                LoaderAction::StartTransfer {
                    worker,
                    route,
                    bytes,
                    extra_latency,
                    purpose,
                } => {
                    if self.trace_on {
                        let now = self.q.now();
                        let track = Track::loader(n, worker);
                        match purpose {
                            TransferPurpose::FetchHit => {
                                self.emit_instant(track, Category::Cache, "cache_hit", now);
                            }
                            TransferPurpose::FetchMiss => {
                                self.emit_instant(track, Category::Cache, "cache_miss", now);
                            }
                            TransferPurpose::Upload => {}
                        }
                    }
                    if self.trace_on || stash_telemetry::enabled() {
                        // Transfer timing is emergent (flow-based), so the
                        // service-time histogram and fetch spans both key
                        // off this open-transfer table.
                        self.xfer_open.insert((n, worker), (self.q.now(), purpose));
                    }
                    self.net.start_flow(
                        self.q.now(),
                        FlowSpec {
                            route,
                            bytes,
                            extra_latency,
                            tag: loader_tag(n, worker),
                        },
                    );
                }
                LoaderAction::StartPrep { worker, duration } => {
                    if self.trace_on {
                        let now = self.q.now();
                        self.emit_span(
                            Track::loader(n, worker),
                            Category::Prep,
                            "prep",
                            now,
                            now + duration,
                        );
                    }
                    self.q
                        .schedule_in(duration, Ev::LoaderPrep { node: n, worker });
                }
                LoaderAction::Deliver { gpu } => {
                    let rank = self.global_rank(n, gpu);
                    if self.ranks[rank].phase == Phase::AwaitBatch {
                        let (ok, more) = self.loaders[n].as_mut().req("loader").try_take(gpu);
                        debug_assert!(ok, "delivery must satisfy a waiting GPU");
                        let now = self.q.now();
                        let start = self.ranks[rank].wait_start.take().req("wait start");
                        self.ranks[rank].data_wait += now.duration_since(start);
                        if self.trace_on {
                            self.emit_span(
                                self.gpu_track(rank),
                                self.rank_cat(rank, Category::Fetch),
                                "await_batch",
                                start,
                                now,
                            );
                        }
                        self.start_forward(rank);
                        for a in more {
                            work.push_back((n, a));
                        }
                    }
                }
            }
        }
        self.loader_work = work;
    }

    fn global_rank(&self, node: usize, local: usize) -> usize {
        let mut rank = 0;
        for (n, inst) in self.cfg.cluster.instances.iter().enumerate() {
            if n == node {
                return rank + local;
            }
            rank += inst.gpu_count;
        }
        panic!("node {node} out of range");
    }

    // ----- flow plumbing ---------------------------------------------------

    fn drain_flows(&mut self) {
        loop {
            // Ping-pong the pooled buffer with the network's completion
            // list: no allocation on either side.
            let mut completed = std::mem::take(&mut self.completed_buf);
            self.net.drain_completed_into(&mut completed);
            if completed.is_empty() {
                self.completed_buf = completed;
                break;
            }
            for &(_, tag) in completed.iter() {
                if tag & TAG_COMM != 0 {
                    self.on_comm_flow_done();
                } else {
                    let (node, worker) = decode_loader_tag(tag);
                    if let Some((start, purpose)) = self.xfer_open.remove(&(node, worker)) {
                        stash_telemetry::metrics::DATA_FETCH_SERVICE_NS
                            .record(self.q.now().duration_since(start).as_nanos());
                        if self.trace_on {
                            let name = match purpose {
                                TransferPurpose::FetchHit => "fetch_dram",
                                TransferPurpose::FetchMiss => "fetch_disk",
                                TransferPurpose::Upload => "h2d",
                            };
                            self.emit_span(
                                Track::loader(node, worker),
                                Category::Fetch,
                                name,
                                start,
                                self.q.now(),
                            );
                        }
                    }
                    // A preempted node's loader is gone; its in-flight
                    // transfers complete into the void.
                    if let Some(loader) = self.loaders[node].as_mut() {
                        let actions = loader.transfer_done(worker);
                        self.apply_loader_actions(node, actions);
                    }
                }
            }
            self.completed_buf = completed;
        }
    }

    fn schedule_wake(&mut self) {
        let now = self.q.now();
        if let Some(t) = self.net.next_event_time(now) {
            let t = t.max(now + SimDuration::from_nanos(1));
            if self.next_wake.is_none_or(|(w, _)| t < w) {
                // The earlier prediction wins; the superseded wake is
                // cancelled O(1) so it can never be delivered stale.
                if let Some((_, key)) = self.next_wake.take() {
                    self.q.cancel(key);
                }
                let key = self.q.schedule_at(t, Ev::NetWake);
                self.next_wake = Some((t, key));
            }
        }
    }

    // ----- reporting --------------------------------------------------------

    fn build_report(&mut self) -> EpochReport {
        // Flush per-epoch diagnostics to the process-wide counters. The
        // report itself never carries them: it must stay bit-identical
        // across fast-forward on/off and arena reuse.
        let (full, shortcut) = self.net.recompute_stats();
        perf_stats::record_epoch(
            full - self.net_stats0.0,
            shortcut - self.net_stats0.1,
            self.ff_iterations,
            self.q.delivered_count(),
        );
        // The solver/queue registry metrics are recorded at their own
        // hot-path sites; only epoch-scoped facts flush here.
        stash_telemetry::metrics::FF_ITERATIONS.add(self.ff_iterations);
        stash_telemetry::metrics::EPOCHS.inc();
        let full_iters = self.cfg.epoch_iterations();
        let factor = full_iters as f64 / self.sim_iters as f64;
        let sim_end = self
            .active
            .iter()
            .filter_map(|r| self.ranks[*r].done_at)
            .max()
            .req("all ranks done");
        let r0 = &self.ranks[self.active[0]];
        // Extrapolate from the steady state: the first iteration carries
        // the pipeline fill (prefetch queues, cold flows), so it is billed
        // once and only the remaining iterations are scaled.
        let first_iter_end = self
            .active
            .iter()
            .filter_map(|r| self.ranks[*r].first_iter_done)
            .max()
            .unwrap_or(sim_end);
        let epoch_time = if self.sim_iters > 1 && full_iters > 1 {
            let warmup = first_iter_end - SimTime::ZERO;
            let steady = sim_end.duration_since(first_iter_end);
            warmup + steady.mul_f64((full_iters - 1) as f64 / (self.sim_iters - 1) as f64)
        } else {
            (sim_end - SimTime::ZERO).mul_f64(factor)
        };
        let world = self.active.len();
        let samples = match &self.faults {
            // Keep the historic formula verbatim on the fault-free path.
            None => self.cfg.samples_per_gpu * world as u64,
            // Under faults ranks can retire early (elastic) so the epoch's
            // useful work is whatever each rank actually completed.
            Some(fr) => {
                let per_iter = self.cfg.per_gpu_batch * self.cfg.grad_accumulation.max(1);
                let simulated: u64 = self
                    .active
                    .iter()
                    .chain(fr.dead_ranks.iter())
                    .map(|&r| self.ranks[r].iter * per_iter)
                    .sum();
                (simulated as f64 * factor).round() as u64
            }
        };
        EpochReport {
            cluster: self.cfg.cluster.display_name(),
            model: self.cfg.model.name.clone(),
            per_gpu_batch: self.cfg.per_gpu_batch,
            world,
            iterations: full_iters,
            simulated_iterations: self.sim_iters,
            epoch_time,
            compute_time: r0.compute.mul_f64(factor),
            data_wait: r0.data_wait.mul_f64(factor),
            comm_wait: r0.comm_wait.mul_f64(factor),
            recovery_time: r0.recovery.mul_f64(factor),
            straggler_time: r0.straggler.mul_f64(factor),
            samples,
            throughput: samples as f64 / epoch_time.as_secs_f64().max(1e-12),
            host_bus_utilization: self.net.link_utilization(self.topo.host_bus(0)),
            trace: std::mem::take(&mut self.trace),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::config::EpochMode;
    use stash_datapipe::cache::CacheState;
    use stash_dnn::dataset::DatasetSpec;
    use stash_dnn::zoo;
    use stash_hwtopo::cluster::ClusterSpec;
    use stash_hwtopo::instance::{p2_16xlarge, p3_16xlarge, p3_2xlarge, p3_8xlarge};

    fn quick(mut cfg: TrainConfig) -> EpochReport {
        cfg.epoch_mode = EpochMode::Sampled { iterations: 4 };
        run_epoch(&cfg).expect("run")
    }

    #[test]
    fn single_gpu_synthetic_matches_compute_model() {
        let model = zoo::resnet18();
        let cfg = TrainConfig::synthetic(ClusterSpec::single(p3_2xlarge()), model.clone(), 32, 320);
        let report = quick(cfg);
        let cm = ComputeModel::new(stash_hwtopo::gpu::GpuModel::V100.spec());
        let expected = cm.iteration_time(&model, 32).as_secs_f64() * 10.0;
        let got = report.epoch_time.as_secs_f64();
        assert!(
            (got - expected).abs() / expected < 0.01,
            "engine {got} vs analytic {expected}"
        );
        assert_eq!(report.comm_wait, SimDuration::ZERO);
        assert_eq!(report.data_wait, SimDuration::ZERO);
    }

    #[test]
    fn multi_gpu_is_slower_per_sample_than_single() {
        // Same per-GPU work; the distributed run adds communication.
        let model = zoo::resnet18();
        let single = {
            let mut c =
                TrainConfig::synthetic(ClusterSpec::single(p3_16xlarge()), model.clone(), 32, 320);
            c.active = ActiveGpus::Single;
            quick(c)
        };
        let multi = quick(TrainConfig::synthetic(
            ClusterSpec::single(p3_16xlarge()),
            model.clone(),
            32,
            320,
        ));
        assert!(multi.epoch_time > single.epoch_time);
        assert!(multi.comm_wait > SimDuration::ZERO || multi.compute_time > single.compute_time);
    }

    #[test]
    fn pcie_sixteen_gpus_stall_far_more_than_nvlink_eight() {
        let model = zoo::resnet18();
        let p2 = quick(TrainConfig::synthetic(
            ClusterSpec::single(p2_16xlarge()),
            model.clone(),
            32,
            320,
        ));
        let p3 = quick(TrainConfig::synthetic(
            ClusterSpec::single(p3_16xlarge()),
            model,
            32,
            320,
        ));
        assert!(
            p2.comm_wait_fraction() > 2.0 * p3.comm_wait_fraction(),
            "p2 {} vs p3 {}",
            p2.comm_wait_fraction(),
            p3.comm_wait_fraction()
        );
    }

    #[test]
    fn cold_cache_is_slower_than_warm() {
        let model = zoo::resnet18();
        let mk = |cache| {
            let mut c =
                TrainConfig::synthetic(ClusterSpec::single(p3_16xlarge()), model.clone(), 32, 320);
            c.data = DataMode::Real {
                dataset: DatasetSpec::imagenet1k(),
                cache,
            };
            quick(c)
        };
        let cold = mk(CacheState::Cold);
        let warm = mk(CacheState::Warm);
        assert!(
            cold.epoch_time > warm.epoch_time,
            "cold {} warm {}",
            cold.epoch_time,
            warm.epoch_time
        );
        assert!(cold.data_wait >= warm.data_wait);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut cfg = TrainConfig::synthetic(
            ClusterSpec::single(p3_2xlarge()),
            zoo::bert_large(),
            64,
            640,
        );
        cfg.epoch_mode = EpochMode::Sampled { iterations: 2 };
        match run_epoch(&cfg) {
            Err(TrainError::OutOfMemory { .. }) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn overlap_off_is_no_faster_than_on() {
        let model = zoo::resnet50();
        let mut on =
            TrainConfig::synthetic(ClusterSpec::single(p3_16xlarge()), model.clone(), 32, 320);
        on.epoch_mode = EpochMode::Sampled { iterations: 4 };
        let mut off = on.clone();
        off.overlap = false;
        let r_on = run_epoch(&on).unwrap();
        let r_off = run_epoch(&off).unwrap();
        assert!(r_off.epoch_time >= r_on.epoch_time);
    }

    #[test]
    fn network_split_is_slower_than_single_instance() {
        let model = zoo::resnet18();
        let single = quick(TrainConfig::synthetic(
            ClusterSpec::single(p3_16xlarge()),
            model.clone(),
            32,
            320,
        ));
        let split = quick(TrainConfig::synthetic(
            ClusterSpec::homogeneous(p3_8xlarge(), 2),
            model,
            32,
            320,
        ));
        assert!(
            split.epoch_time > single.epoch_time,
            "split {} single {}",
            split.epoch_time,
            single.epoch_time
        );
    }

    #[test]
    fn traced_report_is_bit_identical_and_spans_reconcile() {
        use stash_trace::rollup::StallRollup;
        use stash_trace::{shared, JsonSink, Tracer};
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut cfg =
            TrainConfig::synthetic(ClusterSpec::single(p3_16xlarge()), zoo::resnet18(), 32, 320);
        cfg.data = DataMode::Real {
            dataset: DatasetSpec::imagenet1k(),
            cache: CacheState::Warm,
        };
        cfg.epoch_mode = EpochMode::Sampled { iterations: 4 };
        let untraced = run_epoch(&cfg).unwrap();
        let sink = Rc::new(RefCell::new(JsonSink::new()));
        let tracer = shared(Tracer::new(sink.clone()));
        let traced = run_epoch_traced(&cfg, &tracer).unwrap();
        assert_eq!(untraced.epoch_time, traced.epoch_time);
        assert_eq!(untraced.compute_time, traced.compute_time);
        assert_eq!(untraced.data_wait, traced.data_wait);
        assert_eq!(untraced.comm_wait, traced.comm_wait);

        // Raw span sums on rank 0's lane, extrapolated exactly like the
        // report's accumulators, must reproduce the report to the ns.
        let rollup = StallRollup::from_events(sink.borrow().events());
        let factor = traced.iterations as f64 / traced.simulated_iterations as f64;
        let track0 = Track::gpu(0, 0);
        assert_eq!(
            rollup
                .track_total(track0, Category::Compute)
                .mul_f64(factor),
            traced.compute_time
        );
        assert_eq!(
            rollup.track_total(track0, Category::Fetch).mul_f64(factor),
            traced.data_wait
        );
        let comm_raw = rollup.track_total(track0, Category::Interconnect)
            + rollup.track_total(track0, Category::Network);
        assert_eq!(comm_raw.mul_f64(factor), traced.comm_wait);
        assert!(
            traced.comm_wait > SimDuration::ZERO,
            "8 GPUs must synchronise"
        );
    }

    #[test]
    fn disabled_tracer_emits_nothing_and_changes_nothing() {
        use stash_trace::{shared, Tracer};

        let mut cfg =
            TrainConfig::synthetic(ClusterSpec::single(p3_8xlarge()), zoo::alexnet(), 32, 320);
        cfg.epoch_mode = EpochMode::Sampled { iterations: 3 };
        let baseline = run_epoch(&cfg).unwrap();
        let tracer = shared(Tracer::disabled());
        let traced = run_epoch_traced(&cfg, &tracer).unwrap();
        assert_eq!(baseline.epoch_time, traced.epoch_time);
        assert_eq!(baseline.compute_time, traced.compute_time);
        assert_eq!(baseline.comm_wait, traced.comm_wait);
        assert_eq!(tracer.borrow().events_emitted(), 0);
    }

    #[test]
    fn deterministic_replay() {
        let cfg = TrainConfig::synthetic(
            ClusterSpec::homogeneous(p3_8xlarge(), 2),
            zoo::alexnet(),
            32,
            320,
        );
        let a = quick(cfg.clone());
        let b = quick(cfg);
        assert_eq!(a.epoch_time, b.epoch_time);
        assert_eq!(a.comm_wait, b.comm_wait);
    }

    #[test]
    fn extrapolation_scales_linearly() {
        let mut cfg = TrainConfig::synthetic(
            ClusterSpec::single(p3_2xlarge()),
            zoo::alexnet(),
            32,
            32 * 100,
        );
        cfg.epoch_mode = EpochMode::Sampled { iterations: 5 };
        let sampled = run_epoch(&cfg).unwrap();
        cfg.epoch_mode = EpochMode::Full;
        let full = run_epoch(&cfg).unwrap();
        let rel = (sampled.epoch_time.as_secs_f64() - full.epoch_time.as_secs_f64()).abs()
            / full.epoch_time.as_secs_f64();
        assert!(rel < 0.01, "sampled vs full differ by {rel}");
    }

    // ----- fault injection ------------------------------------------------

    use stash_faults::plan::FaultEvent;

    /// A full-epoch config (factor 1) so faulted accumulators must tile
    /// the wall clock *exactly* at integer-nanosecond resolution.
    fn full_cfg(cluster: ClusterSpec, iters: u64) -> TrainConfig {
        let mut cfg = TrainConfig::synthetic(cluster, zoo::resnet18(), 32, 32 * iters);
        cfg.epoch_mode = EpochMode::Full;
        cfg
    }

    fn assert_tiles(r: &EpochReport) {
        let accounted =
            r.compute_time + r.data_wait + r.comm_wait + r.recovery_time + r.straggler_time;
        assert_eq!(
            accounted.as_nanos(),
            r.epoch_time.as_nanos(),
            "rank-0 accumulators must tile the epoch exactly"
        );
    }

    #[test]
    fn empty_plan_is_bit_identical_to_fault_free() {
        let cfg = full_cfg(ClusterSpec::single(p3_16xlarge()), 6);
        let plain = run_epoch(&cfg).expect("plain");
        let faulted = run_epoch_faulted(&cfg, &FaultPlan::empty()).expect("faulted");
        assert_eq!(plain, faulted.report);
        assert_eq!(faulted.faults, crate::recovery::FaultOutcome::default());
    }

    #[test]
    fn straggler_window_inflates_epoch_and_tiles_exactly() {
        let cfg = full_cfg(ClusterSpec::single(p3_16xlarge()), 8);
        let base = run_epoch(&cfg).expect("baseline");
        let mut plan = FaultPlan::empty();
        plan.events.push(FaultEvent {
            at: SimTime::ZERO + base.epoch_time.mul_f64(0.15),
            kind: FaultKind::StragglerWindow {
                rank: 0,
                duration: base.epoch_time.mul_f64(0.4),
                slowdown: 1.8,
            },
        });
        let run = run_epoch_faulted(&cfg, &plan).expect("faulted");
        assert!(run.report.epoch_time > base.epoch_time);
        assert!(run.report.straggler_time > SimDuration::ZERO);
        assert_eq!(run.report.recovery_time, SimDuration::ZERO);
        assert_tiles(&run.report);
        assert!(run.faults.events[0].fired);
        assert!(run.faults.events[0].blame > SimDuration::ZERO);
        // The nominal kernel time is unchanged: all excess is separated.
        assert_eq!(run.report.compute_time, base.compute_time);
    }

    #[test]
    fn preemption_with_restart_bills_recovery_and_replays() {
        let cfg = full_cfg(ClusterSpec::single(p3_16xlarge()), 10);
        let base = run_epoch(&cfg).expect("baseline");
        let mut plan = FaultPlan::empty();
        plan.recovery.checkpoint_every = 4;
        plan.events.push(FaultEvent {
            at: SimTime::ZERO + base.epoch_time.mul_f64(0.55),
            kind: FaultKind::Preemption {
                node: 0,
                restart_after: Some(base.epoch_time.mul_f64(0.1)),
            },
        });
        let run = run_epoch_faulted(&cfg, &plan).expect("faulted");
        assert!(run.report.epoch_time > base.epoch_time);
        assert!(run.report.recovery_time > SimDuration::ZERO);
        assert!(run.faults.replayed_iterations > 0);
        assert!(run.faults.events[0].fired);
        assert!(run.faults.events[0].blame > SimDuration::ZERO);
        assert_tiles(&run.report);
        // Work is conserved: the same samples are processed, just later.
        assert_eq!(run.report.samples, base.samples);
        assert!(run.faults.dead_nodes.is_empty());
    }

    #[test]
    fn elastic_preemption_retires_the_node_and_continues() {
        let cfg = full_cfg(ClusterSpec::homogeneous(p3_8xlarge(), 2), 10);
        let base = run_epoch(&cfg).expect("baseline");
        let mut plan = FaultPlan::empty();
        plan.events.push(FaultEvent {
            at: SimTime::ZERO + base.epoch_time.mul_f64(0.5),
            kind: FaultKind::Preemption {
                node: 1,
                restart_after: None,
            },
        });
        let run = run_epoch_faulted(&cfg, &plan).expect("faulted");
        assert_eq!(run.faults.dead_nodes, vec![1]);
        assert_eq!(run.report.world, 4, "survivor world after re-formation");
        assert!(run.report.recovery_time > SimDuration::ZERO);
        assert!(
            run.report.samples < base.samples,
            "dead ranks stop contributing samples"
        );
        assert_tiles(&run.report);
    }

    #[test]
    fn faulted_runs_are_deterministic_and_ff_invariant() {
        let cfg = full_cfg(ClusterSpec::single(p3_16xlarge()), 10);
        let base = run_epoch(&cfg).expect("baseline");
        let plan = FaultPlan::seeded(11, 8, 1, base.epoch_time);
        let a = run_epoch_faulted(&cfg, &plan).expect("a");
        let b = run_epoch_faulted(&cfg, &plan).expect("b");
        assert_eq!(a, b);
        let no_ff = run_epoch_faulted_with(
            &cfg,
            &plan,
            &EngineOptions {
                fast_forward: false,
            },
        )
        .expect("no ff");
        assert_eq!(a, no_ff, "fast-forward must not change faulted results");
    }
}
