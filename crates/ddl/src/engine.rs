//! The event-driven distributed-training engine.
//!
//! Simulates synchronous data-parallel training the way PyTorch DDP
//! executes it: every rank runs `wait-for-batch → forward → backward`
//! where the backward pass releases gradient buckets in reverse layer
//! order; buckets are all-reduced **in order, one at a time** (NCCL
//! single-stream semantics), overlapped with the remaining backward
//! compute; the iteration ends when both the backward pass and the last
//! bucket's collective have finished, followed by the optimizer step.
//!
//! All transfers — collective hops, SSD fetches, page-cache reads, H2D
//! uploads — are flows in one shared [`FlowNet`], so bus/SSD/NIC
//! contention between subsystems is emergent.

use std::collections::{BTreeMap, VecDeque};

use stash_collectives::bucket::CommPlan;
use stash_collectives::constants::GRAD_HOOK_OVERHEAD;
use stash_collectives::schedule::allreduce_transfers;
use stash_datapipe::loader::{LoaderAction, LoaderSpec, NodeLoader, TransferPurpose};
use stash_flowsim::link::LinkClass;
use stash_flowsim::net::{FlowNet, FlowSpec};
use stash_gpucompute::kernel::ComputeModel;
use stash_gpucompute::memory;
use stash_hwtopo::topology::{GpuId, Topology};
use stash_simkit::prelude::*;
use stash_trace::{Category, SharedTracer, Track};

use crate::config::{ActiveGpus, DataMode, TrainConfig};
use crate::error::TrainError;
use crate::report::{EpochReport, IterationSample};

const TAG_COMM: u64 = 1 << 48;
const TAG_LOADER: u64 = 2 << 48;

fn loader_tag(node: usize, worker: usize) -> u64 {
    TAG_LOADER | ((node as u64) << 16) | worker as u64
}

fn decode_loader_tag(tag: u64) -> (usize, usize) {
    (((tag >> 16) & 0xFFFF) as usize, (tag & 0xFFFF) as usize)
}

#[derive(Debug)]
enum Ev {
    NetWake,
    RankCompute { rank: usize },
    LoaderPrep { node: usize, worker: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    AwaitBatch,
    Forward,
    Backward { seg: usize },
    AwaitComm,
    Step,
    Done,
}

#[derive(Debug)]
struct RankState {
    gpu: GpuId,
    phase: Phase,
    iter: u64,
    /// Micro-batch index within the current iteration (gradient
    /// accumulation); communication happens only on the last one.
    micro: u64,
    wait_start: Option<SimTime>,
    first_iter_done: Option<SimTime>,
    done_at: Option<SimTime>,
    compute: SimDuration,
    data_wait: SimDuration,
    comm_wait: SimDuration,
}

#[derive(Debug)]
struct NodeCompute {
    fwd: SimDuration,
    bwd_segments: Vec<SimDuration>,
    step: SimDuration,
}

/// Rank-0 accumulators at the start of the current iteration.
#[derive(Debug, Default, Clone, Copy)]
struct IterMark {
    start: SimTime,
    data_wait: SimDuration,
    comm_wait: SimDuration,
}

#[derive(Debug)]
struct Comm {
    world: usize,
    ready: Vec<usize>,
    started: usize,
    completed: usize,
    inflight_remaining: usize,
}

/// Runs one training epoch under `cfg` and reports the timing breakdown.
///
/// # Errors
///
/// Returns [`TrainError::InvalidConfig`] for contradictory settings and
/// [`TrainError::OutOfMemory`] when the model + batch exceeds any
/// participating GPU's memory.
pub fn run_epoch(cfg: &TrainConfig) -> Result<EpochReport, TrainError> {
    run_epoch_inner(cfg, None)
}

/// [`run_epoch`] with a trace recorder attached: compute, stall-wait,
/// all-reduce-bucket and loader-pipeline spans are emitted through
/// `tracer` as the simulation executes.
///
/// The report is bit-identical to the untraced run — tracing observes the
/// engine, it never perturbs it. With a disabled tracer
/// ([`stash_trace::Tracer::disabled`]) this *is* the untraced run: no
/// event is constructed and nothing is allocated.
///
/// # Errors
///
/// As for [`run_epoch`].
pub fn run_epoch_traced(
    cfg: &TrainConfig,
    tracer: &SharedTracer,
) -> Result<EpochReport, TrainError> {
    run_epoch_inner(cfg, Some(tracer))
}

fn run_epoch_inner(
    cfg: &TrainConfig,
    tracer: Option<&SharedTracer>,
) -> Result<EpochReport, TrainError> {
    cfg.validate()?;
    for inst in &cfg.cluster.instances {
        let spec = inst.gpu.spec();
        let est = memory::estimate_with(&cfg.model, cfg.per_gpu_batch, cfg.precision);
        if est.total() > spec.mem_bytes {
            return Err(TrainError::OutOfMemory {
                gpu: spec.name.to_string(),
                required_bytes: est.total(),
                capacity_bytes: spec.mem_bytes,
            });
        }
    }
    let mut engine = Engine::new(cfg)?;
    if let Some(t) = tracer {
        engine.attach_tracer(t);
    }
    engine.run()
}

struct Engine<'a> {
    cfg: &'a TrainConfig,
    q: EventQueue<Ev>,
    net: FlowNet,
    topo: Topology,
    plan: CommPlan,
    node_compute: Vec<NodeCompute>,
    ranks: Vec<RankState>,
    active: Vec<usize>,
    comm: Option<Comm>,
    loaders: Vec<Option<NodeLoader>>,
    next_wake: Option<SimTime>,
    sim_iters: u64,
    trace: Vec<IterationSample>,
    iter_mark: IterMark,
    /// Whether bucket all-reduces overlap with backward compute. Requested
    /// via [`TrainConfig::overlap`], but *forced off* when the collective
    /// ring is staged through the PCIe host fabric: without peer-to-peer
    /// DMA the staged copies monopolise the GPU's DMA engines and streams,
    /// so in practice (and in the paper's P2 measurements) communication
    /// serializes with compute.
    overlap: bool,
    /// Optional span recorder shared with the flow network. `None` for
    /// untraced runs.
    tracer: Option<SharedTracer>,
    /// Cached `tracer.is_enabled()`: gates every emission site and all
    /// trace-only bookkeeping with one predictable branch.
    trace_on: bool,
    /// Stall class of gradient synchronisation on this cluster: `Network`
    /// when ranks span instances, `Interconnect` within one.
    comm_cat: Category,
    /// When the in-flight all-reduce bucket entered the network, and its
    /// bucket index (for per-bucket blame in trace analysis).
    bucket_open: Option<(SimTime, usize)>,
    /// Start time and purpose of each loader worker's in-flight transfer,
    /// keyed by `(node, worker)`. Populated only when tracing.
    xfer_open: BTreeMap<(usize, usize), (SimTime, TransferPurpose)>,
}

impl std::fmt::Debug for Engine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("world", &self.active.len())
            .field("now", &self.q.now())
            .finish()
    }
}

impl<'a> Engine<'a> {
    fn new(cfg: &'a TrainConfig) -> Result<Engine<'a>, TrainError> {
        let mut net = FlowNet::new();
        let topo = Topology::build(&cfg.cluster, &mut net);
        let plan = CommPlan::new(&cfg.model, cfg.bucketing);
        let sim_iters = cfg.simulated_iterations();

        let node_compute: Vec<NodeCompute> = cfg
            .cluster
            .instances
            .iter()
            .map(|inst| {
                let cm = ComputeModel::new(inst.gpu.spec()).with_precision(cfg.precision);
                let bwd_segments = plan
                    .buckets
                    .iter()
                    .map(|b| {
                        (b.layer_range.0..b.layer_range.1)
                            .map(|i| cm.layer_bwd(&cfg.model.layers[i], cfg.per_gpu_batch))
                            .sum()
                    })
                    .collect();
                NodeCompute {
                    fwd: cm.fwd_time(&cfg.model, cfg.per_gpu_batch),
                    bwd_segments,
                    step: cm.optimizer_step_time(&cfg.model),
                }
            })
            .collect();

        let active: Vec<usize> = match cfg.active {
            ActiveGpus::All => (0..topo.world_size()).collect(),
            ActiveGpus::Single => vec![0],
        };
        let ranks: Vec<RankState> = (0..topo.world_size())
            .map(|r| RankState {
                gpu: topo.rank_gpu(r),
                phase: Phase::Done,
                iter: 0,
                micro: 0,
                wait_start: None,
                first_iter_done: None,
                done_at: None,
                compute: SimDuration::ZERO,
                data_wait: SimDuration::ZERO,
                comm_wait: SimDuration::ZERO,
            })
            .collect();

        let world = active.len();
        let staged_ring = world > 1
            && allreduce_transfers(&topo, &net, cfg.algorithm, 1.0)
                .iter()
                .any(|t| {
                    t.route
                        .iter()
                        .any(|l| net.link(*l).class == LinkClass::PcieHostBus)
                });
        let overlap = cfg.overlap && !staged_ring;
        let comm = (world > 1).then(|| Comm {
            world,
            ready: vec![0; plan.buckets.len()],
            started: 0,
            completed: 0,
            inflight_remaining: 0,
        });

        let loaders: Vec<Option<NodeLoader>> = match &cfg.data {
            DataMode::Synthetic => vec![None; cfg.cluster.node_count()],
            DataMode::Real { dataset, cache } => cfg
                .cluster
                .instances
                .iter()
                .enumerate()
                .map(|(n, inst)| {
                    // Each node streams its shard of the dataset.
                    let shard = stash_dnn::dataset::DatasetSpec {
                        name: dataset.name.clone(),
                        num_samples: dataset.num_samples / cfg.cluster.node_count() as u64,
                        total_bytes: dataset.total_bytes / cfg.cluster.node_count() as f64,
                        prep_cost_factor: dataset.prep_cost_factor,
                    };
                    Some(NodeLoader::new(LoaderSpec {
                        gpus: inst.gpu_count,
                        workers_per_gpu: stash_datapipe::loader::DEFAULT_WORKERS_PER_GPU,
                        vcpus: inst.vcpus,
                        per_gpu_batch: cfg.per_gpu_batch,
                        batches_per_gpu: sim_iters,
                        dataset: shard,
                        decoded_sample_bytes: cfg.model.input_sample_bytes,
                        cache: *cache,
                        main_memory_bytes: inst.main_memory_bytes,
                        prefetch_depth: 2,
                        disk_route: topo.disk_route(n),
                        dram_route: topo.dram_route(n),
                        h2d_routes: (0..inst.gpu_count)
                            .map(|g| topo.h2d_route(GpuId { node: n, local: g }))
                            .collect(),
                        per_sample_disk_latency: inst.storage.per_sample_latency,
                    }))
                })
                .collect(),
        };

        Ok(Engine {
            cfg,
            q: EventQueue::new(),
            net,
            topo,
            plan,
            node_compute,
            ranks,
            active,
            comm,
            loaders,
            next_wake: None,
            sim_iters,
            trace: Vec::new(),
            iter_mark: IterMark::default(),
            overlap,
            tracer: None,
            trace_on: false,
            comm_cat: if cfg.cluster.node_count() > 1 {
                Category::Network
            } else {
                Category::Interconnect
            },
            bucket_open: None,
            xfer_open: BTreeMap::new(),
        })
    }

    /// Attaches a shared tracer; when it is enabled, the flow network gets
    /// the same handle so network events interleave with engine spans.
    fn attach_tracer(&mut self, tracer: &SharedTracer) {
        self.trace_on = tracer.borrow().is_enabled();
        self.tracer = Some(tracer.clone());
        if self.trace_on {
            self.net.set_tracer(tracer.clone());
        }
    }

    /// Records a complete span; a no-op unless tracing is enabled.
    fn emit_span(
        &self,
        track: Track,
        category: Category,
        name: &'static str,
        start: SimTime,
        end: SimTime,
    ) {
        if self.trace_on {
            self.tracer
                .as_ref()
                .expect("trace_on implies tracer")
                .borrow_mut()
                .span(track, category, name, start, end);
        }
    }

    /// Records a complete span carrying a numeric payload (bucket or
    /// backward-segment index); a no-op unless tracing is enabled.
    #[allow(clippy::too_many_arguments)]
    fn emit_span_arg(
        &self,
        track: Track,
        category: Category,
        name: &'static str,
        arg: u32,
        start: SimTime,
        end: SimTime,
    ) {
        if self.trace_on {
            self.tracer
                .as_ref()
                .expect("trace_on implies tracer")
                .borrow_mut()
                .span_arg(track, category, name, arg, start, end);
        }
    }

    /// Records an instant marker; a no-op unless tracing is enabled.
    fn emit_instant(&self, track: Track, category: Category, name: &'static str, at: SimTime) {
        if self.trace_on {
            self.tracer
                .as_ref()
                .expect("trace_on implies tracer")
                .borrow_mut()
                .instant(track, category, name, at);
        }
    }

    /// The timeline lane of `rank`'s GPU.
    fn gpu_track(&self, rank: usize) -> Track {
        let gpu = self.ranks[rank].gpu;
        Track::gpu(gpu.node, gpu.local)
    }

    fn run(mut self) -> Result<EpochReport, TrainError> {
        // Kick loaders and ranks.
        for node in 0..self.loaders.len() {
            if self.loaders[node].is_some() {
                let actions = self.loaders[node].as_mut().expect("loader").start();
                self.apply_loader_actions(node, actions);
            }
        }
        for i in 0..self.active.len() {
            let rank = self.active[i];
            self.begin_iteration(rank);
        }
        self.schedule_wake();

        let mut event_guard: u64 = 0;
        while !self.all_done() {
            let Some((_, ev)) = self.q.pop() else {
                panic!(
                    "deadlock: event queue drained with ranks unfinished (phases: {:?})",
                    self.active
                        .iter()
                        .map(|r| self.ranks[*r].phase)
                        .collect::<Vec<_>>()
                );
            };
            event_guard += 1;
            assert!(event_guard < 500_000_000, "runaway simulation");
            match ev {
                Ev::NetWake => {
                    self.next_wake = None;
                    self.net.advance(self.q.now());
                }
                Ev::RankCompute { rank } => self.on_rank_compute(rank),
                Ev::LoaderPrep { node, worker } => {
                    let actions = self.loaders[node]
                        .as_mut()
                        .expect("loader")
                        .prep_done(worker);
                    self.apply_loader_actions(node, actions);
                }
            }
            self.drain_flows();
            self.schedule_wake();
        }
        Ok(self.build_report())
    }

    fn all_done(&self) -> bool {
        self.active
            .iter()
            .all(|r| self.ranks[*r].phase == Phase::Done && self.ranks[*r].done_at.is_some())
    }

    // ----- rank state machine -----------------------------------------

    fn begin_iteration(&mut self, rank: usize) {
        let now = self.q.now();
        if self.ranks[rank].iter >= self.sim_iters {
            self.ranks[rank].phase = Phase::Done;
            self.ranks[rank].done_at = Some(now);
            return;
        }
        self.ranks[rank].micro = 0;
        self.begin_micro_batch(rank);
    }

    /// Starts one micro-batch: acquire input (real data) then forward.
    fn begin_micro_batch(&mut self, rank: usize) {
        let now = self.q.now();
        let node = self.ranks[rank].gpu.node;
        let local = self.ranks[rank].gpu.local;
        if self.loaders[node].is_some() {
            let (ok, actions) = self.loaders[node].as_mut().expect("loader").try_take(local);
            self.apply_loader_actions(node, actions);
            if ok {
                self.start_forward(rank);
            } else {
                self.ranks[rank].phase = Phase::AwaitBatch;
                self.ranks[rank].wait_start = Some(now);
            }
        } else {
            self.start_forward(rank);
        }
    }

    /// Applies the straggler slowdown to `rank`'s compute durations.
    fn straggle(&self, rank: usize, dur: SimDuration) -> SimDuration {
        match self.cfg.straggler {
            Some(s) if s.rank == rank => dur.mul_f64(s.slowdown),
            _ => dur,
        }
    }

    fn start_forward(&mut self, rank: usize) {
        let dur = self.straggle(rank, self.node_compute[self.ranks[rank].gpu.node].fwd);
        self.ranks[rank].phase = Phase::Forward;
        self.ranks[rank].compute += dur;
        if self.trace_on {
            let now = self.q.now();
            self.emit_span(
                self.gpu_track(rank),
                Category::Compute,
                "forward",
                now,
                now + dur,
            );
        }
        self.q.schedule_in(dur, Ev::RankCompute { rank });
    }

    fn is_sync_micro(&self, rank: usize) -> bool {
        self.ranks[rank].micro + 1 >= self.cfg.grad_accumulation.max(1)
    }

    fn start_backward_segment(&mut self, rank: usize, seg: usize) {
        let node = self.ranks[rank].gpu.node;
        let mut dur = self.straggle(rank, self.node_compute[node].bwd_segments[seg]);
        if self.comm.is_some() && self.is_sync_micro(rank) {
            dur += GRAD_HOOK_OVERHEAD; // DDP autograd hook per bucket
        }
        self.ranks[rank].phase = Phase::Backward { seg };
        self.ranks[rank].compute += dur;
        if self.trace_on {
            let now = self.q.now();
            self.emit_span_arg(
                self.gpu_track(rank),
                Category::Compute,
                "backward",
                seg as u32,
                now,
                now + dur,
            );
        }
        self.q.schedule_in(dur, Ev::RankCompute { rank });
    }

    fn start_step(&mut self, rank: usize) {
        let dur = self.straggle(rank, self.node_compute[self.ranks[rank].gpu.node].step);
        self.ranks[rank].phase = Phase::Step;
        self.ranks[rank].compute += dur;
        if self.trace_on {
            let now = self.q.now();
            self.emit_span(
                self.gpu_track(rank),
                Category::Compute,
                "step",
                now,
                now + dur,
            );
        }
        self.q.schedule_in(dur, Ev::RankCompute { rank });
    }

    fn on_rank_compute(&mut self, rank: usize) {
        match self.ranks[rank].phase {
            Phase::Forward => self.start_backward_segment(rank, 0),
            Phase::Backward { seg } => {
                let syncing = self.is_sync_micro(rank);
                if self.overlap && syncing {
                    self.notify_bucket_ready(seg);
                }
                let last = seg + 1 >= self.plan.buckets.len();
                if !last {
                    self.start_backward_segment(rank, seg + 1);
                } else if !syncing {
                    // Accumulation micro-batch: no synchronisation, go
                    // straight to the next forward (PyTorch `no_sync()`).
                    self.ranks[rank].micro += 1;
                    self.begin_micro_batch(rank);
                } else {
                    if !self.overlap {
                        for k in 0..self.plan.buckets.len() {
                            self.notify_bucket_ready(k);
                        }
                    }
                    match &self.comm {
                        None => self.start_step(rank),
                        Some(c) if c.completed >= self.plan.buckets.len() => {
                            // Communication already finished (cannot happen
                            // before our own last notify, but kept for
                            // symmetry with the reset path).
                            self.start_step(rank);
                        }
                        Some(_) => {
                            self.ranks[rank].phase = Phase::AwaitComm;
                            self.ranks[rank].wait_start = Some(self.q.now());
                        }
                    }
                }
            }
            Phase::Step => {
                self.ranks[rank].iter += 1;
                if self.ranks[rank].first_iter_done.is_none() {
                    self.ranks[rank].first_iter_done = Some(self.q.now());
                }
                if self.trace_on {
                    self.emit_instant(
                        self.gpu_track(rank),
                        Category::Compute,
                        "iter_done",
                        self.q.now(),
                    );
                }
                if self.cfg.record_trace && rank == self.active[0] {
                    let r = &self.ranks[rank];
                    let now = self.q.now();
                    self.trace.push(IterationSample {
                        iteration: r.iter - 1,
                        total: now.duration_since(self.iter_mark.start),
                        data_wait: r.data_wait - self.iter_mark.data_wait,
                        comm_wait: r.comm_wait - self.iter_mark.comm_wait,
                    });
                    self.iter_mark = IterMark {
                        start: now,
                        data_wait: r.data_wait,
                        comm_wait: r.comm_wait,
                    };
                }
                self.begin_iteration(rank);
            }
            other => panic!("compute completion in unexpected phase {other:?}"),
        }
    }

    // ----- communicator -------------------------------------------------

    fn notify_bucket_ready(&mut self, bucket: usize) {
        if self.comm.is_none() {
            return;
        }
        {
            let comm = self.comm.as_mut().expect("comm");
            comm.ready[bucket] += 1;
        }
        self.try_start_comm();
    }

    fn try_start_comm(&mut self) {
        let Some(comm) = self.comm.as_ref() else {
            return;
        };
        let next = comm.started;
        if next >= self.plan.buckets.len()
            || comm.started != comm.completed // one bucket in flight at a time
            || comm.ready[next] < comm.world
        {
            return;
        }
        // Bucket bytes are planned in fp32; scale to the wire precision.
        let bytes =
            self.plan.buckets[next].bytes * self.cfg.precision.gradient_bytes_per_param() / 4.0;
        let transfers = allreduce_transfers(&self.topo, &self.net, self.cfg.algorithm, bytes);
        debug_assert!(!transfers.is_empty(), "world > 1 must communicate");
        let now = self.q.now();
        for t in transfers.iter() {
            self.net.start_flow(
                now,
                FlowSpec {
                    route: t.route.clone(),
                    bytes: t.bytes,
                    extra_latency: t.extra_latency,
                    tag: TAG_COMM,
                },
            );
        }
        let comm = self.comm.as_mut().expect("comm");
        comm.inflight_remaining = transfers.len();
        comm.started += 1;
        self.bucket_open = Some((now, next));
    }

    fn on_comm_flow_done(&mut self) {
        let comm = self.comm.as_mut().expect("comm flow without communicator");
        comm.inflight_remaining -= 1;
        if comm.inflight_remaining > 0 {
            return;
        }
        comm.completed += 1;
        let bucket_start = self.bucket_open.take();
        if self.trace_on {
            let (start, bucket) = bucket_start.expect("bucket completion without an open bucket");
            self.emit_span_arg(
                Track::comm(),
                self.comm_cat,
                "allreduce",
                bucket as u32,
                start,
                self.q.now(),
            );
        }
        let comm = self.comm.as_mut().expect("comm flow without communicator");
        if comm.completed >= self.plan.buckets.len() {
            // Iteration's gradients are synchronised everywhere.
            comm.ready.iter_mut().for_each(|r| *r = 0);
            comm.started = 0;
            comm.completed = 0;
            let now = self.q.now();
            let waiting: Vec<usize> = self
                .active
                .clone()
                .into_iter()
                .filter(|r| self.ranks[*r].phase == Phase::AwaitComm)
                .collect();
            debug_assert_eq!(waiting.len(), self.comm.as_ref().expect("comm").world);
            for rank in waiting {
                let start = self.ranks[rank].wait_start.take().expect("wait start");
                self.ranks[rank].comm_wait += now.duration_since(start);
                if self.trace_on {
                    self.emit_span(
                        self.gpu_track(rank),
                        self.comm_cat,
                        "await_comm",
                        start,
                        now,
                    );
                }
                self.start_step(rank);
            }
        } else {
            self.try_start_comm();
        }
    }

    // ----- loaders --------------------------------------------------------

    fn apply_loader_actions(&mut self, node: usize, actions: Vec<LoaderAction>) {
        let mut work: VecDeque<(usize, LoaderAction)> =
            actions.into_iter().map(|a| (node, a)).collect();
        while let Some((n, action)) = work.pop_front() {
            match action {
                LoaderAction::StartTransfer {
                    worker,
                    route,
                    bytes,
                    extra_latency,
                    purpose,
                } => {
                    if self.trace_on {
                        let now = self.q.now();
                        let track = Track::loader(n, worker);
                        match purpose {
                            TransferPurpose::FetchHit => {
                                self.emit_instant(track, Category::Cache, "cache_hit", now);
                            }
                            TransferPurpose::FetchMiss => {
                                self.emit_instant(track, Category::Cache, "cache_miss", now);
                            }
                            TransferPurpose::Upload => {}
                        }
                        self.xfer_open.insert((n, worker), (now, purpose));
                    }
                    self.net.start_flow(
                        self.q.now(),
                        FlowSpec {
                            route,
                            bytes,
                            extra_latency,
                            tag: loader_tag(n, worker),
                        },
                    );
                }
                LoaderAction::StartPrep { worker, duration } => {
                    if self.trace_on {
                        let now = self.q.now();
                        self.emit_span(
                            Track::loader(n, worker),
                            Category::Prep,
                            "prep",
                            now,
                            now + duration,
                        );
                    }
                    self.q
                        .schedule_in(duration, Ev::LoaderPrep { node: n, worker });
                }
                LoaderAction::Deliver { gpu } => {
                    let rank = self.global_rank(n, gpu);
                    if self.ranks[rank].phase == Phase::AwaitBatch {
                        let (ok, more) = self.loaders[n].as_mut().expect("loader").try_take(gpu);
                        debug_assert!(ok, "delivery must satisfy a waiting GPU");
                        let now = self.q.now();
                        let start = self.ranks[rank].wait_start.take().expect("wait start");
                        self.ranks[rank].data_wait += now.duration_since(start);
                        if self.trace_on {
                            self.emit_span(
                                self.gpu_track(rank),
                                Category::Fetch,
                                "await_batch",
                                start,
                                now,
                            );
                        }
                        self.start_forward(rank);
                        for a in more {
                            work.push_back((n, a));
                        }
                    }
                }
            }
        }
    }

    fn global_rank(&self, node: usize, local: usize) -> usize {
        let mut rank = 0;
        for (n, inst) in self.cfg.cluster.instances.iter().enumerate() {
            if n == node {
                return rank + local;
            }
            rank += inst.gpu_count;
        }
        panic!("node {node} out of range");
    }

    // ----- flow plumbing ---------------------------------------------------

    fn drain_flows(&mut self) {
        loop {
            let completed = self.net.take_completed();
            if completed.is_empty() {
                break;
            }
            for (_, tag) in completed {
                if tag & TAG_COMM != 0 {
                    self.on_comm_flow_done();
                } else {
                    let (node, worker) = decode_loader_tag(tag);
                    if self.trace_on {
                        if let Some((start, purpose)) = self.xfer_open.remove(&(node, worker)) {
                            let name = match purpose {
                                TransferPurpose::FetchHit => "fetch_dram",
                                TransferPurpose::FetchMiss => "fetch_disk",
                                TransferPurpose::Upload => "h2d",
                            };
                            self.emit_span(
                                Track::loader(node, worker),
                                Category::Fetch,
                                name,
                                start,
                                self.q.now(),
                            );
                        }
                    }
                    let actions = self.loaders[node]
                        .as_mut()
                        .expect("loader")
                        .transfer_done(worker);
                    self.apply_loader_actions(node, actions);
                }
            }
        }
    }

    fn schedule_wake(&mut self) {
        let now = self.q.now();
        if let Some(t) = self.net.next_event_time(now) {
            let t = t.max(now + SimDuration::from_nanos(1));
            if self.next_wake.is_none_or(|w| t < w) {
                self.q.schedule_at(t, Ev::NetWake);
                self.next_wake = Some(t);
            }
        }
    }

    // ----- reporting --------------------------------------------------------

    fn build_report(self) -> EpochReport {
        let full_iters = self.cfg.epoch_iterations();
        let factor = full_iters as f64 / self.sim_iters as f64;
        let sim_end = self
            .active
            .iter()
            .filter_map(|r| self.ranks[*r].done_at)
            .max()
            .expect("all ranks done");
        let r0 = &self.ranks[self.active[0]];
        // Extrapolate from the steady state: the first iteration carries
        // the pipeline fill (prefetch queues, cold flows), so it is billed
        // once and only the remaining iterations are scaled.
        let first_iter_end = self
            .active
            .iter()
            .filter_map(|r| self.ranks[*r].first_iter_done)
            .max()
            .unwrap_or(sim_end);
        let epoch_time = if self.sim_iters > 1 && full_iters > 1 {
            let warmup = first_iter_end - SimTime::ZERO;
            let steady = sim_end.duration_since(first_iter_end);
            warmup + steady.mul_f64((full_iters - 1) as f64 / (self.sim_iters - 1) as f64)
        } else {
            (sim_end - SimTime::ZERO).mul_f64(factor)
        };
        let world = self.active.len();
        let samples = self.cfg.samples_per_gpu * world as u64;
        EpochReport {
            cluster: self.cfg.cluster.display_name(),
            model: self.cfg.model.name.clone(),
            per_gpu_batch: self.cfg.per_gpu_batch,
            world,
            iterations: full_iters,
            simulated_iterations: self.sim_iters,
            epoch_time,
            compute_time: r0.compute.mul_f64(factor),
            data_wait: r0.data_wait.mul_f64(factor),
            comm_wait: r0.comm_wait.mul_f64(factor),
            samples,
            throughput: samples as f64 / epoch_time.as_secs_f64().max(1e-12),
            host_bus_utilization: self.net.link_utilization(self.topo.host_bus(0)),
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EpochMode;
    use stash_datapipe::cache::CacheState;
    use stash_dnn::dataset::DatasetSpec;
    use stash_dnn::zoo;
    use stash_hwtopo::cluster::ClusterSpec;
    use stash_hwtopo::instance::{p2_16xlarge, p3_16xlarge, p3_2xlarge, p3_8xlarge};

    fn quick(mut cfg: TrainConfig) -> EpochReport {
        cfg.epoch_mode = EpochMode::Sampled { iterations: 4 };
        run_epoch(&cfg).expect("run")
    }

    #[test]
    fn single_gpu_synthetic_matches_compute_model() {
        let model = zoo::resnet18();
        let cfg = TrainConfig::synthetic(ClusterSpec::single(p3_2xlarge()), model.clone(), 32, 320);
        let report = quick(cfg);
        let cm = ComputeModel::new(stash_hwtopo::gpu::GpuModel::V100.spec());
        let expected = cm.iteration_time(&model, 32).as_secs_f64() * 10.0;
        let got = report.epoch_time.as_secs_f64();
        assert!(
            (got - expected).abs() / expected < 0.01,
            "engine {got} vs analytic {expected}"
        );
        assert_eq!(report.comm_wait, SimDuration::ZERO);
        assert_eq!(report.data_wait, SimDuration::ZERO);
    }

    #[test]
    fn multi_gpu_is_slower_per_sample_than_single() {
        // Same per-GPU work; the distributed run adds communication.
        let model = zoo::resnet18();
        let single = {
            let mut c =
                TrainConfig::synthetic(ClusterSpec::single(p3_16xlarge()), model.clone(), 32, 320);
            c.active = ActiveGpus::Single;
            quick(c)
        };
        let multi = quick(TrainConfig::synthetic(
            ClusterSpec::single(p3_16xlarge()),
            model.clone(),
            32,
            320,
        ));
        assert!(multi.epoch_time > single.epoch_time);
        assert!(multi.comm_wait > SimDuration::ZERO || multi.compute_time > single.compute_time);
    }

    #[test]
    fn pcie_sixteen_gpus_stall_far_more_than_nvlink_eight() {
        let model = zoo::resnet18();
        let p2 = quick(TrainConfig::synthetic(
            ClusterSpec::single(p2_16xlarge()),
            model.clone(),
            32,
            320,
        ));
        let p3 = quick(TrainConfig::synthetic(
            ClusterSpec::single(p3_16xlarge()),
            model,
            32,
            320,
        ));
        assert!(
            p2.comm_wait_fraction() > 2.0 * p3.comm_wait_fraction(),
            "p2 {} vs p3 {}",
            p2.comm_wait_fraction(),
            p3.comm_wait_fraction()
        );
    }

    #[test]
    fn cold_cache_is_slower_than_warm() {
        let model = zoo::resnet18();
        let mk = |cache| {
            let mut c =
                TrainConfig::synthetic(ClusterSpec::single(p3_16xlarge()), model.clone(), 32, 320);
            c.data = DataMode::Real {
                dataset: DatasetSpec::imagenet1k(),
                cache,
            };
            quick(c)
        };
        let cold = mk(CacheState::Cold);
        let warm = mk(CacheState::Warm);
        assert!(
            cold.epoch_time > warm.epoch_time,
            "cold {} warm {}",
            cold.epoch_time,
            warm.epoch_time
        );
        assert!(cold.data_wait >= warm.data_wait);
    }

    #[test]
    fn out_of_memory_is_reported() {
        let mut cfg = TrainConfig::synthetic(
            ClusterSpec::single(p3_2xlarge()),
            zoo::bert_large(),
            64,
            640,
        );
        cfg.epoch_mode = EpochMode::Sampled { iterations: 2 };
        match run_epoch(&cfg) {
            Err(TrainError::OutOfMemory { .. }) => {}
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn overlap_off_is_no_faster_than_on() {
        let model = zoo::resnet50();
        let mut on =
            TrainConfig::synthetic(ClusterSpec::single(p3_16xlarge()), model.clone(), 32, 320);
        on.epoch_mode = EpochMode::Sampled { iterations: 4 };
        let mut off = on.clone();
        off.overlap = false;
        let r_on = run_epoch(&on).unwrap();
        let r_off = run_epoch(&off).unwrap();
        assert!(r_off.epoch_time >= r_on.epoch_time);
    }

    #[test]
    fn network_split_is_slower_than_single_instance() {
        let model = zoo::resnet18();
        let single = quick(TrainConfig::synthetic(
            ClusterSpec::single(p3_16xlarge()),
            model.clone(),
            32,
            320,
        ));
        let split = quick(TrainConfig::synthetic(
            ClusterSpec::homogeneous(p3_8xlarge(), 2),
            model,
            32,
            320,
        ));
        assert!(
            split.epoch_time > single.epoch_time,
            "split {} single {}",
            split.epoch_time,
            single.epoch_time
        );
    }

    #[test]
    fn traced_report_is_bit_identical_and_spans_reconcile() {
        use stash_trace::rollup::StallRollup;
        use stash_trace::{shared, JsonSink, Tracer};
        use std::cell::RefCell;
        use std::rc::Rc;

        let mut cfg =
            TrainConfig::synthetic(ClusterSpec::single(p3_16xlarge()), zoo::resnet18(), 32, 320);
        cfg.data = DataMode::Real {
            dataset: DatasetSpec::imagenet1k(),
            cache: CacheState::Warm,
        };
        cfg.epoch_mode = EpochMode::Sampled { iterations: 4 };
        let untraced = run_epoch(&cfg).unwrap();
        let sink = Rc::new(RefCell::new(JsonSink::new()));
        let tracer = shared(Tracer::new(sink.clone()));
        let traced = run_epoch_traced(&cfg, &tracer).unwrap();
        assert_eq!(untraced.epoch_time, traced.epoch_time);
        assert_eq!(untraced.compute_time, traced.compute_time);
        assert_eq!(untraced.data_wait, traced.data_wait);
        assert_eq!(untraced.comm_wait, traced.comm_wait);

        // Raw span sums on rank 0's lane, extrapolated exactly like the
        // report's accumulators, must reproduce the report to the ns.
        let rollup = StallRollup::from_events(sink.borrow().events());
        let factor = traced.iterations as f64 / traced.simulated_iterations as f64;
        let track0 = Track::gpu(0, 0);
        assert_eq!(
            rollup
                .track_total(track0, Category::Compute)
                .mul_f64(factor),
            traced.compute_time
        );
        assert_eq!(
            rollup.track_total(track0, Category::Fetch).mul_f64(factor),
            traced.data_wait
        );
        let comm_raw = rollup.track_total(track0, Category::Interconnect)
            + rollup.track_total(track0, Category::Network);
        assert_eq!(comm_raw.mul_f64(factor), traced.comm_wait);
        assert!(
            traced.comm_wait > SimDuration::ZERO,
            "8 GPUs must synchronise"
        );
    }

    #[test]
    fn disabled_tracer_emits_nothing_and_changes_nothing() {
        use stash_trace::{shared, Tracer};

        let mut cfg =
            TrainConfig::synthetic(ClusterSpec::single(p3_8xlarge()), zoo::alexnet(), 32, 320);
        cfg.epoch_mode = EpochMode::Sampled { iterations: 3 };
        let baseline = run_epoch(&cfg).unwrap();
        let tracer = shared(Tracer::disabled());
        let traced = run_epoch_traced(&cfg, &tracer).unwrap();
        assert_eq!(baseline.epoch_time, traced.epoch_time);
        assert_eq!(baseline.compute_time, traced.compute_time);
        assert_eq!(baseline.comm_wait, traced.comm_wait);
        assert_eq!(tracer.borrow().events_emitted(), 0);
    }

    #[test]
    fn deterministic_replay() {
        let cfg = TrainConfig::synthetic(
            ClusterSpec::homogeneous(p3_8xlarge(), 2),
            zoo::alexnet(),
            32,
            320,
        );
        let a = quick(cfg.clone());
        let b = quick(cfg);
        assert_eq!(a.epoch_time, b.epoch_time);
        assert_eq!(a.comm_wait, b.comm_wait);
    }

    #[test]
    fn extrapolation_scales_linearly() {
        let mut cfg = TrainConfig::synthetic(
            ClusterSpec::single(p3_2xlarge()),
            zoo::alexnet(),
            32,
            32 * 100,
        );
        cfg.epoch_mode = EpochMode::Sampled { iterations: 5 };
        let sampled = run_epoch(&cfg).unwrap();
        cfg.epoch_mode = EpochMode::Full;
        let full = run_epoch(&cfg).unwrap();
        let rel = (sampled.epoch_time.as_secs_f64() - full.epoch_time.as_secs_f64()).abs()
            / full.epoch_time.as_secs_f64();
        assert!(rel < 0.01, "sampled vs full differ by {rel}");
    }
}
