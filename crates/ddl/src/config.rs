//! Training-run configuration.

use serde::Serialize;
use stash_collectives::bucket::Bucketing;
use stash_collectives::schedule::Algorithm;
use stash_datapipe::cache::CacheState;
use stash_dnn::dataset::DatasetSpec;
use stash_dnn::model::Model;
use stash_gpucompute::precision::Precision;
use stash_hwtopo::cluster::ClusterSpec;

use crate::error::TrainError;

/// Where training data comes from.
#[derive(Debug, Clone, Serialize)]
pub enum DataMode {
    /// Data pre-populated in GPU memory (the paper's steps 1, 2 and 5):
    /// the input pipeline is bypassed entirely.
    Synthetic,
    /// Real data streamed through the input pipeline (steps 3 and 4).
    Real {
        /// Dataset to stream.
        dataset: DatasetSpec,
        /// Page-cache temperature for the epoch.
        cache: CacheState,
    },
}

impl DataMode {
    /// `true` for [`DataMode::Synthetic`].
    #[must_use]
    pub fn is_synthetic(&self) -> bool {
        matches!(self, DataMode::Synthetic)
    }
}

/// Which GPUs participate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ActiveGpus {
    /// Every GPU of every instance (steps 2-5).
    All,
    /// Only rank 0, all other GPUs idle (the paper's step 1: single-GPU
    /// synthetic training on a multi-GPU machine).
    Single,
}

/// How much of the epoch to actually simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum EpochMode {
    /// Simulate every iteration.
    Full,
    /// Simulate `iterations` and extrapolate linearly — sound because DL
    /// iterations are repetitive (the paper's own single-epoch argument).
    Sampled {
        /// Iterations to simulate.
        iterations: u64,
    },
}

/// Complete description of one training run.
#[derive(Debug, Clone, Serialize)]
pub struct TrainConfig {
    /// The cluster to train on.
    pub cluster: ClusterSpec,
    /// The model to train.
    pub model: Model,
    /// Per-GPU mini-batch size.
    pub per_gpu_batch: u64,
    /// Data source.
    pub data: DataMode,
    /// Gradient bucketing policy.
    pub bucketing: Bucketing,
    /// Collective algorithm.
    pub algorithm: Algorithm,
    /// Overlap communication with backward compute (PyTorch DDP
    /// behaviour). Disabling serializes all communication after backward.
    pub overlap: bool,
    /// Participating GPUs.
    pub active: ActiveGpus,
    /// Samples each active GPU processes per epoch.
    pub samples_per_gpu: u64,
    /// Full simulation or sampled extrapolation.
    pub epoch_mode: EpochMode,
    /// Record a per-iteration rank-0 timeline in the report.
    pub record_trace: bool,
    /// Numeric precision (fp32 as in the paper, or AMP).
    pub precision: Precision,
    /// Micro-batches accumulated locally before each gradient
    /// synchronisation (1 = synchronous DDP as in the paper). Larger
    /// values amortise communication over more compute, trading gradient
    /// staleness for lower network stalls.
    pub grad_accumulation: u64,
    /// Failure injection: slow one rank's compute by a factor. In
    /// synchronous data parallelism a single straggler drags the whole
    /// ring (every bucket waits for all ranks).
    pub straggler: Option<Straggler>,
}

/// One deliberately slowed rank (failure injection).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Straggler {
    /// Global rank to slow down.
    pub rank: usize,
    /// Compute-time multiplier (> 1 slows the rank).
    pub slowdown: f64,
}

impl TrainConfig {
    /// A conventional DDP configuration: all GPUs, synthetic data, ring
    /// all-reduce, per-layer buckets, overlap on, sampled epoch.
    #[must_use]
    pub fn synthetic(
        cluster: ClusterSpec,
        model: Model,
        per_gpu_batch: u64,
        samples_per_gpu: u64,
    ) -> Self {
        TrainConfig {
            cluster,
            model,
            per_gpu_batch,
            data: DataMode::Synthetic,
            bucketing: Bucketing::PerLayer,
            algorithm: Algorithm::Ring,
            overlap: true,
            active: ActiveGpus::All,
            samples_per_gpu,
            epoch_mode: EpochMode::Sampled { iterations: 30 },
            record_trace: false,
            precision: Precision::Fp32,
            grad_accumulation: 1,
            straggler: None,
        }
    }

    /// Number of iterations in the (full) epoch. One iteration covers
    /// `per_gpu_batch x grad_accumulation` samples per GPU.
    #[must_use]
    pub fn epoch_iterations(&self) -> u64 {
        self.samples_per_gpu
            .div_ceil(self.per_gpu_batch.max(1) * self.grad_accumulation.max(1))
    }

    /// Number of iterations actually simulated.
    #[must_use]
    pub fn simulated_iterations(&self) -> u64 {
        match self.epoch_mode {
            EpochMode::Full => self.epoch_iterations(),
            EpochMode::Sampled { iterations } => iterations.min(self.epoch_iterations()),
        }
    }

    /// Validates the configuration (shape errors only; memory checks happen
    /// in the engine, which knows the GPUs).
    ///
    /// # Errors
    ///
    /// Returns [`TrainError::InvalidConfig`] for contradictory settings.
    pub fn validate(&self) -> Result<(), TrainError> {
        if self.per_gpu_batch == 0 {
            return Err(TrainError::InvalidConfig(
                "per_gpu_batch must be positive".into(),
            ));
        }
        if self.samples_per_gpu == 0 {
            return Err(TrainError::InvalidConfig(
                "samples_per_gpu must be positive".into(),
            ));
        }
        if let EpochMode::Sampled { iterations: 0 } = self.epoch_mode {
            return Err(TrainError::InvalidConfig(
                "sampled epoch needs iterations > 0".into(),
            ));
        }
        if self.grad_accumulation == 0 {
            return Err(TrainError::InvalidConfig(
                "grad_accumulation must be positive".into(),
            ));
        }
        if let Some(s) = self.straggler {
            if !(s.slowdown.is_finite() && s.slowdown >= 1.0) {
                return Err(TrainError::InvalidConfig(
                    "straggler slowdown must be a finite factor >= 1".into(),
                ));
            }
            if s.rank >= self.cluster.world_size() {
                return Err(TrainError::InvalidConfig(format!(
                    "straggler rank {} out of range (world {})",
                    s.rank,
                    self.cluster.world_size()
                )));
            }
        }
        if self.active == ActiveGpus::Single && !self.data.is_synthetic() {
            return Err(TrainError::InvalidConfig(
                "single-GPU profiling step uses synthetic data only".into(),
            ));
        }
        if self.active == ActiveGpus::Single && self.cluster.node_count() > 1 {
            return Err(TrainError::InvalidConfig(
                "single-GPU step runs on one instance".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_hwtopo::instance::{p3_16xlarge, p3_8xlarge};

    #[test]
    fn synthetic_defaults_are_ddp_like() {
        let cfg = TrainConfig::synthetic(
            ClusterSpec::single(p3_16xlarge()),
            stash_dnn::zoo::resnet18(),
            32,
            1000,
        );
        assert!(cfg.data.is_synthetic());
        assert!(cfg.overlap);
        assert_eq!(cfg.algorithm, Algorithm::Ring);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn iteration_counts_round_up() {
        let cfg = TrainConfig::synthetic(
            ClusterSpec::single(p3_8xlarge()),
            stash_dnn::zoo::resnet18(),
            32,
            100,
        );
        assert_eq!(cfg.epoch_iterations(), 4);
        assert_eq!(cfg.simulated_iterations(), 4); // capped by the epoch
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = TrainConfig::synthetic(
            ClusterSpec::single(p3_8xlarge()),
            stash_dnn::zoo::resnet18(),
            32,
            1000,
        );
        cfg.per_gpu_batch = 0;
        assert!(cfg.validate().is_err());
        cfg.per_gpu_batch = 32;
        cfg.samples_per_gpu = 0;
        assert!(cfg.validate().is_err());
        cfg.samples_per_gpu = 100;
        cfg.active = ActiveGpus::Single;
        cfg.data = DataMode::Real {
            dataset: stash_dnn::dataset::DatasetSpec::imagenet1k(),
            cache: CacheState::Warm,
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn single_step_on_multi_node_rejected() {
        let mut cfg = TrainConfig::synthetic(
            ClusterSpec::homogeneous(p3_8xlarge(), 2),
            stash_dnn::zoo::resnet18(),
            32,
            1000,
        );
        cfg.active = ActiveGpus::Single;
        assert!(cfg.validate().is_err());
    }
}
