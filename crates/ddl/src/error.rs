//! Error types of the training engine.

use std::error::Error;
use std::fmt;

/// Why a training run could not execute.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// The model + batch does not fit in a participating GPU's memory.
    OutOfMemory {
        /// GPU model label.
        gpu: String,
        /// Bytes required.
        required_bytes: f64,
        /// Bytes available.
        capacity_bytes: f64,
    },
    /// Contradictory or nonsensical configuration.
    InvalidConfig(String),
    /// A fault plan that does not fit the cluster (out-of-range targets,
    /// hostile multipliers, or an unrecoverable schedule).
    InvalidFaultPlan(String),
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::OutOfMemory {
                gpu,
                required_bytes,
                capacity_bytes,
            } => write!(
                f,
                "model does not fit on {gpu}: needs {:.2} GB of {:.2} GB",
                required_bytes / 1e9,
                capacity_bytes / 1e9
            ),
            TrainError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TrainError::InvalidFaultPlan(msg) => write!(f, "invalid fault plan: {msg}"),
        }
    }
}

impl Error for TrainError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TrainError::OutOfMemory {
            gpu: "V100".into(),
            required_bytes: 20e9,
            capacity_bytes: 16e9,
        };
        let s = e.to_string();
        assert!(s.contains("V100") && s.contains("20.00"));
        assert!(TrainError::InvalidConfig("x".into())
            .to_string()
            .contains('x'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<TrainError>();
    }
}
