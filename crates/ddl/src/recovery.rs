//! Fault-injection outcomes: what the engine observed and did while
//! surviving a [`stash_faults::plan::FaultPlan`].
//!
//! The [`EpochReport`] stays the single
//! timing contract — faulted runs only add the `recovery_time` and
//! `straggler_time` accumulators there. Everything fault-*specific*
//! (per-event stall blame, straggler detections, replay counts, nodes
//! lost to elastic re-formation) lives here, so fault-free reports keep
//! their exact shape and the differential tests can compare them
//! bit-for-bit.

use serde::Serialize;
use stash_simkit::time::{SimDuration, SimTime};

use crate::report::EpochReport;

/// One bounded-timeout straggler detection on the all-reduce path.
///
/// Detection is pure bookkeeping: when the gap between the first and the
/// last rank delivering a gradient bucket exceeds the recovery policy's
/// timeout, the engine records the laggard and multiplies the timeout by
/// the configured backoff. Timing is never perturbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct StragglerDetection {
    /// When the last rank delivered the bucket.
    pub at: SimTime,
    /// The rank that closed the bucket — the blamed straggler.
    pub rank: usize,
    /// Gradient-bucket index the detection fired on.
    pub bucket: usize,
    /// Observed first-to-last skew that exceeded the timeout.
    pub gap: SimDuration,
}

/// One plan event and the wall-clock stall directly blamed on it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FaultRecord {
    /// Stable fault-kind label (`"preemption"`, `"straggler_window"`, …).
    pub label: String,
    /// Scheduled firing time.
    pub at: SimTime,
    /// Whether the event fired before the epoch finished.
    pub fired: bool,
    /// Stall time attributed directly to this event: straggler-window
    /// excess compute, preemption barrier + restart waits and replayed
    /// work. Bandwidth faults stall *indirectly* (through inflated
    /// `data_wait`/`comm_wait`) and carry zero direct blame.
    pub blame: SimDuration,
}

/// Everything fault-specific a faulted epoch produced.
#[derive(Debug, Clone, PartialEq, Serialize, Default)]
pub struct FaultOutcome {
    /// One record per plan event, in plan order.
    pub events: Vec<FaultRecord>,
    /// Straggler detections, in detection order.
    pub detections: Vec<StragglerDetection>,
    /// Iterations rolled back to the last checkpoint and re-run.
    pub replayed_iterations: u64,
    /// Nodes permanently lost to elastic re-formation.
    pub dead_nodes: Vec<usize>,
}

/// Result of [`run_epoch_faulted`](crate::engine::run_epoch_faulted): the
/// ordinary timing report plus the fault outcome.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultedRun {
    /// The epoch's timing breakdown (recovery and straggler stall
    /// included as first-class accumulators).
    pub report: EpochReport,
    /// Fault-specific observations.
    pub faults: FaultOutcome,
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn default_outcome_is_empty() {
        let o = FaultOutcome::default();
        assert!(o.events.is_empty());
        assert!(o.detections.is_empty());
        assert_eq!(o.replayed_iterations, 0);
        assert!(o.dead_nodes.is_empty());
    }

    #[test]
    fn outcome_serializes() {
        let o = FaultOutcome {
            events: vec![FaultRecord {
                label: "preemption".into(),
                at: SimTime::from_nanos(5),
                fired: true,
                blame: SimDuration::from_micros(3),
            }],
            detections: vec![StragglerDetection {
                at: SimTime::from_nanos(9),
                rank: 3,
                bucket: 1,
                gap: SimDuration::from_micros(2),
            }],
            replayed_iterations: 2,
            dead_nodes: vec![1],
        };
        let json = serde_json::to_string_pretty(&o).expect("serialize");
        assert!(json.contains("preemption"));
        assert!(json.contains("replayed_iterations"));
    }
}
