//! # stash-ddl — the distributed-training engine
//!
//! An event-driven simulator of synchronous data-parallel DNN training
//! (PyTorch-DDP semantics): per-rank forward/backward state machines,
//! reverse-order gradient buckets all-reduced in order and overlapped with
//! backward compute, optimizer steps, and the full input pipeline — all
//! sharing one flow network so PCIe/NVLink/SSD/NIC contention is emergent.
//! This is the substrate the Stash profiler (`stash-core`) measures.
//!
//! # Examples
//!
//! ```
//! use stash_ddl::prelude::*;
//! use stash_hwtopo::prelude::*;
//! use stash_dnn::zoo;
//!
//! let cfg = TrainConfig::synthetic(
//!     ClusterSpec::single(p3_16xlarge()),
//!     zoo::resnet18(),
//!     32,
//!     32 * 50,
//! );
//! let report = run_epoch(&cfg)?;
//! assert_eq!(report.world, 8);
//! assert!(report.throughput > 0.0);
//! # Ok::<(), stash_ddl::error::TrainError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod engine;
pub mod error;
pub mod perf_stats;
pub mod recovery;
pub mod report;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::config::{ActiveGpus, DataMode, EpochMode, Straggler, TrainConfig};
    pub use crate::engine::{
        run_epoch, run_epoch_faulted, run_epoch_faulted_traced, run_epoch_faulted_with,
        run_epoch_in, run_epoch_series, run_epoch_series_in, run_epoch_traced, run_epoch_with,
        EngineArena, EngineOptions, SeriesRun,
    };
    pub use crate::error::TrainError;
    pub use crate::perf_stats::PerfSnapshot;
    pub use crate::recovery::{FaultOutcome, FaultRecord, FaultedRun, StragglerDetection};
    pub use crate::report::EpochReport;
}
