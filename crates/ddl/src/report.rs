//! Results of a simulated training epoch.

use serde::Serialize;
use stash_simkit::time::SimDuration;

/// Rank-0 timing of one simulated iteration (recorded when
/// [`crate::config::TrainConfig::record_trace`] is set).
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct IterationSample {
    /// Iteration index.
    pub iteration: u64,
    /// Wall-clock duration of the iteration.
    pub total: SimDuration,
    /// Time blocked waiting for the input batch.
    pub data_wait: SimDuration,
    /// Time blocked on gradient synchronisation after backward.
    pub comm_wait: SimDuration,
}

/// Timing breakdown of one epoch, already extrapolated to full-epoch scale
/// when the run was sampled.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct EpochReport {
    /// Cluster display name (e.g. `"p3.8xlarge*2"`).
    pub cluster: String,
    /// Model name.
    pub model: String,
    /// Per-GPU batch size.
    pub per_gpu_batch: u64,
    /// Number of participating GPUs.
    pub world: usize,
    /// Iterations in the full epoch.
    pub iterations: u64,
    /// Iterations actually simulated (before extrapolation).
    pub simulated_iterations: u64,
    /// Wall-clock time of the epoch.
    pub epoch_time: SimDuration,
    /// Rank-0 time spent in pure compute (forward + backward + optimizer,
    /// including gradient-hook overhead).
    pub compute_time: SimDuration,
    /// Rank-0 time spent waiting for input batches.
    pub data_wait: SimDuration,
    /// Rank-0 time spent waiting for gradient synchronisation after its
    /// own backward pass finished (exposed communication).
    pub comm_wait: SimDuration,
    /// Rank-0 time lost to fault recovery: preemption barrier waits,
    /// restart delays and iterations replayed from the last checkpoint.
    /// Always zero on fault-free runs.
    pub recovery_time: SimDuration,
    /// Rank-0 *excess* compute inflicted by transient straggler windows
    /// (the nominal kernel time stays in `compute_time`). Always zero on
    /// fault-free runs.
    pub straggler_time: SimDuration,
    /// Samples processed across all GPUs in the full epoch.
    pub samples: u64,
    /// Aggregate throughput, samples/second.
    pub throughput: f64,
    /// Mean utilisation of node 0's PCIe host fabric over the simulated
    /// window (0-1) — the contention signal behind the paper's Fig. 7.
    pub host_bus_utilization: f64,
    /// Per-iteration rank-0 trace (empty unless tracing was requested;
    /// *not* extrapolated — one entry per simulated iteration).
    pub trace: Vec<IterationSample>,
}

impl EpochReport {
    /// Epoch time in seconds (convenience for cost math).
    #[must_use]
    pub fn epoch_seconds(&self) -> f64 {
        self.epoch_time.as_secs_f64()
    }

    /// Fraction of the epoch rank 0 spent blocked on communication.
    #[must_use]
    pub fn comm_wait_fraction(&self) -> f64 {
        self.comm_wait.ratio(self.epoch_time)
    }

    /// Fraction of the epoch rank 0 spent blocked on input data.
    #[must_use]
    pub fn data_wait_fraction(&self) -> f64 {
        self.data_wait.ratio(self.epoch_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_divide_by_epoch() {
        let r = EpochReport {
            cluster: "x".into(),
            model: "m".into(),
            per_gpu_batch: 32,
            world: 4,
            iterations: 100,
            simulated_iterations: 10,
            epoch_time: SimDuration::from_secs(10),
            compute_time: SimDuration::from_secs(6),
            data_wait: SimDuration::from_secs(1),
            comm_wait: SimDuration::from_secs(3),
            recovery_time: SimDuration::ZERO,
            straggler_time: SimDuration::ZERO,
            samples: 12800,
            throughput: 1280.0,
            host_bus_utilization: 0.0,
            trace: Vec::new(),
        };
        assert!((r.comm_wait_fraction() - 0.3).abs() < 1e-12);
        assert!((r.data_wait_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(r.epoch_seconds(), 10.0);
    }
}
