//! Process-wide simulator performance counters.
//!
//! The engine flushes per-epoch diagnostics here instead of into
//! [`crate::report::EpochReport`], so the report stays bit-identical across
//! pure performance features (fast-forward on/off, arena reuse, parallel
//! execution) while sweeps can still surface solver and fast-forward
//! activity in their Prometheus output.
//!
//! Counters are monotonic atomics; callers take [`snapshot`] deltas around
//! the work they want to attribute.

use std::sync::atomic::{AtomicU64, Ordering};

static FULL_RECOMPUTES: AtomicU64 = AtomicU64::new(0);
static SHORTCUT_EVENTS: AtomicU64 = AtomicU64::new(0);
static FAST_FORWARDED_ITERATIONS: AtomicU64 = AtomicU64::new(0);
static SIM_EVENTS: AtomicU64 = AtomicU64::new(0);

/// Point-in-time reading of the process-wide simulator counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PerfSnapshot {
    /// Full water-filling solves across all epochs.
    pub full_recomputes: u64,
    /// Network state changes settled by incremental shortcuts instead.
    pub shortcut_events: u64,
    /// Iterations extended analytically by steady-state fast-forward
    /// rather than simulated event-by-event.
    pub fast_forwarded_iterations: u64,
    /// Discrete events delivered by engine event queues.
    pub sim_events: u64,
}

impl PerfSnapshot {
    /// Counter increments between `earlier` and `self`.
    #[must_use]
    pub fn since(&self, earlier: &PerfSnapshot) -> PerfSnapshot {
        PerfSnapshot {
            full_recomputes: self.full_recomputes - earlier.full_recomputes,
            shortcut_events: self.shortcut_events - earlier.shortcut_events,
            fast_forwarded_iterations: self.fast_forwarded_iterations
                - earlier.fast_forwarded_iterations,
            sim_events: self.sim_events - earlier.sim_events,
        }
    }
}

/// Reads the current counter values.
#[must_use]
pub fn snapshot() -> PerfSnapshot {
    PerfSnapshot {
        full_recomputes: FULL_RECOMPUTES.load(Ordering::Relaxed),
        shortcut_events: SHORTCUT_EVENTS.load(Ordering::Relaxed),
        fast_forwarded_iterations: FAST_FORWARDED_ITERATIONS.load(Ordering::Relaxed),
        sim_events: SIM_EVENTS.load(Ordering::Relaxed),
    }
}

/// Flushes one epoch's worth of counters (called by the engine at report
/// time).
pub(crate) fn record_epoch(
    full_recomputes: u64,
    shortcut_events: u64,
    fast_forwarded_iterations: u64,
    sim_events: u64,
) {
    FULL_RECOMPUTES.fetch_add(full_recomputes, Ordering::Relaxed);
    SHORTCUT_EVENTS.fetch_add(shortcut_events, Ordering::Relaxed);
    FAST_FORWARDED_ITERATIONS.fetch_add(fast_forwarded_iterations, Ordering::Relaxed);
    SIM_EVENTS.fetch_add(sim_events, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_deltas_accumulate() {
        let before = snapshot();
        record_epoch(2, 3, 5, 7);
        let delta = snapshot().since(&before);
        assert!(delta.full_recomputes >= 2);
        assert!(delta.shortcut_events >= 3);
        assert!(delta.fast_forwarded_iterations >= 5);
        assert!(delta.sim_events >= 7);
    }
}
