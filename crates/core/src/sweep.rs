//! The resilient sweep runner: characterization sweeps that survive the
//! process running them.
//!
//! A sweep is a list of [`ProfileJob`] cells (cluster × model × batch).
//! Run against a [`ResultStore`], each cell is *consult-first*: a
//! verified on-disk record is decoded and reused bit-identically
//! ([`CellStatus::Resumed`]); a missing, quarantined or stale record is
//! recomputed through the shared [`MeasurementCache`] and durably stored
//! before the sweep moves on. Intent and progress go through the store's
//! write-ahead journal: a `plan` line for every cell before any work
//! starts, then `done`/`fail` per cell — so a sweep killed mid-write
//! resumes the *whole* grid (including cells it never reached) and
//! re-runs only those whose records do not verify. The engine being
//! deterministic, the resumed store converges to the same bytes an
//! uninterrupted run produces.
//!
//! Failure is graceful by construction: store I/O goes through the retry
//! policy, profile errors are permanent and typed, and a failed cell is
//! recorded with its [`FailReason`] while the sweep continues — one sick
//! cell costs one row in the results, never the run.

use std::io;

use serde::Serialize;
use stash_ddl::engine::EngineArena;
use stash_store::journal::JournalEntry;
use stash_store::prelude::{with_retry, FailReason, Fetch, ResultStore, RetryPolicy};
use stash_store::{fnv128, key_hex};

use crate::cache::MeasurementCache;
use crate::profiler::ProfileJob;
use crate::report::StallReport;

/// Schema tag stamped into every cell record payload and journal plan.
pub const CELL_SCHEMA: &str = "stash-cell-v1";

/// How a cell's result came to be.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub enum CellStatus {
    /// Simulated in this run (and stored, when a store was given).
    Computed,
    /// Served bit-identically from a verified store record.
    Resumed,
    /// Permanently failed; the sweep continued without it.
    Failed(FailReason),
}

impl CellStatus {
    /// The CSV `status` column value.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            CellStatus::Computed => "computed",
            CellStatus::Resumed => "resumed",
            CellStatus::Failed(reason) => reason.code(),
        }
    }
}

/// One sweep cell's outcome.
#[derive(Debug, Clone, Serialize)]
pub struct CellOutcome {
    /// The cell's content-address in the store (32-hex form).
    pub key: String,
    /// Cluster display name.
    pub cluster: String,
    /// Model name.
    pub model: String,
    /// Per-GPU batch size.
    pub per_gpu_batch: u64,
    /// The characterization, when one was produced.
    pub report: Option<StallReport>,
    /// How it was produced (or why not).
    pub status: CellStatus,
}

/// The whole sweep's outcome, in input cell order.
#[derive(Debug, Clone, Default, Serialize)]
pub struct SweepOutcome {
    /// Per-cell outcomes, in input order.
    pub cells: Vec<CellOutcome>,
}

impl SweepOutcome {
    /// Cells that failed permanently.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.status, CellStatus::Failed(_)))
            .count()
    }

    /// Cells served from the store without simulation.
    #[must_use]
    pub fn resumed(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.status == CellStatus::Resumed)
            .count()
    }

    /// Cells simulated in this run.
    #[must_use]
    pub fn computed(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| c.status == CellStatus::Computed)
            .count()
    }

    /// The successful reports, in input order.
    pub fn reports(&self) -> impl Iterator<Item = &StallReport> {
        self.cells.iter().filter_map(|c| c.report.as_ref())
    }

    /// The canonical results CSV. Deterministic: byte-identical for
    /// byte-identical outcomes, which is what the differential and
    /// crash-resume gates compare. The `status` column distinguishes
    /// `computed` from `resumed` rows and carries the typed failure code
    /// for failed cells.
    #[must_use]
    pub fn results_csv(&self) -> String {
        let mut out = String::from(
            "cluster,model,per_gpu_batch,world,t1_ns,t2_ns,t3_ns,t4_ns,t5_ns,\
             interconnect_stall_pct,network_stall_pct,cpu_stall_pct,disk_stall_pct,status\n",
        );
        let ns = |t: Option<stash_simkit::time::SimDuration>| {
            t.map_or_else(String::new, |t| t.as_nanos().to_string())
        };
        let pc = |p: Option<f64>| p.map_or_else(String::new, |p| format!("{p:.4}"));
        for cell in &self.cells {
            let (times, pcts, world) = match &cell.report {
                Some(r) => (
                    [
                        ns(r.times.t1),
                        ns(r.times.t2),
                        ns(r.times.t3),
                        ns(r.times.t4),
                        ns(r.times.t5),
                    ],
                    [
                        pc(r.interconnect_stall_pct()),
                        pc(r.network_stall_pct()),
                        pc(r.cpu_stall_pct()),
                        pc(r.disk_stall_pct()),
                    ],
                    r.world.to_string(),
                ),
                None => (
                    std::array::from_fn(|_| String::new()),
                    std::array::from_fn(|_| String::new()),
                    String::new(),
                ),
            };
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
                cell.cluster,
                cell.model,
                cell.per_gpu_batch,
                world,
                times[0],
                times[1],
                times[2],
                times[3],
                times[4],
                pcts[0],
                pcts[1],
                pcts[2],
                pcts[3],
                cell.status.code(),
            ));
        }
        out
    }
}

/// The cell's self-describing journal/plan descriptor: everything the
/// CLI needs to reconstruct the job on resume.
#[must_use]
pub fn cell_descriptor(job: &ProfileJob) -> serde_json::Value {
    let mut m = serde_json::Map::new();
    m.insert("schema".to_string(), CELL_SCHEMA.to_json_value());
    m.insert(
        "cluster".to_string(),
        job.cluster.display_name().to_json_value(),
    );
    m.insert("model".to_string(), job.stash.model().name.to_json_value());
    m.insert(
        "per_gpu_batch".to_string(),
        job.stash.per_gpu_batch().to_json_value(),
    );
    m.insert(
        "sampled_iterations".to_string(),
        job.stash.sampled_iterations().to_json_value(),
    );
    m.insert(
        "epoch_samples".to_string(),
        match job.stash.epoch_samples_override() {
            Some(n) => n.to_json_value(),
            None => serde_json::Value::Null,
        },
    );
    m.insert(
        "dataset".to_string(),
        job.stash.dataset().name.to_json_value(),
    );
    serde_json::Value::Object(m)
}

/// The cell's content address: FNV-128 over the canonical JSON of the
/// *full* profiler configuration plus the cluster display name — the
/// same derivation family as `cache::config_key`, so equal cells share a
/// key and (the engine being deterministic) bit-identical records.
#[must_use]
pub fn cell_key(job: &ProfileJob) -> u128 {
    let mut m = serde_json::Map::new();
    m.insert("schema".to_string(), CELL_SCHEMA.to_json_value());
    m.insert(
        "cluster".to_string(),
        job.cluster.display_name().to_json_value(),
    );
    m.insert(
        "stash".to_string(),
        serde_json::to_value(&job.stash).unwrap_or(serde_json::Value::Null),
    );
    let Ok(canonical) = serde_json::to_string(&serde_json::Value::Object(m)) else {
        unreachable!("value serialization is infallible")
    };
    fnv128(canonical.as_bytes())
}

/// Encodes a cell's record payload: canonical compact JSON wrapping the
/// descriptor and the report.
#[must_use]
pub fn encode_cell_record(job: &ProfileJob, report: &StallReport) -> Vec<u8> {
    let mut m = serde_json::Map::new();
    m.insert("schema".to_string(), CELL_SCHEMA.to_json_value());
    m.insert("cell".to_string(), cell_descriptor(job));
    m.insert(
        "report".to_string(),
        serde_json::to_value(report).unwrap_or(serde_json::Value::Null),
    );
    serde_json::to_string(&serde_json::Value::Object(m))
        .unwrap_or_default()
        .into_bytes()
}

/// Decodes a record payload back to its report, validating the schema
/// tag.
///
/// # Errors
///
/// A description of what made the payload unusable (wrong schema,
/// malformed JSON, missing fields).
pub fn decode_cell_record(payload: &[u8]) -> Result<StallReport, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("record not UTF-8: {e}"))?;
    let v: serde_json::Value =
        serde_json::from_str(text).map_err(|e| format!("record not JSON: {e}"))?;
    match v.get("schema").and_then(serde_json::Value::as_str) {
        Some(CELL_SCHEMA) => {}
        Some(other) => return Err(format!("unknown record schema '{other}'")),
        None => return Err("record missing schema tag".to_string()),
    }
    let report = v.get("report").ok_or("record missing report")?;
    StallReport::from_json_value(report)
}

/// Journal writes are an optimization hint, not the source of truth
/// (resume re-verifies records), so after retries are exhausted the
/// sweep proceeds without the entry rather than failing the cell.
fn journal_best_effort(store: &ResultStore, policy: &RetryPolicy, entry: &JournalEntry) {
    let journal = store.journal();
    let _ = with_retry(policy, || journal.append(store.io(), entry));
}

/// Runs a sweep over `jobs`, optionally backed by a durable store.
///
/// Cells run serially in input order (deterministic journal order; the
/// cache and arena are shared across cells, so repeated reference-
/// instance measurements are deduplicated exactly as in
/// [`par_profile_many`]). With a store, each cell is consult-first and
/// its fresh result is framed and atomically written before the next
/// cell starts; without one, this is a plain storeless sweep producing
/// the identical reports and CSV.
///
/// Never aborts on a failed cell: failures land in the outcome with
/// typed reasons, and the caller maps `outcome.failed() > 0` to its
/// distinct exit class.
///
/// [`par_profile_many`]: crate::profiler::par_profile_many
#[must_use]
pub fn run_sweep(
    jobs: &[ProfileJob],
    store: Option<&ResultStore>,
    policy: &RetryPolicy,
    cache: &MeasurementCache,
) -> SweepOutcome {
    let mut arena = EngineArena::new();
    let mut outcome = SweepOutcome::default();

    // Write-ahead intent: journal a plan line for *every* cell before any
    // work starts, so a sweep killed in cell 2 of 10 still resumes all
    // ten — including the cells it never reached.
    if let Some(store) = store {
        for job in jobs {
            let hex = key_hex(cell_key(job));
            let descriptor = serde_json::to_string(&cell_descriptor(job)).unwrap_or_default();
            journal_best_effort(store, policy, &JournalEntry::plan(&hex, &descriptor));
        }
    }

    for job in jobs {
        let key = cell_key(job);
        let hex = key_hex(key);
        let mut cell = CellOutcome {
            key: hex.clone(),
            cluster: job.cluster.display_name(),
            model: job.stash.model().name.clone(),
            per_gpu_batch: job.stash.per_gpu_batch(),
            report: None,
            status: CellStatus::Computed,
        };

        if let Some(store) = store {
            // Consult-first: a verified record is the result.
            let fetched = with_retry(policy, || store.get(key).map_err(io::Error::other));
            match fetched {
                // A verified hit whose payload decodes is the result; a
                // valid frame with a stale/foreign payload is recomputed
                // and overwritten below.
                Ok(Fetch::Hit(payload)) => {
                    if let Ok(report) = decode_cell_record(&payload) {
                        cell.report = Some(report);
                        cell.status = CellStatus::Resumed;
                        journal_best_effort(store, policy, &JournalEntry::done(&hex));
                        outcome.cells.push(cell);
                        continue;
                    }
                }
                // Miss or quarantined-corrupt: recompute below.
                Ok(Fetch::Miss | Fetch::Quarantined { .. }) => {}
                Err(reason) => {
                    journal_best_effort(
                        store,
                        policy,
                        &JournalEntry::fail(&hex, &reason.to_json()),
                    );
                    cell.status = CellStatus::Failed(reason);
                    outcome.cells.push(cell);
                    continue;
                }
            }
        }

        // Simulate. Profile errors are permanent: typed, never retried.
        let report = match job
            .stash
            .profile_serial_in(&job.cluster, Some(cache), &mut arena)
        {
            Ok(r) => r,
            Err(e) => {
                let reason = FailReason::Profile {
                    error: e.to_string(),
                };
                if let Some(store) = store {
                    journal_best_effort(
                        store,
                        policy,
                        &JournalEntry::fail(&hex, &reason.to_json()),
                    );
                }
                cell.status = CellStatus::Failed(reason);
                outcome.cells.push(cell);
                continue;
            }
        };

        if let Some(store) = store {
            let payload = encode_cell_record(job, &report);
            match with_retry(policy, || {
                store.put(key, &payload).map_err(io::Error::other)
            }) {
                Ok(()) => {
                    journal_best_effort(store, policy, &JournalEntry::done(&hex));
                }
                Err(reason) => {
                    // Computed but not durable: report the result, flag
                    // the cell — a resumed run must re-run it.
                    journal_best_effort(
                        store,
                        policy,
                        &JournalEntry::fail(&hex, &reason.to_json()),
                    );
                    cell.report = Some(report);
                    cell.status = CellStatus::Failed(reason);
                    outcome.cells.push(cell);
                    continue;
                }
            }
        }

        cell.report = Some(report);
        outcome.cells.push(cell);
    }
    outcome
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::profiler::Stash;
    use stash_dnn::zoo;
    use stash_hwtopo::cluster::ClusterSpec;
    use stash_hwtopo::instance::{p3_2xlarge, p3_8xlarge};
    use stash_store::prelude::{FaultFs, IoFaultPlan, StdFs};
    use std::path::PathBuf;

    fn jobs() -> Vec<ProfileJob> {
        let quick = |m| {
            Stash::new(m)
                .with_sampled_iterations(3)
                .with_epoch_samples(20_000)
        };
        vec![
            ProfileJob {
                stash: quick(zoo::alexnet()),
                cluster: ClusterSpec::single(p3_2xlarge()),
            },
            ProfileJob {
                stash: quick(zoo::resnet18()),
                cluster: ClusterSpec::single(p3_8xlarge()),
            },
            ProfileJob {
                stash: quick(zoo::alexnet()),
                cluster: ClusterSpec::homogeneous(p3_8xlarge(), 2),
            },
        ]
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stash_sweep_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cell_keys_are_stable_and_distinct() {
        let jobs = jobs();
        assert_eq!(cell_key(&jobs[0]), cell_key(&jobs[0]));
        assert_ne!(cell_key(&jobs[0]), cell_key(&jobs[1]));
        assert_ne!(cell_key(&jobs[1]), cell_key(&jobs[2]));
    }

    #[test]
    fn record_payload_round_trips() {
        let jobs = jobs();
        let report = jobs[0].stash.profile_serial(&jobs[0].cluster).unwrap();
        let payload = encode_cell_record(&jobs[0], &report);
        assert_eq!(decode_cell_record(&payload).unwrap(), report);
        assert!(decode_cell_record(b"not json").is_err());
        assert!(decode_cell_record(b"{\"schema\":\"other\"}").is_err());
        assert!(decode_cell_record(b"{}").is_err());
    }

    #[test]
    fn storeless_and_stored_sweeps_are_bit_identical() {
        let jobs = jobs();
        let policy = RetryPolicy::default();
        let storeless = run_sweep(&jobs, None, &policy, &MeasurementCache::new());
        assert_eq!(storeless.failed(), 0);
        assert_eq!(storeless.computed(), jobs.len());

        let root = tmp("differential");
        let store = ResultStore::open(&root, Box::new(StdFs::new())).unwrap();
        let stored = run_sweep(&jobs, Some(&store), &policy, &MeasurementCache::new());
        assert_eq!(stored.failed(), 0);
        assert_eq!(storeless.results_csv(), stored.results_csv());

        // Second run over the same store: everything resumes, reports
        // and CSV rows (modulo the status column) stay bit-identical.
        let resumed = run_sweep(&jobs, Some(&store), &policy, &MeasurementCache::new());
        assert_eq!(resumed.resumed(), jobs.len());
        assert_eq!(resumed.computed(), 0);
        let strip_status = |csv: &str| {
            csv.lines()
                .map(|l| {
                    l.rsplit_once(',')
                        .map_or(l.to_string(), |(a, _)| a.to_string())
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(
            strip_status(&stored.results_csv()),
            strip_status(&resumed.results_csv())
        );
        let reports: Vec<_> = stored.reports().cloned().collect();
        let reports_resumed: Vec<_> = resumed.reports().cloned().collect();
        assert_eq!(reports, reports_resumed);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn seeded_faults_recover_to_identical_bytes() {
        let jobs = jobs();
        let policy = RetryPolicy {
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            ..RetryPolicy::default()
        };
        let clean_root = tmp("faults_clean");
        let clean = ResultStore::open(&clean_root, Box::new(StdFs::new())).unwrap();
        let clean_out = run_sweep(&jobs, Some(&clean), &policy, &MeasurementCache::new());
        assert_eq!(clean_out.failed(), 0);

        let faulty_root = tmp("faults_faulty");
        let faulty = ResultStore::open(
            &faulty_root,
            Box::new(FaultFs::new(IoFaultPlan::seeded(11))),
        )
        .unwrap();
        let faulty_out = run_sweep(&jobs, Some(&faulty), &policy, &MeasurementCache::new());
        assert_eq!(faulty_out.failed(), 0, "seeded faults must be recoverable");
        assert_eq!(clean_out.results_csv(), faulty_out.results_csv());

        // The record *files* converge byte-identically.
        for key in clean.keys().unwrap() {
            let a = std::fs::read(clean.record_path(key)).unwrap();
            let b = std::fs::read(faulty.record_path(key)).unwrap();
            assert_eq!(a, b, "record {} diverged", key_hex(key));
        }
        assert_eq!(clean.keys().unwrap(), faulty.keys().unwrap());
        let _ = std::fs::remove_dir_all(&clean_root);
        let _ = std::fs::remove_dir_all(&faulty_root);
    }

    #[test]
    fn profile_failures_degrade_gracefully() {
        use stash_hwtopo::instance::p3_16xlarge;
        let quick = |m| {
            Stash::new(m)
                .with_sampled_iterations(3)
                .with_epoch_samples(20_000)
        };
        let jobs = vec![
            ProfileJob {
                stash: quick(zoo::alexnet()),
                cluster: ClusterSpec::single(p3_2xlarge()),
            },
            // 3x p3.16xlarge = 24 GPUs: no single-instance reference
            // exists, so this cell fails permanently.
            ProfileJob {
                stash: quick(zoo::alexnet()),
                cluster: ClusterSpec::homogeneous(p3_16xlarge(), 3),
            },
        ];
        let root = tmp("degrade");
        let store = ResultStore::open(&root, Box::new(StdFs::new())).unwrap();
        let out = run_sweep(
            &jobs,
            Some(&store),
            &RetryPolicy::default(),
            &MeasurementCache::new(),
        );
        assert_eq!(out.failed(), 1);
        assert_eq!(out.computed(), 1);
        assert!(matches!(
            out.cells[1].status,
            CellStatus::Failed(FailReason::Profile { .. })
        ));
        let csv = out.results_csv();
        assert!(csv.contains("profile-error"));
        // The journal carries the typed reason.
        let replay = store.journal().replay(store.io()).unwrap();
        assert!(replay
            .entries
            .iter()
            .any(|e| e.op == "fail" && e.detail.contains("Profile")));
        let _ = std::fs::remove_dir_all(&root);
    }
}
