//! Monetary cost analysis (paper §V, Figs. 6/10/12/14).
//!
//! Cost is simply `epoch time x cluster price`, but which epoch time to
//! bill is a methodological choice: the paper bills the measured real
//! training epoch. [`epoch_cost`] therefore uses the report's
//! [`StallReport::training_epoch_time`].

use serde::Serialize;
use stash_hwtopo::cluster::ClusterSpec;
use stash_simkit::time::SimDuration;

use crate::report::StallReport;

/// Time and money for one epoch on one cluster configuration.
#[derive(Debug, Clone, Serialize)]
pub struct CostReport {
    /// Cluster display name.
    pub cluster: String,
    /// Model name.
    pub model: String,
    /// Per-GPU batch size.
    pub per_gpu_batch: u64,
    /// Wall-clock time of one epoch.
    pub epoch_time: SimDuration,
    /// Cluster price, USD/hour.
    pub price_per_hour: f64,
    /// Cost of the epoch, USD.
    pub epoch_cost: f64,
}

/// Bills `report`'s training epoch on `cluster`.
///
/// # Panics
///
/// Panics if the report carries no usable epoch time (no steps ran).
#[must_use]
pub fn epoch_cost(report: &StallReport, cluster: &ClusterSpec) -> CostReport {
    let Some(epoch_time) = report.training_epoch_time() else {
        panic!("report carries no epoch time")
    };
    CostReport {
        cluster: report.cluster.clone(),
        model: report.model.clone(),
        per_gpu_batch: report.per_gpu_batch,
        epoch_time,
        price_per_hour: cluster.price_per_hour(),
        epoch_cost: cluster.price_per_hour() * epoch_time.as_secs_f64() / 3600.0,
    }
}

/// Cost of a full training run of `epochs` epochs, assuming (as the paper
/// does) that stall characteristics scale linearly with epoch count.
#[must_use]
pub fn training_cost(report: &CostReport, epochs: u64) -> f64 {
    report.epoch_cost * epochs as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::{StallReport, StepTimes};
    use stash_hwtopo::instance::p3_16xlarge;

    fn report_with_t3(secs: u64) -> StallReport {
        StallReport {
            cluster: "p3.16xlarge".into(),
            reference: "p3.16xlarge".into(),
            model: "ResNet18".into(),
            per_gpu_batch: 32,
            world: 8,
            times: StepTimes {
                t1: None,
                t2: None,
                t3: Some(SimDuration::from_secs(secs)),
                t4: None,
                t5: None,
            },
        }
    }

    #[test]
    fn epoch_cost_is_price_times_hours() {
        let cluster = ClusterSpec::single(p3_16xlarge());
        let c = epoch_cost(&report_with_t3(3600), &cluster);
        assert!((c.epoch_cost - 24.48).abs() < 1e-9);
        assert_eq!(c.price_per_hour, 24.48);
    }

    #[test]
    fn training_cost_scales_with_epochs() {
        let cluster = ClusterSpec::single(p3_16xlarge());
        let c = epoch_cost(&report_with_t3(1800), &cluster);
        assert!((training_cost(&c, 10) - 10.0 * 12.24).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "no epoch time")]
    fn empty_report_panics() {
        let mut r = report_with_t3(10);
        r.times.t3 = None;
        let _ = epoch_cost(&r, &ClusterSpec::single(p3_16xlarge()));
    }
}
