//! The paper's §VI closed-form communication model.
//!
//! §VI-A2 explains the VGG/ResNet asymmetry with
//! `T = (tau + G / (L · B)) · L`: per-synchronisation latency `tau` times
//! the number of layers `L`, plus total gradient volume `G` over bandwidth
//! `B`. On NVLink, `B` is huge, so `T ≈ tau · L` (deep models stall); on
//! the network, `B` is tiny, so `T ≈ G / B` (fat models stall). This
//! module extracts `(tau, B)` from a topology and evaluates the closed
//! form, letting the benchmarks cross-check the simulated engine against
//! the paper's own algebra.

use serde::Serialize;
use stash_collectives::bucket::{Bucketing, CommPlan};
use stash_collectives::schedule::{ring_duration_estimate, Algorithm};
use stash_dnn::model::Model;
use stash_flowsim::net::FlowNet;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::topology::Topology;
use stash_simkit::time::SimDuration;

/// The fitted parameters of `T = (tau + G/(L·B)) · L` for one cluster.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct LinkParameters {
    /// Per-synchronisation latency `tau` (seconds).
    pub tau_seconds: f64,
    /// Effective all-reduce bandwidth `B` (bytes/second).
    pub bandwidth_bps: f64,
}

/// Extracts `(tau, B)` for `cluster` by probing the ring cost at zero and
/// at a reference payload.
#[must_use]
pub fn link_parameters(cluster: &ClusterSpec) -> LinkParameters {
    let mut net = FlowNet::new();
    let topo = Topology::build(cluster, &mut net);
    let tau = ring_duration_estimate(&topo, &net, 0.0).as_secs_f64();
    let probe_bytes = 64.0 * 1024.0 * 1024.0;
    let loaded = ring_duration_estimate(&topo, &net, probe_bytes).as_secs_f64();
    let per_byte = ((loaded - tau) / probe_bytes).max(1e-18);
    LinkParameters {
        tau_seconds: tau,
        bandwidth_bps: 1.0 / per_byte,
    }
}

/// The closed-form §VI communication time of one iteration.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CommEstimate {
    /// `tau · L` — the latency-bound component.
    pub latency_component: SimDuration,
    /// `G / B` — the bandwidth-bound component.
    pub bandwidth_component: SimDuration,
    /// Their sum.
    pub total: SimDuration,
    /// Number of synchronisations `L`.
    pub sync_points: usize,
    /// Gradient volume `G`, bytes.
    pub gradient_bytes: f64,
}

impl CommEstimate {
    /// `true` when the latency term dominates (the "deep ResNet on
    /// NVLink" regime).
    #[must_use]
    pub fn is_latency_bound(&self) -> bool {
        self.latency_component > self.bandwidth_component
    }
}

/// Evaluates `T = (tau + G/(L·B)) · L` for `model` on `cluster`.
#[must_use]
pub fn comm_estimate(cluster: &ClusterSpec, model: &Model, bucketing: Bucketing) -> CommEstimate {
    let params = link_parameters(cluster);
    let plan = CommPlan::new(model, bucketing);
    let l = plan.bucket_count();
    let g = plan.total_bytes();
    let latency = params.tau_seconds * l as f64;
    let bandwidth = g / params.bandwidth_bps;
    CommEstimate {
        latency_component: SimDuration::from_secs_f64(latency),
        bandwidth_component: SimDuration::from_secs_f64(bandwidth),
        total: SimDuration::from_secs_f64(latency + bandwidth),
        sync_points: l,
        gradient_bytes: g,
    }
}

/// Per-bucket simulated communication time summed across the plan —
/// the "exact" counterpart the closed form approximates.
#[must_use]
pub fn comm_simulated(cluster: &ClusterSpec, model: &Model, bucketing: Bucketing) -> SimDuration {
    let mut net = FlowNet::new();
    let topo = Topology::build(cluster, &mut net);
    let _ = Algorithm::Ring;
    CommPlan::new(model, bucketing)
        .buckets
        .iter()
        .map(|b| ring_duration_estimate(&topo, &net, b.bytes))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_dnn::{synth, zoo};
    use stash_hwtopo::instance::{p3_16xlarge, p3_8xlarge};

    #[test]
    fn nvlink_is_latency_bound_for_resnet_but_not_vgg() {
        // The crux of §VI: ResNet's many layers make tau·L dominate on
        // NVLink; VGG's bulk gradients make G/B dominate.
        let cluster = ClusterSpec::single(p3_16xlarge());
        let resnet = comm_estimate(&cluster, &zoo::resnet18(), Bucketing::PerLayer);
        assert!(resnet.is_latency_bound(), "{resnet:?}");
        let vgg = comm_estimate(&cluster, &zoo::vgg11(), Bucketing::PerLayer);
        assert!(!vgg.is_latency_bound(), "{vgg:?}");
    }

    #[test]
    fn network_is_bandwidth_bound_for_vgg() {
        let cluster = ClusterSpec::homogeneous(p3_8xlarge(), 2);
        let vgg = comm_estimate(&cluster, &zoo::vgg11(), Bucketing::PerLayer);
        assert!(!vgg.is_latency_bound());
        assert!(vgg.bandwidth_component > vgg.latency_component * 10);
    }

    #[test]
    fn network_bandwidth_is_far_below_nvlink() {
        let nv = link_parameters(&ClusterSpec::single(p3_16xlarge()));
        let nw = link_parameters(&ClusterSpec::homogeneous(p3_8xlarge(), 2));
        assert!(nv.bandwidth_bps > 10.0 * nw.bandwidth_bps);
    }

    #[test]
    fn closed_form_tracks_simulation_within_2x() {
        let cluster = ClusterSpec::single(p3_16xlarge());
        for model in [zoo::resnet18(), zoo::vgg11(), synth::resnet(50)] {
            let est = comm_estimate(&cluster, &model, Bucketing::PerLayer)
                .total
                .as_secs_f64();
            let sim = comm_simulated(&cluster, &model, Bucketing::PerLayer).as_secs_f64();
            let ratio = est / sim;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{}: est={est} sim={sim}",
                model.name
            );
        }
    }

    #[test]
    fn deeper_models_estimate_more_latency() {
        let cluster = ClusterSpec::single(p3_16xlarge());
        let shallow = comm_estimate(&cluster, &synth::resnet(18), Bucketing::PerLayer);
        let deep = comm_estimate(&cluster, &synth::resnet(152), Bucketing::PerLayer);
        assert!(deep.latency_component > shallow.latency_component * 3);
    }
}
