//! Measurement memoization.
//!
//! The paper's pitch is pay-once characterization: identical measurements
//! should never be simulated twice. [`MeasurementCache`] memoizes
//! [`run_epoch`] results keyed by a canonical hash of the full
//! [`TrainConfig`] — model, batch, dataset, cluster, active GPUs, data
//! mode, collective algorithm, precision and sampled iterations all feed
//! the key, so two configs collide only when the simulation they describe
//! is identical (and therefore, the engine being deterministic, so is the
//! result).
//!
//! The cache is shared: `&MeasurementCache` is [`Sync`], so the parallel
//! profiler's worker threads and [`par_profile_many`] sweep jobs all hit
//! one map. Within a single profile this deduplicates nothing (the five
//! steps differ), but across a sweep it collapses the repeated
//! reference-instance measurements — e.g. steps 1/2 of every multi-node
//! p3 cluster re-measure the same `p3.16xlarge` epochs.
//!
//! [`run_epoch`]: stash_ddl::engine::run_epoch
//! [`par_profile_many`]: crate::profiler::par_profile_many

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::Serialize;
use stash_ddl::config::TrainConfig;
use stash_ddl::engine::{run_epoch, run_epoch_in, EngineArena};
use stash_simkit::time::SimDuration;

use crate::error::ProfileError;

/// Snapshot of cache effectiveness counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to run the engine.
    pub misses: u64,
}

impl CacheStats {
    /// Hit fraction in `[0, 1]`; 0 when no lookups happened.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe memo of epoch measurements keyed by training config.
///
/// # Examples
///
/// ```
/// use stash_core::cache::MeasurementCache;
/// use stash_core::profiler::Stash;
/// use stash_dnn::zoo;
/// use stash_hwtopo::prelude::*;
///
/// let cache = MeasurementCache::new();
/// let stash = Stash::new(zoo::resnet18()).with_sampled_iterations(3);
/// let cluster = ClusterSpec::single(p3_16xlarge());
/// let cold = stash.profile_cached(&cluster, &cache)?;
/// let warm = stash.profile_cached(&cluster, &cache)?;
/// assert_eq!(cold, warm); // bit-identical
/// assert!(cache.stats().hits >= 4); // second run fully served from cache
/// # Ok::<(), stash_core::error::ProfileError>(())
/// ```
#[derive(Debug, Default)]
pub struct MeasurementCache {
    entries: Mutex<HashMap<u128, SimDuration>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl MeasurementCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> MeasurementCache {
        MeasurementCache::default()
    }

    /// Acquires the entry map, preserving the poisoning panic the public
    /// accessors document (a poisoned cache means a measurement thread
    /// died mid-insert; results can no longer be trusted).
    fn locked(&self) -> std::sync::MutexGuard<'_, HashMap<u128, SimDuration>> {
        match self.entries.lock() {
            Ok(guard) => guard,
            Err(_) => panic!("cache poisoned"),
        }
    }

    /// Number of distinct measurements stored.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.locked().len()
    }

    /// `true` when nothing is cached.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Resets the hit/miss counters (entries are kept).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// Drops every stored measurement (counters are kept). Each dropped
    /// entry counts as an eviction in the telemetry registry.
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    pub fn clear(&self) {
        let mut entries = self.locked();
        let evicted = entries.len() as u64;
        entries.clear();
        stash_telemetry::metrics::CACHE_EVICTIONS.add(evicted);
    }

    /// The epoch time for `cfg`, simulated on first request and memoized
    /// after. The engine is deterministic, so a cached result is
    /// bit-identical to a fresh run.
    ///
    /// The engine runs outside the lock: concurrent misses on the same key
    /// may race to simulate, but both compute the same value, so the
    /// duplicate insert is harmless.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (which are never cached).
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    pub fn epoch_time(&self, cfg: &TrainConfig) -> Result<SimDuration, ProfileError> {
        let key = config_key(cfg);
        if let Some(&t) = self.locked().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            stash_telemetry::metrics::CACHE_HITS.inc();
            return Ok(t);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        stash_telemetry::metrics::CACHE_MISSES.inc();
        let t = run_epoch(cfg)?.epoch_time;
        self.locked().insert(key, t);
        Ok(t)
    }

    /// [`Self::epoch_time`] measuring misses inside a caller-owned
    /// [`EngineArena`], so a loop over many configurations reuses one
    /// simulator allocation instead of rebuilding per miss. Results are
    /// bit-identical to [`Self::epoch_time`].
    ///
    /// # Errors
    ///
    /// Propagates engine errors (which are never cached).
    ///
    /// # Panics
    ///
    /// Panics if the cache mutex was poisoned.
    pub fn epoch_time_in(
        &self,
        cfg: &TrainConfig,
        arena: &mut EngineArena,
    ) -> Result<SimDuration, ProfileError> {
        let key = config_key(cfg);
        if let Some(&t) = self.locked().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            stash_telemetry::metrics::CACHE_HITS.inc();
            return Ok(t);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        stash_telemetry::metrics::CACHE_MISSES.inc();
        let t = run_epoch_in(cfg, arena)?.epoch_time;
        self.locked().insert(key, t);
        Ok(t)
    }
}

/// Canonical cache key: FNV-1a (128-bit) over the config's canonical JSON.
///
/// Serialization is field-ordered and deterministic, so equal configs hash
/// equal; 128 bits make accidental collisions between distinct configs
/// negligible.
#[must_use]
pub fn config_key(cfg: &TrainConfig) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;
    let Ok(canonical) = serde_json::to_string(&cfg.to_json_value()) else {
        unreachable!("TrainConfig serialization is infallible")
    };
    let mut h = OFFSET;
    for b in canonical.bytes() {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use stash_ddl::config::ActiveGpus;
    use stash_dnn::zoo;
    use stash_hwtopo::cluster::ClusterSpec;
    use stash_hwtopo::instance::p3_8xlarge;

    fn cfg() -> TrainConfig {
        let mut c = TrainConfig::synthetic(
            ClusterSpec::single(p3_8xlarge()),
            zoo::resnet18(),
            32,
            2_000,
        );
        c.epoch_mode = stash_ddl::config::EpochMode::Sampled { iterations: 3 };
        c
    }

    #[test]
    fn identical_configs_share_a_key() {
        assert_eq!(config_key(&cfg()), config_key(&cfg()));
    }

    #[test]
    fn differing_fields_change_the_key() {
        let base = cfg();
        let mut batch = cfg();
        batch.per_gpu_batch = 64;
        let mut active = cfg();
        active.active = ActiveGpus::Single;
        assert_ne!(config_key(&base), config_key(&batch));
        assert_ne!(config_key(&base), config_key(&active));
    }

    #[test]
    fn second_lookup_hits_and_matches() {
        let cache = MeasurementCache::new();
        let first = cache.epoch_time(&cfg()).unwrap();
        let second = cache.epoch_time(&cfg()).unwrap();
        assert_eq!(first, second);
        assert_eq!(cache.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(cache.len(), 1);
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clear_empties_entries_but_keeps_counters() {
        let cache = MeasurementCache::new();
        cache.epoch_time(&cfg()).unwrap();
        assert_eq!(cache.len(), 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses, 1);
    }

    #[test]
    fn cached_value_matches_direct_engine_run() {
        let cache = MeasurementCache::new();
        let via_cache = cache.epoch_time(&cfg()).unwrap();
        let direct = run_epoch(&cfg()).unwrap().epoch_time;
        assert_eq!(via_cache, direct);
    }
}
