//! Stall reports: the profiler's output.
//!
//! A [`StallReport`] holds the five step measurements of the Stash
//! methodology (paper Fig. 2) and derives the four stalls:
//!
//! | Stall          | Formula                  | Percentage basis |
//! |----------------|--------------------------|------------------|
//! | Interconnect   | `T2 − T1`                | `/ T1`           |
//! | Network        | `T5 − T2`                | `/ T2`           |
//! | CPU (prep)     | `T4 − T2` (vs `T5` for multi-node clusters) | `/ T4` |
//! | Disk (fetch)   | `T3 − T4`                | `/ T3`           |

use std::fmt;

use serde::Serialize;
use stash_simkit::time::SimDuration;

/// The raw epoch times of the five profiling steps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct StepTimes {
    /// Step 1: synthetic, single GPU, `n/k` samples.
    pub t1: Option<SimDuration>,
    /// Step 2: synthetic, all `k` GPUs of the reference instance.
    pub t2: Option<SimDuration>,
    /// Step 3: real data, caches cleared.
    pub t3: Option<SimDuration>,
    /// Step 4: real data, fully cached.
    pub t4: Option<SimDuration>,
    /// Step 5: synthetic, multiple instances, same `k` total GPUs.
    pub t5: Option<SimDuration>,
}

/// A complete stall characterization of one cluster configuration.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct StallReport {
    /// Cluster under test (e.g. `"p3.8xlarge*2"`).
    pub cluster: String,
    /// Single-instance reference used for steps 1/2 (equal to `cluster`
    /// for single-instance configurations).
    pub reference: String,
    /// Model profiled.
    pub model: String,
    /// Per-GPU batch size.
    pub per_gpu_batch: u64,
    /// Total participating GPUs.
    pub world: usize,
    /// The raw step measurements.
    pub times: StepTimes,
}

fn stall(later: Option<SimDuration>, earlier: Option<SimDuration>) -> Option<SimDuration> {
    match (later, earlier) {
        (Some(a), Some(b)) => Some(a.saturating_sub(b)),
        _ => None,
    }
}

fn pct(num: Option<SimDuration>, den: Option<SimDuration>) -> Option<f64> {
    match (num, den) {
        (Some(n), Some(d)) if !d.is_zero() => Some(n.ratio(d) * 100.0),
        _ => None,
    }
}

impl StallReport {
    /// Interconnect stall time (`T2 − T1`).
    #[must_use]
    pub fn interconnect_stall(&self) -> Option<SimDuration> {
        stall(self.times.t2, self.times.t1)
    }

    /// Interconnect stall as a percentage of single-GPU time (the paper's
    /// `I/C stall%`; can exceed 100%).
    #[must_use]
    pub fn interconnect_stall_pct(&self) -> Option<f64> {
        pct(self.interconnect_stall(), self.times.t1)
    }

    /// Network stall time (`T5 − T2`).
    #[must_use]
    pub fn network_stall(&self) -> Option<SimDuration> {
        stall(self.times.t5, self.times.t2)
    }

    /// Network stall as a percentage of single-instance time (the paper's
    /// `N/W stall%`; up to 500% in their measurements).
    #[must_use]
    pub fn network_stall_pct(&self) -> Option<f64> {
        pct(self.network_stall(), self.times.t2)
    }

    /// The synthetic baseline for the data-pipeline stalls: the same
    /// cluster the real-data steps ran on — `T5` for multi-node
    /// configurations, `T2` otherwise. Comparing `T4` against `T2` on a
    /// networked cluster would misattribute network stall to the CPU.
    fn synthetic_baseline(&self) -> Option<SimDuration> {
        self.times.t5.or(self.times.t2)
    }

    /// CPU ("prep") stall time (`T4 −` synthetic baseline).
    #[must_use]
    pub fn cpu_stall(&self) -> Option<SimDuration> {
        stall(self.times.t4, self.synthetic_baseline())
    }

    /// CPU stall as a percentage of warm-cache training time.
    #[must_use]
    pub fn cpu_stall_pct(&self) -> Option<f64> {
        pct(self.cpu_stall(), self.times.t4)
    }

    /// Disk ("fetch") stall time (`T3 − T4`).
    #[must_use]
    pub fn disk_stall(&self) -> Option<SimDuration> {
        stall(self.times.t3, self.times.t4)
    }

    /// Disk stall as a percentage of cold-cache training time.
    #[must_use]
    pub fn disk_stall_pct(&self) -> Option<f64> {
        pct(self.disk_stall(), self.times.t3)
    }

    /// Reconstructs a report from the JSON its `Serialize` impl emits
    /// (step times serialize as nanosecond integers). The round trip is
    /// exact: `from_json_value(to_value(r)) == r`.
    ///
    /// # Errors
    ///
    /// A description of the first missing or mistyped field.
    pub fn from_json_value(v: &serde_json::Value) -> Result<StallReport, String> {
        let get_str = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(serde_json::Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("missing string field '{k}'"))
        };
        let get_u64 = |k: &str| -> Result<u64, String> {
            v.get(k)
                .and_then(serde_json::Value::as_u64)
                .ok_or_else(|| format!("missing integer field '{k}'"))
        };
        let times = v.get("times").ok_or("missing 'times'")?;
        let dur = |k: &str| -> Option<SimDuration> {
            times
                .get(k)
                .and_then(serde_json::Value::as_u64)
                .map(SimDuration::from_nanos)
        };
        Ok(StallReport {
            cluster: get_str("cluster")?,
            reference: get_str("reference")?,
            model: get_str("model")?,
            per_gpu_batch: get_u64("per_gpu_batch")?,
            world: get_u64("world")? as usize,
            times: StepTimes {
                t1: dur("t1"),
                t2: dur("t2"),
                t3: dur("t3"),
                t4: dur("t4"),
                t5: dur("t5"),
            },
        })
    }

    /// The end-to-end training time of one steady-state epoch — the
    /// quantity behind the paper's time/cost comparisons (Figs. 6/10/12/14).
    ///
    /// The warm-cache epoch (`T4`) is billed: the paper's sweeps ran
    /// back-to-back on the same instances, so the dataset was DRAM-resident
    /// for the timing runs ("the actual disk stall suffered is not as high
    /// as shown in the disk stall analysis due to caching of data", §V-B2).
    /// Falls back to `T3`/`T5`/`T2` for partial reports.
    #[must_use]
    pub fn training_epoch_time(&self) -> Option<SimDuration> {
        self.times
            .t4
            .or(self.times.t3)
            .or(self.times.t5)
            .or(self.times.t2)
    }
}

impl fmt::Display for StallReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} | {} | batch {} x {} GPUs",
            self.cluster, self.model, self.per_gpu_batch, self.world
        )?;
        let line =
            |f: &mut fmt::Formatter<'_>, name: &str, t: Option<SimDuration>| -> fmt::Result {
                match t {
                    Some(t) => writeln!(f, "  {name}: {t}"),
                    None => writeln!(f, "  {name}: -"),
                }
            };
        line(f, "T1 (synthetic single-GPU)", self.times.t1)?;
        line(f, "T2 (synthetic all-GPU)   ", self.times.t2)?;
        line(f, "T3 (real, cold cache)    ", self.times.t3)?;
        line(f, "T4 (real, warm cache)    ", self.times.t4)?;
        line(f, "T5 (synthetic multi-node)", self.times.t5)?;
        let pct_line = |f: &mut fmt::Formatter<'_>, name: &str, p: Option<f64>| -> fmt::Result {
            match p {
                Some(p) => writeln!(f, "  {name}: {p:.1}%"),
                None => writeln!(f, "  {name}: -"),
            }
        };
        pct_line(f, "interconnect stall", self.interconnect_stall_pct())?;
        pct_line(f, "network stall     ", self.network_stall_pct())?;
        pct_line(f, "CPU (prep) stall  ", self.cpu_stall_pct())?;
        pct_line(f, "disk (fetch) stall", self.disk_stall_pct())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn secs(s: u64) -> Option<SimDuration> {
        Some(SimDuration::from_secs(s))
    }

    fn report() -> StallReport {
        StallReport {
            cluster: "p3.8xlarge*2".into(),
            reference: "p3.16xlarge".into(),
            model: "ResNet18".into(),
            per_gpu_batch: 32,
            world: 8,
            times: StepTimes {
                t1: secs(100),
                t2: secs(120),
                t3: secs(160),
                t4: secs(130),
                t5: None,
            },
        }
    }

    #[test]
    fn stall_formulas_match_the_paper() {
        let r = report();
        assert_eq!(r.interconnect_stall(), Some(SimDuration::from_secs(20)));
        assert!((r.interconnect_stall_pct().unwrap() - 20.0).abs() < 1e-9);
        assert_eq!(r.cpu_stall(), Some(SimDuration::from_secs(10)));
        assert!((r.cpu_stall_pct().unwrap() - 100.0 * 10.0 / 130.0).abs() < 1e-9);
        assert_eq!(r.disk_stall(), Some(SimDuration::from_secs(30)));
        assert!((r.disk_stall_pct().unwrap() - 100.0 * 30.0 / 160.0).abs() < 1e-9);
    }

    #[test]
    fn missing_steps_yield_none() {
        let mut r = report();
        assert_eq!(r.network_stall(), None);
        assert_eq!(r.network_stall_pct(), None);
        r.times.t1 = None;
        assert_eq!(r.interconnect_stall_pct(), None);
    }

    #[test]
    fn network_stall_and_multinode_cpu_baseline() {
        let mut r = report();
        r.times.t5 = secs(300);
        assert_eq!(r.network_stall(), Some(SimDuration::from_secs(180)));
        assert!((r.network_stall_pct().unwrap() - 150.0).abs() < 1e-9);
        // With T5 present, the CPU stall compares T4 against T5 (same
        // cluster), so here T4 < T5 clamps to zero instead of charging the
        // network slowdown to the CPU.
        assert_eq!(r.cpu_stall(), Some(SimDuration::ZERO));
    }

    #[test]
    fn stalls_never_go_negative() {
        let mut r = report();
        r.times.t2 = secs(90); // faster than single GPU (cannot stall)
        assert_eq!(r.interconnect_stall(), Some(SimDuration::ZERO));
    }

    #[test]
    fn display_contains_key_figures() {
        let mut r = report();
        r.times.t5 = secs(300);
        let s = r.to_string();
        assert!(s.contains("interconnect stall: 20.0%"));
        assert!(s.contains("network stall     : 150.0%"));
    }

    #[test]
    fn training_time_bills_the_warm_epoch() {
        let r = report();
        assert_eq!(r.training_epoch_time(), secs(130)); // T4
        let mut no_warm = report();
        no_warm.times.t4 = None;
        assert_eq!(no_warm.training_epoch_time(), secs(160)); // T3
        no_warm.times.t3 = None;
        no_warm.times.t5 = secs(300);
        assert_eq!(no_warm.training_epoch_time(), secs(300)); // T5
    }
}
