//! Instance recommendation (the paper's per-section "Recommendation"
//! paragraphs, automated).
//!
//! Sweeps candidate cluster configurations with the profiler, bills each,
//! and ranks by time or cost. Infeasible candidates (model + batch does
//! not fit the GPU) are reported as skipped rather than silently dropped.

use serde::Serialize;
use stash_ddl::error::TrainError;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{
    p2_16xlarge, p2_8xlarge, p2_xlarge, p3_16xlarge, p3_24xlarge, p3_2xlarge, p3_8xlarge,
};

use crate::cost::{epoch_cost, CostReport};
use crate::error::ProfileError;
use crate::profiler::Stash;
use crate::report::StallReport;

/// What to optimize for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Objective {
    /// Shortest epoch time.
    Time,
    /// Cheapest epoch.
    Cost,
}

/// One evaluated candidate.
#[derive(Debug, Clone, Serialize)]
pub struct Recommendation {
    /// The candidate configuration.
    pub cluster_name: String,
    /// Full stall characterization.
    pub report: StallReport,
    /// Billed epoch.
    pub cost: CostReport,
}

/// A candidate that could not run.
#[derive(Debug, Clone, Serialize)]
pub struct Skipped {
    /// The candidate configuration.
    pub cluster_name: String,
    /// Why it was skipped.
    pub reason: String,
}

/// Outcome of an advisor sweep: feasible candidates ranked best-first,
/// plus the skipped ones.
#[derive(Debug, Clone, Serialize)]
pub struct Advice {
    /// Ranked feasible candidates.
    pub ranked: Vec<Recommendation>,
    /// Infeasible candidates with reasons.
    pub skipped: Vec<Skipped>,
}

impl Advice {
    /// The winning configuration, if any candidate was feasible.
    #[must_use]
    pub fn best(&self) -> Option<&Recommendation> {
        self.ranked.first()
    }
}

/// The candidate set used throughout the paper: every characterized P2/P3
/// single instance plus the two networked pairs (`p2.8xlarge*2`,
/// `p3.8xlarge*2`).
#[must_use]
pub fn default_candidates() -> Vec<ClusterSpec> {
    vec![
        ClusterSpec::single(p2_xlarge()),
        ClusterSpec::single(p2_8xlarge()),
        ClusterSpec::single(p2_16xlarge()),
        ClusterSpec::homogeneous(p2_8xlarge(), 2),
        ClusterSpec::single(p3_2xlarge()),
        ClusterSpec::single(p3_8xlarge()),
        ClusterSpec::single(p3_16xlarge()),
        ClusterSpec::single(p3_24xlarge()),
        ClusterSpec::homogeneous(p3_8xlarge(), 2),
    ]
}

/// Profiles every candidate and ranks the feasible ones by `objective`.
///
/// # Errors
///
/// Only configuration-independent failures propagate; per-candidate
/// out-of-memory and missing-reference conditions land in
/// [`Advice::skipped`].
pub fn recommend(
    stash: &Stash,
    candidates: &[ClusterSpec],
    objective: Objective,
) -> Result<Advice, ProfileError> {
    let mut ranked = Vec::new();
    let mut skipped = Vec::new();
    for cluster in candidates {
        match stash.profile(cluster) {
            Ok(report) => {
                let cost = epoch_cost(&report, cluster);
                ranked.push(Recommendation {
                    cluster_name: cluster.display_name(),
                    report,
                    cost,
                });
            }
            Err(ProfileError::Train(TrainError::OutOfMemory { .. })) => skipped.push(Skipped {
                cluster_name: cluster.display_name(),
                reason: "model + batch exceeds GPU memory".into(),
            }),
            Err(ProfileError::NoReference { .. }) => skipped.push(Skipped {
                cluster_name: cluster.display_name(),
                reason: "no single-instance baseline for this shape".into(),
            }),
            Err(e) => return Err(e),
        }
    }
    match objective {
        Objective::Time => ranked.sort_by(|a, b| {
            a.cost
                .epoch_time
                .cmp(&b.cost.epoch_time)
                .then_with(|| a.cost.epoch_cost.total_cmp(&b.cost.epoch_cost))
        }),
        Objective::Cost => ranked.sort_by(|a, b| {
            a.cost
                .epoch_cost
                .total_cmp(&b.cost.epoch_cost)
                .then_with(|| a.cost.epoch_time.cmp(&b.cost.epoch_time))
        }),
    }
    Ok(Advice { ranked, skipped })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use stash_dnn::zoo;

    fn quick_stash(model: stash_dnn::model::Model, batch: u64) -> Stash {
        Stash::new(model)
            .with_batch(batch)
            .with_sampled_iterations(2)
            .with_epoch_samples(20_000)
    }

    #[test]
    fn cheapest_config_for_small_models_is_a_small_instance() {
        // §V-B3: the single-GPU instances are the most cost-effective.
        let advice = recommend(
            &quick_stash(zoo::shufflenet(), 32),
            &default_candidates(),
            Objective::Cost,
        )
        .unwrap();
        let best = advice.best().unwrap();
        assert!(
            best.cluster_name == "p2.xlarge" || best.cluster_name == "p3.2xlarge",
            "best = {}",
            best.cluster_name
        );
    }

    #[test]
    fn fastest_config_is_a_p3() {
        let advice = recommend(
            &quick_stash(zoo::resnet50(), 16),
            &default_candidates(),
            Objective::Time,
        )
        .unwrap();
        let best = advice.best().unwrap();
        assert!(
            best.cluster_name.starts_with("p3."),
            "best = {}",
            best.cluster_name
        );
    }

    #[test]
    fn oversized_models_skip_small_gpus() {
        // BERT-large at batch 8 fits only the 32 GB V100s of p3.24xlarge.
        let advice = recommend(
            &quick_stash(zoo::bert_large(), 8)
                .with_dataset(stash_dnn::dataset::DatasetSpec::squad2()),
            &default_candidates(),
            Objective::Cost,
        )
        .unwrap();
        assert!(advice
            .skipped
            .iter()
            .any(|s| s.cluster_name.starts_with("p2.")));
        assert!(advice
            .skipped
            .iter()
            .any(|s| s.cluster_name == "p3.16xlarge"));
        assert_eq!(advice.ranked.len(), 1);
        assert_eq!(advice.best().unwrap().cluster_name, "p3.24xlarge");
    }

    #[test]
    fn rankings_are_monotone() {
        let advice = recommend(
            &quick_stash(zoo::alexnet(), 32),
            &default_candidates(),
            Objective::Cost,
        )
        .unwrap();
        let costs: Vec<f64> = advice.ranked.iter().map(|r| r.cost.epoch_cost).collect();
        assert!(costs.windows(2).all(|w| w[0] <= w[1]), "{costs:?}");
        assert!(advice.ranked.len() >= 7);
    }
}
