//! The characterization database.
//!
//! The paper's economic argument (§III): the authors paid once to
//! characterize AWS's GPU instances so that tenants "can use the takeaways
//! without running any further experiments". This module is that artifact
//! as an API — a persistent collection of [`StallReport`]s that downstream
//! users query instead of renting VMs (or, here, instead of re-running the
//! simulator).

use std::fs;
use std::io;
use std::path::Path;

use serde::Serialize;
use stash_hwtopo::cluster::ClusterSpec;

use crate::cache::MeasurementCache;
use crate::error::ProfileError;
use crate::profiler::Stash;
use crate::report::StallReport;

/// A queryable, persistable collection of stall characterizations.
#[derive(Debug, Clone, Default, Serialize)]
pub struct CharacterizationDb {
    reports: Vec<StallReport>,
}

/// Key uniquely identifying one characterization.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize)]
pub struct ReportKey {
    /// Cluster display name.
    pub cluster: String,
    /// Model name.
    pub model: String,
    /// Per-GPU batch size.
    pub per_gpu_batch: u64,
}

impl CharacterizationDb {
    /// An empty database.
    #[must_use]
    pub fn new() -> Self {
        CharacterizationDb::default()
    }

    /// Number of stored reports.
    #[must_use]
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// `true` when no reports are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// Inserts (or replaces, keyed by cluster/model/batch) a report.
    /// Returns `true` when an existing entry was replaced.
    pub fn insert(&mut self, report: StallReport) -> bool {
        let key = key_of(&report);
        let replaced = if let Some(existing) = self.reports.iter_mut().find(|r| key_of(r) == key) {
            *existing = report;
            true
        } else {
            self.reports.push(report);
            false
        };
        self.reports.sort_by_key(key_of);
        replaced
    }

    /// Exact lookup.
    #[must_use]
    pub fn get(&self, cluster: &str, model: &str, per_gpu_batch: u64) -> Option<&StallReport> {
        self.reports
            .iter()
            .find(|r| r.cluster == cluster && r.model == model && r.per_gpu_batch == per_gpu_batch)
    }

    /// All reports for a model, across clusters/batches.
    pub fn for_model<'a>(&'a self, model: &'a str) -> impl Iterator<Item = &'a StallReport> {
        self.reports.iter().filter(move |r| r.model == model)
    }

    /// All reports for a cluster configuration.
    pub fn for_cluster<'a>(&'a self, cluster: &'a str) -> impl Iterator<Item = &'a StallReport> {
        self.reports.iter().filter(move |r| r.cluster == cluster)
    }

    /// The stored configuration with the lowest warm-epoch time for
    /// `model`, i.e. the zero-cost recommendation a user extracts from the
    /// published characterization.
    #[must_use]
    pub fn fastest_for(&self, model: &str) -> Option<&StallReport> {
        self.reports
            .iter()
            .filter(|r| r.model == model)
            .filter_map(|r| r.training_epoch_time().map(|t| (t, r)))
            .min_by_key(|(t, _)| *t)
            .map(|(_, r)| r)
    }

    /// The characterization for (`stash`, `cluster`), profiling only when
    /// it is not stored yet — the paper's pay-once economics as an API.
    /// Fresh profiles go through `cache`, so even a miss here reuses any
    /// step measurements shared with earlier profiles, and a warm sweep
    /// over an already-populated database runs no simulation at all.
    ///
    /// # Errors
    ///
    /// Propagates profiling errors; the database is unchanged on error.
    pub fn ensure(
        &mut self,
        stash: &Stash,
        cluster: &ClusterSpec,
        cache: &MeasurementCache,
    ) -> Result<&StallReport, ProfileError> {
        let name = cluster.display_name();
        let model = stash.model().name.clone();
        let batch = stash.per_gpu_batch();
        if self.get(&name, &model, batch).is_none() {
            self.insert(stash.profile_cached(cluster, cache)?);
        }
        let Some(report) = self.get(&name, &model, batch) else {
            unreachable!("report inserted above")
        };
        Ok(report)
    }

    /// Serializes the database to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(&self.reports)
    }

    /// Writes the database to `path` as JSON.
    ///
    /// # Errors
    ///
    /// Propagates I/O and serialization failures.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let json = self.to_json().map_err(io::Error::other)?;
        fs::write(path, json)
    }

    /// Loads a database previously written by [`CharacterizationDb::save`].
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and malformed content.
    pub fn load(path: &Path) -> io::Result<CharacterizationDb> {
        let raw = fs::read_to_string(path)?;
        let values: Vec<serde_json::Value> =
            serde_json::from_str(&raw).map_err(io::Error::other)?;
        let mut db = CharacterizationDb::new();
        for v in values {
            db.insert(StallReport::from_json_value(&v).map_err(io::Error::other)?);
        }
        Ok(db)
    }
}

fn key_of(r: &StallReport) -> ReportKey {
    ReportKey {
        cluster: r.cluster.clone(),
        model: r.model.clone(),
        per_gpu_batch: r.per_gpu_batch,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::report::StepTimes;
    use stash_simkit::time::SimDuration;

    fn mk(cluster: &str, model: &str, batch: u64, t4_secs: u64) -> StallReport {
        StallReport {
            cluster: cluster.into(),
            reference: cluster.into(),
            model: model.into(),
            per_gpu_batch: batch,
            world: 8,
            times: StepTimes {
                t1: Some(SimDuration::from_secs(10)),
                t2: Some(SimDuration::from_secs(12)),
                t3: Some(SimDuration::from_secs(t4_secs + 5)),
                t4: Some(SimDuration::from_secs(t4_secs)),
                t5: None,
            },
        }
    }

    #[test]
    fn insert_and_query() {
        let mut db = CharacterizationDb::new();
        assert!(!db.insert(mk("p3.16xlarge", "ResNet18", 32, 100)));
        assert!(!db.insert(mk("p3.8xlarge", "ResNet18", 32, 140)));
        assert!(!db.insert(mk("p3.16xlarge", "VGG11", 32, 300)));
        assert_eq!(db.len(), 3);
        assert!(db.get("p3.16xlarge", "ResNet18", 32).is_some());
        assert!(db.get("p3.16xlarge", "ResNet18", 64).is_none());
        assert_eq!(db.for_model("ResNet18").count(), 2);
        assert_eq!(db.for_cluster("p3.16xlarge").count(), 2);
    }

    #[test]
    fn insert_replaces_same_key() {
        let mut db = CharacterizationDb::new();
        db.insert(mk("p3.16xlarge", "ResNet18", 32, 100));
        assert!(db.insert(mk("p3.16xlarge", "ResNet18", 32, 90)));
        assert_eq!(db.len(), 1);
        let t4 = db
            .get("p3.16xlarge", "ResNet18", 32)
            .unwrap()
            .times
            .t4
            .unwrap();
        assert_eq!(t4, SimDuration::from_secs(90));
    }

    #[test]
    fn fastest_for_picks_lowest_warm_epoch() {
        let mut db = CharacterizationDb::new();
        db.insert(mk("p3.8xlarge", "ResNet18", 32, 140));
        db.insert(mk("p3.16xlarge", "ResNet18", 32, 100));
        db.insert(mk("p2.16xlarge", "ResNet18", 32, 900));
        assert_eq!(db.fastest_for("ResNet18").unwrap().cluster, "p3.16xlarge");
        assert!(db.fastest_for("GPT-5").is_none());
    }

    #[test]
    fn ensure_profiles_once_then_serves_from_store() {
        use stash_dnn::zoo;
        use stash_hwtopo::instance::p3_16xlarge;

        let mut db = CharacterizationDb::new();
        let cache = MeasurementCache::new();
        let stash = Stash::new(zoo::alexnet())
            .with_sampled_iterations(3)
            .with_epoch_samples(20_000);
        let cluster = ClusterSpec::single(p3_16xlarge());

        let first = db.ensure(&stash, &cluster, &cache).unwrap().clone();
        let after_first = cache.stats();
        assert_eq!(after_first.misses, 4, "cold ensure simulates all steps");

        let second = db.ensure(&stash, &cluster, &cache).unwrap().clone();
        assert_eq!(first, second);
        assert_eq!(
            cache.stats(),
            after_first,
            "warm ensure must not touch the engine or the cache"
        );
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn save_load_round_trips() {
        let mut db = CharacterizationDb::new();
        db.insert(mk("p3.16xlarge", "ResNet18", 32, 100));
        db.insert(mk("p2.8xlarge", "VGG11", 16, 250));
        let path = std::env::temp_dir().join("stash_db_roundtrip_test.json");
        db.save(&path).unwrap();
        let loaded = CharacterizationDb::load(&path).unwrap();
        assert_eq!(loaded.len(), 2);
        let r = loaded.get("p2.8xlarge", "VGG11", 16).unwrap();
        assert_eq!(r.times.t4, Some(SimDuration::from_secs(250)));
        assert_eq!(r.world, 8);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_rejects_garbage() {
        let path = std::env::temp_dir().join("stash_db_garbage_test.json");
        std::fs::write(&path, "[{\"cluster\": 5}]").unwrap();
        assert!(CharacterizationDb::load(&path).is_err());
        let _ = std::fs::remove_file(&path);
    }
}
