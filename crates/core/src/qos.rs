//! Network QoS variance analysis (paper §III).
//!
//! The paper argues AWS network QoS "is subject to high temporal (up to
//! months) and spatial (availability zones, regions) variations and is
//! hard to definitively characterize" — the reason Stash characterizes
//! *hardware* stalls and treats the network statistically. This module
//! makes that statement quantitative: it re-profiles a multi-node cluster
//! under randomly drawn achieved-bandwidth multipliers and reports the
//! distribution of the network stall.

use serde::Serialize;
use stash_hwtopo::cluster::ClusterSpec;
use stash_simkit::rng::DetRng;
use stash_simkit::stats::Summary;

use crate::error::ProfileError;
use crate::profiler::Stash;

/// One draw of the QoS lottery.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct QosSample {
    /// Achieved fraction of nominal network bandwidth.
    pub achieved_fraction: f64,
    /// Resulting network stall percentage.
    pub network_stall_pct: f64,
}

/// Distribution of network stalls under bandwidth variance.
#[derive(Debug, Clone, Serialize)]
pub struct QosDistribution {
    /// Every draw, in order.
    pub samples: Vec<QosSample>,
    /// Summary statistics of the stall percentage.
    pub stall_summary: Summary,
}

impl QosDistribution {
    /// Max-to-min spread of the observed stalls (1.0 = no variance).
    #[must_use]
    pub fn spread(&self) -> f64 {
        match (self.stall_summary.max(), self.stall_summary.min()) {
            (Some(max), Some(min)) if min > 0.0 => max / min,
            _ => 1.0,
        }
    }
}

/// Profiles `cluster` `trials` times, drawing the achieved network
/// bandwidth uniformly from `[1 - jitter, 1]` of nominal each time
/// (deterministic in `seed`).
///
/// # Errors
///
/// Propagates profiling failures; multi-node clusters only (a single
/// instance has no network stall to sample).
///
/// # Panics
///
/// Panics if `jitter` is outside `[0, 1)` or `trials` is zero.
pub fn network_stall_distribution(
    stash: &Stash,
    cluster: &ClusterSpec,
    jitter: f64,
    trials: u32,
    seed: u64,
) -> Result<QosDistribution, ProfileError> {
    assert!((0.0..1.0).contains(&jitter), "jitter must be in [0, 1)");
    assert!(trials > 0, "need at least one trial");
    let mut rng = DetRng::new(seed);
    let mut samples = Vec::with_capacity(trials as usize);
    let mut stall_summary = Summary::new();
    for _ in 0..trials {
        let achieved = rng.uniform(1.0 - jitter, 1.0 + f64::EPSILON);
        let mut degraded = cluster.clone();
        for inst in &mut degraded.instances {
            inst.network_gbps *= achieved;
        }
        let report = stash.profile(&degraded)?;
        let stall = report.network_stall_pct().unwrap_or(0.0);
        stall_summary.record(stall);
        samples.push(QosSample {
            achieved_fraction: achieved,
            network_stall_pct: stall,
        });
    }
    Ok(QosDistribution {
        samples,
        stall_summary,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use stash_dnn::zoo;
    use stash_hwtopo::instance::p3_8xlarge;

    fn quick_stash() -> Stash {
        Stash::new(zoo::resnet50())
            .with_sampled_iterations(2)
            .with_epoch_samples(10_000)
    }

    #[test]
    fn jitter_widens_the_distribution() {
        let cluster = ClusterSpec::homogeneous(p3_8xlarge(), 2);
        let stash = quick_stash();
        let calm = network_stall_distribution(&stash, &cluster, 0.05, 4, 7).unwrap();
        let wild = network_stall_distribution(&stash, &cluster, 0.6, 4, 7).unwrap();
        assert!(wild.stall_summary.std_dev() > calm.stall_summary.std_dev());
        assert!(wild.spread() > calm.spread());
    }

    #[test]
    fn deterministic_in_the_seed() {
        let cluster = ClusterSpec::homogeneous(p3_8xlarge(), 2);
        let stash = quick_stash();
        let a = network_stall_distribution(&stash, &cluster, 0.3, 3, 42).unwrap();
        let b = network_stall_distribution(&stash, &cluster, 0.3, 3, 42).unwrap();
        for (x, y) in a.samples.iter().zip(&b.samples) {
            assert_eq!(x.network_stall_pct, y.network_stall_pct);
        }
    }

    #[test]
    fn worse_bandwidth_means_more_stall() {
        let cluster = ClusterSpec::homogeneous(p3_8xlarge(), 2);
        let stash = quick_stash();
        let d = network_stall_distribution(&stash, &cluster, 0.7, 6, 3).unwrap();
        // Correlate: the sample with the lowest achieved fraction must not
        // stall less than the one with the highest.
        let best = d
            .samples
            .iter()
            .max_by(|a, b| a.achieved_fraction.total_cmp(&b.achieved_fraction))
            .unwrap();
        let worst = d
            .samples
            .iter()
            .min_by(|a, b| a.achieved_fraction.total_cmp(&b.achieved_fraction))
            .unwrap();
        assert!(worst.network_stall_pct >= best.network_stall_pct);
    }

    #[test]
    #[should_panic(expected = "jitter")]
    fn jitter_bounds_enforced() {
        let cluster = ClusterSpec::homogeneous(p3_8xlarge(), 2);
        let _ = network_stall_distribution(&quick_stash(), &cluster, 1.5, 2, 1);
    }
}
