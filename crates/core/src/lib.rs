//! # stash-core — the Stash DDL stall profiler
//!
//! The paper's primary contribution: a profiler that characterizes the
//! four execution stalls of distributed deep learning on cloud GPU
//! instances — **interconnect** and **network** stalls (Stash's novel
//! steps 1 and 5) plus the **CPU (prep)** and **disk (fetch)** stalls of
//! prior work DS-Analyzer (steps 2-4).
//!
//! * [`profiler`] — [`profiler::Stash`] (all five steps, serial or
//!   parallel execution) and [`profiler::DsAnalyzer`] (the prior-work
//!   subset), plus [`profiler::par_profile_many`] for sweep fan-out;
//! * [`cache`] — [`cache::MeasurementCache`], memoizing identical epoch
//!   measurements within and across profiles;
//! * [`report`] — [`report::StallReport`] with the paper's stall formulas;
//! * [`cost`] — epoch time x instance price billing (Figs. 6/10/12/14);
//! * [`advisor`] — ranked instance recommendations;
//! * [`analytic`] — the §VI closed-form `T = (tau + G/(L·B))·L` model;
//! * [`srifty`] — a Srifty-style probe-and-predict baseline with its
//!   probing bill (the §VI-B cost comparison);
//! * [`qos`] — network-stall distributions under bandwidth variance
//!   (the §III QoS discussion, made quantitative);
//! * [`db`] — the persistent characterization database users query
//!   instead of re-running experiments (the paper's cost pitch);
//! * [`pipeline`] — a GPipe-style pipeline-parallel estimator for the
//!   models the paper's data-parallel profiler must exclude;
//! * [`sweep`] — the durable, crash-resumable sweep runner: consult-first
//!   cells over a `stash-store` result store, write-ahead journaling,
//!   retry/backoff and graceful degradation.
//!
//! # Examples
//!
//! ```
//! use stash_core::prelude::*;
//! use stash_dnn::zoo;
//! use stash_hwtopo::prelude::*;
//!
//! let stash = Stash::new(zoo::resnet18())
//!     .with_batch(32)
//!     .with_sampled_iterations(3)
//!     .with_epoch_samples(10_000);
//! let report = stash.profile(&ClusterSpec::single(p3_16xlarge()))?;
//! println!("{report}");
//! assert!(report.interconnect_stall_pct().unwrap() >= 0.0);
//! # Ok::<(), stash_core::error::ProfileError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod advisor;
pub mod analytic;
pub mod cache;
pub mod cost;
pub mod db;
pub mod error;
pub mod pipeline;
pub mod profiler;
pub mod qos;
pub mod render;
pub mod report;
pub mod srifty;
pub mod sweep;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::advisor::{default_candidates, recommend, Advice, Objective, Recommendation};
    pub use crate::analytic::{comm_estimate, link_parameters, CommEstimate, LinkParameters};
    pub use crate::cache::{CacheStats, MeasurementCache};
    pub use crate::cost::{epoch_cost, training_cost, CostReport};
    pub use crate::db::CharacterizationDb;
    pub use crate::error::ProfileError;
    pub use crate::pipeline::{plan as pipeline_plan, PipelinePlan};
    pub use crate::profiler::{
        par_profile_many, profile_threads, DsAnalyzer, ExecMode, ProfileJob, Stash,
    };
    pub use crate::qos::{network_stall_distribution, QosDistribution};
    pub use crate::render::{comparison_markdown, report_markdown};
    pub use crate::report::{StallReport, StepTimes};
    pub use crate::srifty::{compare as srifty_compare, grid_probe, SriftyPredictor};
    pub use crate::sweep::{
        cell_descriptor, cell_key, decode_cell_record, encode_cell_record, run_sweep, CellOutcome,
        CellStatus, SweepOutcome,
    };
}
