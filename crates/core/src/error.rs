//! Profiler error types.

use std::error::Error;
use std::fmt;

use stash_ddl::error::TrainError;

/// Why a profiling run could not complete.
#[derive(Debug, Clone, PartialEq)]
pub enum ProfileError {
    /// The underlying training simulation failed.
    Train(TrainError),
    /// A multi-node cluster has no single-instance reference with the same
    /// total GPU count, so the network-stall baseline (step 2) is
    /// undefined.
    NoReference {
        /// Total GPUs of the cluster under test.
        world: usize,
        /// Family of the cluster's instances.
        family: String,
    },
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Train(e) => write!(f, "training simulation failed: {e}"),
            ProfileError::NoReference { world, family } => write!(
                f,
                "no single {family} instance with {world} GPUs to serve as the step-2 baseline"
            ),
        }
    }
}

impl Error for ProfileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProfileError::Train(e) => Some(e),
            ProfileError::NoReference { .. } => None,
        }
    }
}

impl From<TrainError> for ProfileError {
    fn from(e: TrainError) -> Self {
        ProfileError::Train(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ProfileError::from(TrainError::InvalidConfig("boom".into()));
        assert!(e.to_string().contains("boom"));
        assert!(e.source().is_some());
        let n = ProfileError::NoReference {
            world: 12,
            family: "P3".into(),
        };
        assert!(n.to_string().contains("12"));
        assert!(n.source().is_none());
    }
}
