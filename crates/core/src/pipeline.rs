//! Pipeline-parallelism estimator (extension; the paper's stated gap).
//!
//! §IV-A: "Large DNN models often do not fit on a single GPU's memory,
//! thereby forcing users to employ techniques such as model and hybrid
//! parallelism ... Our profiling tool currently supports only data
//! parallelism." This module closes part of that gap analytically: a
//! GPipe-style estimator that partitions a model into balanced stages,
//! checks per-stage memory, and predicts iteration time from the classic
//! pipeline bound
//!
//! `T ≈ (m + s − 1) / m · t_stage + activation transfers`,
//!
//! where `m` is the number of micro-batches and `s` the stage count. It
//! answers the question the paper defers: *which models that OOM under
//! data parallelism become feasible on a given instance with pipelining?*

use serde::Serialize;
use stash_dnn::model::Model;
use stash_flowsim::net::FlowNet;
use stash_gpucompute::kernel::ComputeModel;
use stash_gpucompute::memory;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::InstanceType;
use stash_hwtopo::topology::{GpuId, Topology};
use stash_simkit::time::SimDuration;

/// A contiguous range of layers assigned to one GPU.
#[derive(Debug, Clone, Serialize)]
pub struct Stage {
    /// Stage index (= GPU local index).
    pub index: usize,
    /// Forward layer range `[lo, hi)`.
    pub layer_range: (usize, usize),
    /// Per-micro-batch forward+backward compute time.
    pub compute: SimDuration,
    /// Peak memory of the stage at the given micro-batch size, bytes.
    pub memory_bytes: f64,
    /// Activation bytes shipped to the next stage per micro-batch.
    pub boundary_activation_bytes: f64,
}

/// The pipeline plan plus its predicted performance.
#[derive(Debug, Clone, Serialize)]
pub struct PipelinePlan {
    /// Balanced stages, one per GPU.
    pub stages: Vec<Stage>,
    /// Micro-batches in flight per iteration.
    pub micro_batches: u64,
    /// Whether every stage fits its GPU's memory.
    pub fits: bool,
    /// Predicted time per (macro-)iteration.
    pub iteration_time: SimDuration,
    /// Predicted throughput, samples/sec.
    pub throughput: f64,
}

/// Splits `model` into `stages` contiguous parts with (greedily) balanced
/// compute and estimates GPipe-style execution on `instance`.
///
/// `micro_batch` is the per-micro-batch size; `micro_batches` the number
/// in flight (macro batch = product).
///
/// # Panics
///
/// Panics if `stages` is zero or exceeds the instance's GPU count, or if
/// `micro_batches` is zero.
#[must_use]
pub fn plan(
    instance: &InstanceType,
    model: &Model,
    stages: usize,
    micro_batch: u64,
    micro_batches: u64,
) -> PipelinePlan {
    assert!(
        stages > 0 && stages <= instance.gpu_count,
        "invalid stage count"
    );
    assert!(micro_batches > 0, "need at least one micro-batch");
    let cm = ComputeModel::new(instance.gpu.spec());

    // Greedy balanced partition over a blend of per-layer compute time
    // and parameter weight: compute balance keeps the pipe bubble small,
    // parameter balance keeps embedding-dominated models (DLRM) from
    // piling their state onto one stage.
    let compute_cost: Vec<f64> = model
        .layers
        .iter()
        .map(|l| (cm.layer_fwd(l, micro_batch) + cm.layer_bwd(l, micro_batch)).as_secs_f64())
        .collect();
    let total_compute: f64 = compute_cost.iter().sum();
    let total_params = model.param_count().max(1) as f64;
    let layer_cost: Vec<f64> = model
        .layers
        .iter()
        .zip(&compute_cost)
        .map(|(l, c)| c / total_compute + l.params as f64 / total_params)
        .collect();
    let total: f64 = layer_cost.iter().sum();
    let target = total / stages as f64;
    let mut bounds = vec![0_usize];
    let mut acc = 0.0;
    for (i, c) in layer_cost.iter().enumerate() {
        acc += c;
        if acc >= target && bounds.len() < stages && i + 1 < model.layers.len() {
            bounds.push(i + 1);
            acc = 0.0;
        }
    }
    bounds.push(model.layers.len());

    let mut stage_list = Vec::new();
    for s in 0..bounds.len() - 1 {
        let (lo, hi) = (bounds[s], bounds[s + 1]);
        let compute: SimDuration = (lo..hi)
            .map(|i| {
                cm.layer_fwd(&model.layers[i], micro_batch)
                    + cm.layer_bwd(&model.layers[i], micro_batch)
            })
            .sum();
        // Stage memory: its parameters' state + its activations; the
        // framework reservation is charged per GPU.
        let params: u64 = model.layers[lo..hi].iter().map(|l| l.params).sum();
        let activations: f64 = model.layers[lo..hi]
            .iter()
            .map(|l| l.activation_bytes)
            .sum();
        // In-flight micro-batches stack activations (GPipe keeps up to s).
        let inflight = micro_batches.min(bounds.len() as u64 - 1) as f64;
        let memory_bytes = params as f64 * 4.0 * 3.0
            + activations * micro_batch as f64 * memory::ACTIVATION_OVERHEAD * inflight
            + memory::FRAMEWORK_RESERVED;
        let boundary = if hi < model.layers.len() {
            model.layers[hi - 1].activation_bytes * micro_batch as f64
        } else {
            0.0
        };
        stage_list.push(Stage {
            index: s,
            layer_range: (lo, hi),
            compute,
            memory_bytes,
            boundary_activation_bytes: boundary,
        });
    }

    let fits = stage_list
        .iter()
        .all(|s| s.memory_bytes <= instance.gpu.spec().mem_bytes);

    // Pipeline bound: slowest stage paces the pipe; (m + s - 1) slots.
    let Some(bottleneck) = stage_list.iter().map(|s| s.compute).max() else {
        unreachable!("stage_list is non-empty: guarded above")
    };
    // Activation hops ride the intra-node interconnect.
    let mut net = FlowNet::new();
    let topo = Topology::build(&ClusterSpec::single(instance.clone()), &mut net);
    let hop_seconds: f64 = stage_list
        .iter()
        .take(stage_list.len().saturating_sub(1))
        .map(|s| {
            let route = topo.gpu_route(
                GpuId {
                    node: 0,
                    local: s.index,
                },
                GpuId {
                    node: 0,
                    local: s.index + 1,
                },
            );
            let rate = net.probe_rates(std::slice::from_ref(&route))[0];
            // Forward activation + backward gradient of the boundary.
            2.0 * s.boundary_activation_bytes / rate
        })
        .sum();
    let slots = micro_batches + stage_list.len() as u64 - 1;
    let iteration_time =
        bottleneck * slots + SimDuration::from_secs_f64(hop_seconds * micro_batches as f64);
    let samples = micro_batch * micro_batches;
    PipelinePlan {
        micro_batches,
        fits,
        iteration_time,
        throughput: samples as f64 / iteration_time.as_secs_f64().max(1e-12),
        stages: stage_list,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_dnn::zoo;
    use stash_hwtopo::instance::{p3_16xlarge, p3_2xlarge};

    #[test]
    fn stages_partition_the_model() {
        let inst = p3_16xlarge();
        let p = plan(&inst, &zoo::resnet50(), 4, 8, 8);
        assert_eq!(p.stages.len(), 4);
        let mut expected = 0;
        for s in &p.stages {
            assert_eq!(s.layer_range.0, expected);
            expected = s.layer_range.1;
        }
        assert_eq!(expected, zoo::resnet50().layer_count());
    }

    #[test]
    fn dlrm_becomes_feasible_with_enough_stages() {
        // Data parallelism cannot hold DLRM anywhere (engine test); GPipe
        // over 8 V100s splits the 48 GB of state into ~6 GB stages.
        let inst = p3_16xlarge();
        let one_stage = plan(&inst, &zoo::dlrm(), 1, 4, 8);
        assert!(!one_stage.fits, "DLRM cannot fit one GPU");
        let eight_stages = plan(&inst, &zoo::dlrm(), 8, 4, 8);
        assert!(
            eight_stages.fits,
            "8-way pipeline must fit: worst stage {:.1} GB",
            eight_stages
                .stages
                .iter()
                .map(|s| s.memory_bytes)
                .fold(0.0_f64, f64::max)
                / 1e9
        );
    }

    #[test]
    fn more_micro_batches_improve_utilisation() {
        let inst = p3_16xlarge();
        let few = plan(&inst, &zoo::resnet50(), 4, 8, 2);
        let many = plan(&inst, &zoo::resnet50(), 4, 8, 16);
        assert!(
            many.throughput > few.throughput,
            "{} vs {}",
            many.throughput,
            few.throughput
        );
    }

    #[test]
    fn pipeline_underperforms_data_parallelism_when_both_fit() {
        // For a model that fits a single GPU, the pipeline bubble makes
        // pipelining strictly worse than 8-way data parallelism's ideal.
        let inst = p3_16xlarge();
        let cm = ComputeModel::new(inst.gpu.spec());
        let pp = plan(&inst, &zoo::resnet18(), 8, 4, 8);
        let dp_ideal = 8.0 * cm.throughput(&zoo::resnet18(), 32);
        assert!(pp.throughput < dp_ideal);
    }

    #[test]
    #[should_panic(expected = "invalid stage count")]
    fn too_many_stages_rejected() {
        let _ = plan(&p3_2xlarge(), &zoo::resnet18(), 2, 8, 8);
    }
}
