//! The Stash profiler (paper §IV-B).
//!
//! [`Stash`] orchestrates the five measurement steps against the training
//! engine:
//!
//! 1. synthetic data on **one** GPU of the reference instance (`n/k`
//!    samples) → `T1`;
//! 2. synthetic data on **all** `k` GPUs of the reference instance → `T2`;
//! 3. real data with caches cleared → `T3`;
//! 4. real data fully cached → `T4`;
//! 5. synthetic data across the multi-instance cluster (same `k` total
//!    GPUs) → `T5`.
//!
//! Steps 2-4 are the prior-work DS-Analyzer subset ([`DsAnalyzer`]); steps
//! 1 and 5 are Stash's contribution — the communication stalls.

use serde::Serialize;
use stash_collectives::bucket::Bucketing;
use stash_collectives::schedule::Algorithm;
use stash_datapipe::cache::CacheState;
use stash_ddl::config::{ActiveGpus, DataMode, EpochMode, TrainConfig};
use stash_ddl::engine::{run_epoch_in, run_epoch_traced, EngineArena};
use stash_dnn::dataset::DatasetSpec;
use stash_dnn::model::Model;
use stash_gpucompute::precision::Precision;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{catalog, InstanceType};
use stash_simkit::time::{SimDuration, SimTime};
use stash_trace::{Category, SharedTracer, Track};

use crate::cache::MeasurementCache;
use crate::error::ProfileError;
use crate::report::{StallReport, StepTimes};

/// Default number of iterations simulated per step (the paper exploits
/// DL's repetitiveness the same way: one epoch characterizes training).
pub const DEFAULT_SAMPLED_ITERATIONS: u64 = 25;

/// How a profile executes its five measurement steps.
///
/// The steps are independent simulations of a deterministic engine, so
/// both modes produce bit-identical [`StallReport`]s; `Parallel` simply
/// overlaps their wall-clock time on separate threads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ExecMode {
    /// Run steps 1-5 one after another on the calling thread.
    Serial,
    /// Run the steps concurrently on scoped threads (one per step).
    Parallel,
}

/// Number of worker threads sweep fan-out uses: the `STASH_BENCH_THREADS`
/// environment variable when set (minimum 1), otherwise the machine's
/// available parallelism.
#[must_use]
pub fn profile_threads() -> usize {
    match std::env::var("STASH_BENCH_THREADS") {
        Ok(v) => v.trim().parse::<usize>().unwrap_or(1).max(1),
        Err(_) => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    }
}

/// The Stash profiler: configured once per (model, dataset, batch), then
/// pointed at cluster configurations.
///
/// # Examples
///
/// ```
/// use stash_core::profiler::Stash;
/// use stash_dnn::zoo;
/// use stash_hwtopo::prelude::*;
///
/// let stash = Stash::new(zoo::resnet18()).with_batch(32);
/// let report = stash.profile(&ClusterSpec::single(p3_16xlarge()))?;
/// assert!(report.interconnect_stall_pct().is_some());
/// # Ok::<(), stash_core::error::ProfileError>(())
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct Stash {
    model: Model,
    dataset: DatasetSpec,
    per_gpu_batch: u64,
    epoch_samples: Option<u64>,
    sampled_iterations: u64,
    bucketing: Bucketing,
    algorithm: Algorithm,
    precision: Precision,
}

impl Stash {
    /// Creates a profiler for `model` with paper defaults: ImageNet-1k,
    /// batch 32, ring all-reduce, per-layer buckets.
    #[must_use]
    pub fn new(model: Model) -> Stash {
        Stash {
            model,
            dataset: DatasetSpec::imagenet1k(),
            per_gpu_batch: 32,
            epoch_samples: None,
            sampled_iterations: DEFAULT_SAMPLED_ITERATIONS,
            bucketing: Bucketing::PerLayer,
            algorithm: Algorithm::Ring,
            precision: Precision::Fp32,
        }
    }

    /// Sets the per-GPU batch size.
    #[must_use]
    pub fn with_batch(mut self, per_gpu_batch: u64) -> Stash {
        self.per_gpu_batch = per_gpu_batch;
        self
    }

    /// Sets the dataset streamed in steps 3/4.
    #[must_use]
    pub fn with_dataset(mut self, dataset: DatasetSpec) -> Stash {
        self.dataset = dataset;
        self
    }

    /// Overrides the number of samples in the profiled epoch (defaults to
    /// the dataset size).
    #[must_use]
    pub fn with_epoch_samples(mut self, samples: u64) -> Stash {
        self.epoch_samples = Some(samples);
        self
    }

    /// Overrides how many iterations each step simulates before
    /// extrapolating.
    #[must_use]
    pub fn with_sampled_iterations(mut self, iterations: u64) -> Stash {
        self.sampled_iterations = iterations.max(1);
        self
    }

    /// Sets the gradient bucketing policy.
    #[must_use]
    pub fn with_bucketing(mut self, bucketing: Bucketing) -> Stash {
        self.bucketing = bucketing;
        self
    }

    /// Sets the collective algorithm.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Stash {
        self.algorithm = algorithm;
        self
    }

    /// Sets the numeric precision (fp32 default; AMP halves gradient
    /// traffic and engages tensor cores).
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Stash {
        self.precision = precision;
        self
    }

    /// The model being profiled.
    #[must_use]
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// The configured per-GPU batch size.
    #[must_use]
    pub fn per_gpu_batch(&self) -> u64 {
        self.per_gpu_batch
    }

    /// The dataset streamed in steps 3/4.
    #[must_use]
    pub fn dataset(&self) -> &DatasetSpec {
        &self.dataset
    }

    /// Iterations simulated per step before extrapolating.
    #[must_use]
    pub fn sampled_iterations(&self) -> u64 {
        self.sampled_iterations
    }

    /// The configured epoch-size override, if any.
    #[must_use]
    pub fn epoch_samples_override(&self) -> Option<u64> {
        self.epoch_samples
    }

    fn epoch_samples(&self) -> u64 {
        self.epoch_samples.unwrap_or(self.dataset.num_samples)
    }

    fn base_config(&self, cluster: ClusterSpec, samples_per_gpu: u64) -> TrainConfig {
        TrainConfig {
            cluster,
            model: self.model.clone(),
            per_gpu_batch: self.per_gpu_batch,
            data: DataMode::Synthetic,
            bucketing: self.bucketing,
            algorithm: self.algorithm,
            overlap: true,
            active: ActiveGpus::All,
            samples_per_gpu,
            epoch_mode: EpochMode::Sampled {
                iterations: self.sampled_iterations,
            },
            record_trace: false,
            precision: self.precision,
            grad_accumulation: 1,
            straggler: None,
        }
    }

    /// Finds the single-instance baseline for a multi-node cluster: the
    /// same-family catalog instance whose GPU count equals the cluster's
    /// total.
    ///
    /// # Errors
    ///
    /// [`ProfileError::NoReference`] when no such instance exists.
    pub fn reference_for(cluster: &ClusterSpec) -> Result<InstanceType, ProfileError> {
        if cluster.node_count() == 1 {
            return Ok(cluster.instances[0].clone());
        }
        let world = cluster.world_size();
        let family = cluster.instances[0].family;
        catalog()
            .into_iter()
            .find(|i| i.family == family && i.gpu_count == world)
            .ok_or(ProfileError::NoReference {
                world,
                family: family.to_string(),
            })
    }

    /// Builds the configs for measurement steps 1-4 (and 5 for multi-node
    /// clusters), in step order.
    fn step_configs(&self, cluster: &ClusterSpec, reference: &InstanceType) -> Vec<TrainConfig> {
        let world = cluster.world_size();
        let samples_per_gpu = (self.epoch_samples() / world as u64).max(self.per_gpu_batch);
        let ref_cluster = ClusterSpec::single(reference.clone());

        // Step 1: one GPU, synthetic, n/k samples.
        let mut step1 = self.base_config(ref_cluster.clone(), samples_per_gpu);
        step1.active = ActiveGpus::Single;

        // Step 2: all k GPUs of the reference instance, synthetic.
        let step2 = self.base_config(ref_cluster, samples_per_gpu);

        // Step 3: real data, cold caches, on the cluster under test.
        let mut step3 = self.base_config(cluster.clone(), samples_per_gpu);
        step3.data = DataMode::Real {
            dataset: self.dataset.clone(),
            cache: CacheState::Cold,
        };

        // Step 4: real data, warm caches.
        let mut step4 = self.base_config(cluster.clone(), samples_per_gpu);
        step4.data = DataMode::Real {
            dataset: self.dataset.clone(),
            cache: CacheState::Warm,
        };

        let mut configs = vec![step1, step2, step3, step4];
        // Step 5: synthetic across the network (multi-node only).
        if cluster.node_count() > 1 {
            configs.push(self.base_config(cluster.clone(), samples_per_gpu));
        }
        configs
    }

    /// Runs the full Stash methodology against `cluster`, with the five
    /// steps executed concurrently (they are independent simulations).
    ///
    /// Single-instance clusters get steps 1-4 (`t5 = None`); multi-node
    /// clusters additionally get step 5, with steps 1/2 measured on the
    /// same-family reference instance.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (e.g. out-of-memory) and
    /// [`ProfileError::NoReference`] for unreferenced multi-node shapes.
    pub fn profile(&self, cluster: &ClusterSpec) -> Result<StallReport, ProfileError> {
        self.profile_with(cluster, ExecMode::Parallel, None)
    }

    /// [`Stash::profile`] on the calling thread only — the original
    /// one-step-after-another execution, kept as the determinism baseline.
    ///
    /// # Errors
    ///
    /// As for [`Stash::profile`].
    pub fn profile_serial(&self, cluster: &ClusterSpec) -> Result<StallReport, ProfileError> {
        self.profile_with(cluster, ExecMode::Serial, None)
    }

    /// [`Stash::profile`] backed by a measurement cache: steps whose
    /// config was measured before (by any profile sharing `cache`) are
    /// answered without re-simulating.
    ///
    /// # Errors
    ///
    /// As for [`Stash::profile`].
    pub fn profile_cached(
        &self,
        cluster: &ClusterSpec,
        cache: &MeasurementCache,
    ) -> Result<StallReport, ProfileError> {
        self.profile_with(cluster, ExecMode::Parallel, Some(cache))
    }

    /// The fully explicit profiling entry point: chooses serial or
    /// parallel step execution and an optional measurement cache.
    ///
    /// All four combinations produce bit-identical reports: the engine is
    /// deterministic, steps are independent, results are assembled in step
    /// order, and on error the lowest-numbered failing step wins (exactly
    /// the error serial execution would have surfaced first).
    ///
    /// # Errors
    ///
    /// As for [`Stash::profile`].
    pub fn profile_with(
        &self,
        cluster: &ClusterSpec,
        mode: ExecMode,
        cache: Option<&MeasurementCache>,
    ) -> Result<StallReport, ProfileError> {
        match mode {
            ExecMode::Serial => {
                let mut arena = EngineArena::new();
                self.profile_serial_in(cluster, cache, &mut arena)
            }
            ExecMode::Parallel => {
                let reference = Self::reference_for(cluster)?;
                let configs = self.step_configs(cluster, &reference);
                let results: Vec<Result<SimDuration, ProfileError>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = configs
                        .iter()
                        .map(|cfg| {
                            scope.spawn(move || {
                                // Each step thread owns its arena (the
                                // engine's state is deliberately !Send).
                                let mut arena = EngineArena::new();
                                measure_in(cache, cfg, &mut arena)
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| match h.join() {
                            Ok(r) => r,
                            Err(_) => panic!("measurement step panicked"),
                        })
                        .collect()
                });
                let mut times: Vec<SimDuration> = Vec::with_capacity(configs.len());
                for r in results {
                    times.push(r?);
                }
                Ok(self.assemble_report(cluster, reference, &times))
            }
        }
    }

    /// Serial profile that measures every step inside a caller-owned
    /// [`EngineArena`]: the five-step measurement ladder reuses one flow
    /// network and event queue, and a sweep looping over many points can
    /// pass the same arena to every profile. Reports are bit-identical to
    /// the other execution modes.
    ///
    /// # Errors
    ///
    /// As for [`Stash::profile`].
    pub fn profile_serial_in(
        &self,
        cluster: &ClusterSpec,
        cache: Option<&MeasurementCache>,
        arena: &mut EngineArena,
    ) -> Result<StallReport, ProfileError> {
        let reference = Self::reference_for(cluster)?;
        let configs = self.step_configs(cluster, &reference);
        let mut times: Vec<SimDuration> = Vec::with_capacity(configs.len());
        for cfg in &configs {
            times.push(measure_in(cache, cfg, arena)?);
        }
        Ok(self.assemble_report(cluster, reference, &times))
    }

    fn assemble_report(
        &self,
        cluster: &ClusterSpec,
        reference: InstanceType,
        times: &[SimDuration],
    ) -> StallReport {
        StallReport {
            cluster: cluster.display_name(),
            reference: reference.name,
            model: self.model.name.clone(),
            per_gpu_batch: self.per_gpu_batch,
            world: cluster.world_size(),
            times: StepTimes {
                t1: Some(times[0]),
                t2: Some(times[1]),
                t3: Some(times[2]),
                t4: Some(times[3]),
                t5: times.get(4).copied(),
            },
        }
    }

    /// [`Stash::profile_serial`] with a trace recorder attached: every
    /// measurement step runs through the traced engine, scoped to its own
    /// process namespace (`t1` → process 1, ... `t5` → process 5) so the
    /// five independent simulations — each with its own clock starting at
    /// zero — stay distinguishable in one sink. Each step is additionally
    /// stamped as a span on its [`stash_trace::TrackKind::Profiler`] lane
    /// covering the step's (extrapolated) epoch time.
    ///
    /// The report is bit-identical to [`Stash::profile_serial`]; the
    /// tracer's process is restored to its previous value afterwards.
    ///
    /// # Errors
    ///
    /// As for [`Stash::profile`].
    pub fn profile_traced(
        &self,
        cluster: &ClusterSpec,
        tracer: &SharedTracer,
    ) -> Result<StallReport, ProfileError> {
        const STEP_NAMES: [&str; 5] = ["t1", "t2", "t3", "t4", "t5"];
        let reference = Self::reference_for(cluster)?;
        let configs = self.step_configs(cluster, &reference);
        let prior_process = tracer.borrow().process();

        let mut times: Vec<SimDuration> = Vec::with_capacity(configs.len());
        for (step, cfg) in configs.iter().enumerate() {
            tracer.borrow_mut().set_process(step as u32 + 1);
            let result = run_epoch_traced(cfg, tracer);
            let report = match result {
                Ok(r) => r,
                Err(e) => {
                    tracer.borrow_mut().set_process(prior_process);
                    return Err(e.into());
                }
            };
            tracer.borrow_mut().span(
                Track::profiler(step),
                Category::Solver,
                STEP_NAMES[step],
                SimTime::ZERO,
                SimTime::ZERO + report.epoch_time,
            );
            times.push(report.epoch_time);
        }
        tracer.borrow_mut().set_process(prior_process);

        Ok(StallReport {
            cluster: cluster.display_name(),
            reference: reference.name,
            model: self.model.name.clone(),
            per_gpu_batch: self.per_gpu_batch,
            world: cluster.world_size(),
            times: StepTimes {
                t1: Some(times[0]),
                t2: Some(times[1]),
                t3: Some(times[2]),
                t4: Some(times[3]),
                t5: times.get(4).copied(),
            },
        })
    }
}

/// Measures one step config inside `arena`, answering from `cache` when
/// possible. Host wall-clock per measurement feeds the step-wall
/// histogram (cache hits included — the point is what a step *costs*).
fn measure_in(
    cache: Option<&MeasurementCache>,
    cfg: &TrainConfig,
    arena: &mut EngineArena,
) -> Result<SimDuration, ProfileError> {
    let t0 = stash_telemetry::enabled().then(std::time::Instant::now);
    let out = match cache {
        Some(c) => c.epoch_time_in(cfg, arena),
        None => Ok(run_epoch_in(cfg, arena)?.epoch_time),
    };
    if let Some(t0) = t0 {
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        stash_telemetry::metrics::PROFILE_STEP_WALL_NS.record(ns);
    }
    out
}

/// A (profiler, cluster) pair to run as one unit of sweep work.
#[derive(Debug, Clone)]
pub struct ProfileJob {
    /// The configured profiler.
    pub stash: Stash,
    /// The cluster to characterize.
    pub cluster: ClusterSpec,
}

/// Profiles many (profiler, cluster) jobs across [`profile_threads`]
/// worker threads, returning one result per job in input order.
///
/// Each worker runs whole jobs with [`ExecMode::Serial`] steps — the
/// parallelism lives at the job level, so a sweep of dozens of
/// instance x batch x model points saturates the machine without
/// oversubscribing it with nested per-step threads. Passing a `cache`
/// additionally deduplicates measurements shared between jobs (e.g. the
/// reference-instance steps of multi-node points).
///
/// Results are bit-identical to profiling the jobs one by one: jobs are
/// independent, the engine is deterministic, and each result lands in its
/// job's slot regardless of completion order.
pub fn par_profile_many(
    jobs: &[ProfileJob],
    cache: Option<&MeasurementCache>,
) -> Vec<Result<StallReport, ProfileError>> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let workers = profile_threads().min(jobs.len().max(1));
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<StallReport, ProfileError>>>> =
        jobs.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                // One arena per worker: every job this worker claims
                // reuses the same simulator state (arenas are !Send, so
                // they are built inside the thread).
                let mut arena = EngineArena::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(i) else { break };
                    let result = job.stash.profile_serial_in(&job.cluster, cache, &mut arena);
                    match slots[i].lock() {
                        Ok(mut slot) => *slot = Some(result),
                        Err(_) => panic!("result slot poisoned"),
                    }
                }
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| match slot.into_inner() {
            Ok(Some(result)) => result,
            Ok(None) => panic!("worker skipped a job"),
            Err(_) => panic!("result slot poisoned"),
        })
        .collect()
}

/// The prior-work DS-Analyzer profiler: steps 2-4 only — it measures prep
/// (CPU) and fetch (disk) stalls but is blind to communication (the gap
/// Stash fills).
#[derive(Debug, Clone, Serialize)]
pub struct DsAnalyzer {
    inner: Stash,
}

impl DsAnalyzer {
    /// Creates the baseline profiler with the same defaults as [`Stash`].
    #[must_use]
    pub fn new(model: Model) -> DsAnalyzer {
        DsAnalyzer {
            inner: Stash::new(model),
        }
    }

    /// Sets the per-GPU batch size.
    #[must_use]
    pub fn with_batch(mut self, per_gpu_batch: u64) -> DsAnalyzer {
        self.inner = self.inner.with_batch(per_gpu_batch);
        self
    }

    /// Sets the dataset.
    #[must_use]
    pub fn with_dataset(mut self, dataset: DatasetSpec) -> DsAnalyzer {
        self.inner = self.inner.with_dataset(dataset);
        self
    }

    /// Overrides sampled iterations.
    #[must_use]
    pub fn with_sampled_iterations(mut self, iterations: u64) -> DsAnalyzer {
        self.inner = self.inner.with_sampled_iterations(iterations);
        self
    }

    /// Profiles `instance` with DS-Analyzer's steps 2-4 only: the report
    /// carries CPU and disk stalls; `t1`/`t5` stay `None`, so interconnect
    /// and network stalls are unavailable.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn profile(&self, instance: InstanceType) -> Result<StallReport, ProfileError> {
        self.profile_with(instance, ExecMode::Parallel, None)
    }

    /// [`DsAnalyzer::profile`] with explicit execution mode and optional
    /// measurement cache, mirroring [`Stash::profile_with`].
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn profile_with(
        &self,
        instance: InstanceType,
        mode: ExecMode,
        cache: Option<&MeasurementCache>,
    ) -> Result<StallReport, ProfileError> {
        let cluster = ClusterSpec::single(instance);
        let mut report = self.inner.profile_with(&cluster, mode, cache)?;
        report.times.t1 = None;
        report.times.t5 = None;
        Ok(report)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use stash_dnn::zoo;
    use stash_hwtopo::instance::{p2_16xlarge, p3_16xlarge, p3_2xlarge, p3_8xlarge};

    fn quick(model: Model) -> Stash {
        Stash::new(model)
            .with_sampled_iterations(3)
            .with_epoch_samples(20_000)
    }

    #[test]
    fn single_instance_report_has_no_t5() {
        let r = quick(zoo::alexnet())
            .profile(&ClusterSpec::single(p3_16xlarge()))
            .unwrap();
        assert!(r.times.t5.is_none());
        assert!(r.interconnect_stall_pct().is_some());
        assert!(r.network_stall_pct().is_none());
        assert_eq!(r.world, 8);
        assert_eq!(r.reference, "p3.16xlarge");
    }

    #[test]
    fn multi_node_uses_family_reference() {
        let r = quick(zoo::alexnet())
            .profile(&ClusterSpec::homogeneous(p3_8xlarge(), 2))
            .unwrap();
        assert_eq!(r.reference, "p3.16xlarge");
        assert!(r.times.t5.is_some());
        let nw = r.network_stall_pct().unwrap();
        assert!(nw > 0.0, "network stall must be positive, got {nw}");
    }

    #[test]
    fn unreferenced_multi_node_shape_errors() {
        let cluster = ClusterSpec::homogeneous(p3_16xlarge(), 3); // 24 GPUs
        match quick(zoo::alexnet()).profile(&cluster) {
            Err(ProfileError::NoReference { world: 24, .. }) => {}
            other => panic!("expected NoReference, got {other:?}"),
        }
    }

    #[test]
    fn single_gpu_instance_has_zero_interconnect_stall() {
        let r = quick(zoo::alexnet())
            .profile(&ClusterSpec::single(p3_2xlarge()))
            .unwrap();
        assert!(r.interconnect_stall_pct().unwrap() < 1e-9);
    }

    #[test]
    fn p2_16x_interconnect_stall_is_severe() {
        let r = quick(zoo::resnet18())
            .profile(&ClusterSpec::single(p2_16xlarge()))
            .unwrap();
        let ic = r.interconnect_stall_pct().unwrap();
        assert!(ic > 25.0, "expected substantial PCIe stall, got {ic}%");
    }

    #[test]
    fn cpu_stall_is_negligible_on_aws() {
        // Headline finding: vCPUs keep up on AWS.
        let r = quick(zoo::resnet18())
            .profile(&ClusterSpec::single(p3_16xlarge()))
            .unwrap();
        let cpu = r.cpu_stall_pct().unwrap();
        assert!(cpu < 15.0, "CPU stall should be small, got {cpu}%");
    }

    #[test]
    fn serial_and_parallel_profiles_are_bit_identical() {
        let stash = quick(zoo::resnet18());
        let cluster = ClusterSpec::homogeneous(p3_8xlarge(), 2);
        let serial = stash.profile_serial(&cluster).unwrap();
        let parallel = stash.profile(&cluster).unwrap();
        assert_eq!(serial, parallel);
    }

    #[test]
    fn cached_profile_is_bit_identical_and_hits_on_rerun() {
        let cache = crate::cache::MeasurementCache::new();
        let stash = quick(zoo::resnet18());
        let cluster = ClusterSpec::single(p3_16xlarge());
        let uncached = stash.profile_serial(&cluster).unwrap();
        let cold = stash.profile_cached(&cluster, &cache).unwrap();
        let warm = stash.profile_cached(&cluster, &cache).unwrap();
        assert_eq!(uncached, cold);
        assert_eq!(cold, warm);
        let stats = cache.stats();
        assert_eq!(stats.misses, 4, "first run simulates all four steps");
        assert_eq!(stats.hits, 4, "second run is fully cached");
    }

    #[test]
    fn traced_profile_matches_serial_and_stamps_steps() {
        use stash_trace::{shared, JsonSink, Tracer, TrackKind};
        use std::cell::RefCell;
        use std::rc::Rc;

        let stash = quick(zoo::alexnet());
        let cluster = ClusterSpec::homogeneous(p3_8xlarge(), 2);
        let serial = stash.profile_serial(&cluster).unwrap();
        let sink = Rc::new(RefCell::new(JsonSink::new()));
        let tracer = shared(Tracer::new(sink.clone()));
        let traced = stash.profile_traced(&cluster, &tracer).unwrap();
        assert_eq!(serial, traced);

        let events = sink.borrow().events().to_vec();
        let stamps: Vec<u32> = events
            .iter()
            .filter(|(_, e)| e.track().kind == TrackKind::Profiler)
            .map(|(p, _)| *p)
            .collect();
        assert_eq!(stamps, vec![1, 2, 3, 4, 5], "five steps, one stamp each");
        assert!(
            events
                .iter()
                .any(|(p, e)| *p == 3 && e.track().kind == TrackKind::Gpu),
            "step 3's engine events are namespaced to process 3"
        );
        assert_eq!(tracer.borrow().process(), 0, "process scope restored");
    }

    #[test]
    fn par_profile_many_matches_sequential_profiles() {
        let jobs: Vec<ProfileJob> = [p3_8xlarge(), p3_16xlarge(), p3_2xlarge()]
            .into_iter()
            .map(|inst| ProfileJob {
                stash: quick(zoo::alexnet()),
                cluster: ClusterSpec::single(inst),
            })
            .collect();
        let fanned = par_profile_many(&jobs, None);
        assert_eq!(fanned.len(), jobs.len());
        for (job, got) in jobs.iter().zip(&fanned) {
            let want = job.stash.profile_serial(&job.cluster).unwrap();
            assert_eq!(got.as_ref().unwrap(), &want);
        }
    }

    #[test]
    fn par_profile_many_shares_reference_steps_through_cache() {
        // p3.8xlarge x2 resolves its steps 1/2 on the p3.16xlarge
        // reference, which the single p3.16xlarge job also measures.
        let cache = crate::cache::MeasurementCache::new();
        let jobs = vec![
            ProfileJob {
                stash: quick(zoo::alexnet()),
                cluster: ClusterSpec::single(p3_16xlarge()),
            },
            ProfileJob {
                stash: quick(zoo::alexnet()),
                cluster: ClusterSpec::homogeneous(p3_8xlarge(), 2),
            },
        ];
        let results = par_profile_many(&jobs, Some(&cache));
        assert!(results.iter().all(Result::is_ok));
        assert!(
            cache.stats().hits >= 2,
            "reference steps must be shared, stats: {:?}",
            cache.stats()
        );
    }

    #[test]
    fn profile_threads_honors_env_override() {
        // Temp-env style: the test process may run others concurrently, so
        // restore whatever was set.
        let prior = std::env::var("STASH_BENCH_THREADS").ok();
        std::env::set_var("STASH_BENCH_THREADS", "3");
        assert_eq!(profile_threads(), 3);
        std::env::set_var("STASH_BENCH_THREADS", "0");
        assert_eq!(profile_threads(), 1);
        match prior {
            Some(v) => std::env::set_var("STASH_BENCH_THREADS", v),
            None => std::env::remove_var("STASH_BENCH_THREADS"),
        }
    }

    #[test]
    fn ds_analyzer_misses_communication() {
        let r = DsAnalyzer::new(zoo::resnet18())
            .with_sampled_iterations(3)
            .profile(p2_16xlarge())
            .unwrap();
        assert!(r.interconnect_stall_pct().is_none());
        assert!(r.cpu_stall_pct().is_some());
        assert!(r.disk_stall_pct().is_some());
    }
}
