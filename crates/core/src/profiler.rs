//! The Stash profiler (paper §IV-B).
//!
//! [`Stash`] orchestrates the five measurement steps against the training
//! engine:
//!
//! 1. synthetic data on **one** GPU of the reference instance (`n/k`
//!    samples) → `T1`;
//! 2. synthetic data on **all** `k` GPUs of the reference instance → `T2`;
//! 3. real data with caches cleared → `T3`;
//! 4. real data fully cached → `T4`;
//! 5. synthetic data across the multi-instance cluster (same `k` total
//!    GPUs) → `T5`.
//!
//! Steps 2-4 are the prior-work DS-Analyzer subset ([`DsAnalyzer`]); steps
//! 1 and 5 are Stash's contribution — the communication stalls.

use serde::Serialize;
use stash_collectives::bucket::Bucketing;
use stash_collectives::schedule::Algorithm;
use stash_datapipe::cache::CacheState;
use stash_ddl::config::{ActiveGpus, DataMode, EpochMode, TrainConfig};
use stash_ddl::engine::run_epoch;
use stash_dnn::dataset::DatasetSpec;
use stash_dnn::model::Model;
use stash_gpucompute::precision::Precision;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::instance::{catalog, InstanceType};

use crate::error::ProfileError;
use crate::report::{StallReport, StepTimes};

/// Default number of iterations simulated per step (the paper exploits
/// DL's repetitiveness the same way: one epoch characterizes training).
pub const DEFAULT_SAMPLED_ITERATIONS: u64 = 25;

/// The Stash profiler: configured once per (model, dataset, batch), then
/// pointed at cluster configurations.
///
/// # Examples
///
/// ```
/// use stash_core::profiler::Stash;
/// use stash_dnn::zoo;
/// use stash_hwtopo::prelude::*;
///
/// let stash = Stash::new(zoo::resnet18()).with_batch(32);
/// let report = stash.profile(&ClusterSpec::single(p3_16xlarge()))?;
/// assert!(report.interconnect_stall_pct().is_some());
/// # Ok::<(), stash_core::error::ProfileError>(())
/// ```
#[derive(Debug, Clone, Serialize)]
pub struct Stash {
    model: Model,
    dataset: DatasetSpec,
    per_gpu_batch: u64,
    epoch_samples: Option<u64>,
    sampled_iterations: u64,
    bucketing: Bucketing,
    algorithm: Algorithm,
    precision: Precision,
}

impl Stash {
    /// Creates a profiler for `model` with paper defaults: ImageNet-1k,
    /// batch 32, ring all-reduce, per-layer buckets.
    #[must_use]
    pub fn new(model: Model) -> Stash {
        Stash {
            model,
            dataset: DatasetSpec::imagenet1k(),
            per_gpu_batch: 32,
            epoch_samples: None,
            sampled_iterations: DEFAULT_SAMPLED_ITERATIONS,
            bucketing: Bucketing::PerLayer,
            algorithm: Algorithm::Ring,
            precision: Precision::Fp32,
        }
    }

    /// Sets the per-GPU batch size.
    #[must_use]
    pub fn with_batch(mut self, per_gpu_batch: u64) -> Stash {
        self.per_gpu_batch = per_gpu_batch;
        self
    }

    /// Sets the dataset streamed in steps 3/4.
    #[must_use]
    pub fn with_dataset(mut self, dataset: DatasetSpec) -> Stash {
        self.dataset = dataset;
        self
    }

    /// Overrides the number of samples in the profiled epoch (defaults to
    /// the dataset size).
    #[must_use]
    pub fn with_epoch_samples(mut self, samples: u64) -> Stash {
        self.epoch_samples = Some(samples);
        self
    }

    /// Overrides how many iterations each step simulates before
    /// extrapolating.
    #[must_use]
    pub fn with_sampled_iterations(mut self, iterations: u64) -> Stash {
        self.sampled_iterations = iterations.max(1);
        self
    }

    /// Sets the gradient bucketing policy.
    #[must_use]
    pub fn with_bucketing(mut self, bucketing: Bucketing) -> Stash {
        self.bucketing = bucketing;
        self
    }

    /// Sets the collective algorithm.
    #[must_use]
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Stash {
        self.algorithm = algorithm;
        self
    }

    /// Sets the numeric precision (fp32 default; AMP halves gradient
    /// traffic and engages tensor cores).
    #[must_use]
    pub fn with_precision(mut self, precision: Precision) -> Stash {
        self.precision = precision;
        self
    }

    /// The model being profiled.
    #[must_use]
    pub fn model(&self) -> &Model {
        &self.model
    }

    fn epoch_samples(&self) -> u64 {
        self.epoch_samples.unwrap_or(self.dataset.num_samples)
    }

    fn base_config(&self, cluster: ClusterSpec, samples_per_gpu: u64) -> TrainConfig {
        TrainConfig {
            cluster,
            model: self.model.clone(),
            per_gpu_batch: self.per_gpu_batch,
            data: DataMode::Synthetic,
            bucketing: self.bucketing,
            algorithm: self.algorithm,
            overlap: true,
            active: ActiveGpus::All,
            samples_per_gpu,
            epoch_mode: EpochMode::Sampled {
                iterations: self.sampled_iterations,
            },
            record_trace: false,
            precision: self.precision,
            grad_accumulation: 1,
            straggler: None,
        }
    }

    /// Finds the single-instance baseline for a multi-node cluster: the
    /// same-family catalog instance whose GPU count equals the cluster's
    /// total.
    ///
    /// # Errors
    ///
    /// [`ProfileError::NoReference`] when no such instance exists.
    pub fn reference_for(cluster: &ClusterSpec) -> Result<InstanceType, ProfileError> {
        if cluster.node_count() == 1 {
            return Ok(cluster.instances[0].clone());
        }
        let world = cluster.world_size();
        let family = cluster.instances[0].family;
        catalog()
            .into_iter()
            .find(|i| i.family == family && i.gpu_count == world)
            .ok_or(ProfileError::NoReference {
                world,
                family: family.to_string(),
            })
    }

    /// Runs the full Stash methodology against `cluster`.
    ///
    /// Single-instance clusters get steps 1-4 (`t5 = None`); multi-node
    /// clusters additionally get step 5, with steps 1/2 measured on the
    /// same-family reference instance.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (e.g. out-of-memory) and
    /// [`ProfileError::NoReference`] for unreferenced multi-node shapes.
    pub fn profile(&self, cluster: &ClusterSpec) -> Result<StallReport, ProfileError> {
        let reference = Self::reference_for(cluster)?;
        let world = cluster.world_size();
        let samples_per_gpu = (self.epoch_samples() / world as u64).max(self.per_gpu_batch);
        let ref_cluster = ClusterSpec::single(reference.clone());

        // Step 1: one GPU, synthetic, n/k samples.
        let mut step1 = self.base_config(ref_cluster.clone(), samples_per_gpu);
        step1.active = ActiveGpus::Single;
        let t1 = run_epoch(&step1)?.epoch_time;

        // Step 2: all k GPUs of the reference instance, synthetic.
        let step2 = self.base_config(ref_cluster, samples_per_gpu);
        let t2 = run_epoch(&step2)?.epoch_time;

        // Step 3: real data, cold caches, on the cluster under test.
        let mut step3 = self.base_config(cluster.clone(), samples_per_gpu);
        step3.data = DataMode::Real {
            dataset: self.dataset.clone(),
            cache: CacheState::Cold,
        };
        let t3 = run_epoch(&step3)?.epoch_time;

        // Step 4: real data, warm caches.
        let mut step4 = self.base_config(cluster.clone(), samples_per_gpu);
        step4.data = DataMode::Real {
            dataset: self.dataset.clone(),
            cache: CacheState::Warm,
        };
        let t4 = run_epoch(&step4)?.epoch_time;

        // Step 5: synthetic across the network (multi-node only).
        let t5 = if cluster.node_count() > 1 {
            let step5 = self.base_config(cluster.clone(), samples_per_gpu);
            Some(run_epoch(&step5)?.epoch_time)
        } else {
            None
        };

        Ok(StallReport {
            cluster: cluster.display_name(),
            reference: reference.name,
            model: self.model.name.clone(),
            per_gpu_batch: self.per_gpu_batch,
            world,
            times: StepTimes {
                t1: Some(t1),
                t2: Some(t2),
                t3: Some(t3),
                t4: Some(t4),
                t5,
            },
        })
    }
}

/// The prior-work DS-Analyzer profiler: steps 2-4 only — it measures prep
/// (CPU) and fetch (disk) stalls but is blind to communication (the gap
/// Stash fills).
#[derive(Debug, Clone, Serialize)]
pub struct DsAnalyzer {
    inner: Stash,
}

impl DsAnalyzer {
    /// Creates the baseline profiler with the same defaults as [`Stash`].
    #[must_use]
    pub fn new(model: Model) -> DsAnalyzer {
        DsAnalyzer {
            inner: Stash::new(model),
        }
    }

    /// Sets the per-GPU batch size.
    #[must_use]
    pub fn with_batch(mut self, per_gpu_batch: u64) -> DsAnalyzer {
        self.inner = self.inner.with_batch(per_gpu_batch);
        self
    }

    /// Sets the dataset.
    #[must_use]
    pub fn with_dataset(mut self, dataset: DatasetSpec) -> DsAnalyzer {
        self.inner = self.inner.with_dataset(dataset);
        self
    }

    /// Overrides sampled iterations.
    #[must_use]
    pub fn with_sampled_iterations(mut self, iterations: u64) -> DsAnalyzer {
        self.inner = self.inner.with_sampled_iterations(iterations);
        self
    }

    /// Profiles `instance` with DS-Analyzer's steps 2-4 only: the report
    /// carries CPU and disk stalls; `t1`/`t5` stay `None`, so interconnect
    /// and network stalls are unavailable.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn profile(&self, instance: InstanceType) -> Result<StallReport, ProfileError> {
        let cluster = ClusterSpec::single(instance);
        let mut report = self.inner.profile(&cluster)?;
        report.times.t1 = None;
        report.times.t5 = None;
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stash_dnn::zoo;
    use stash_hwtopo::instance::{p2_16xlarge, p3_16xlarge, p3_2xlarge, p3_8xlarge};

    fn quick(model: Model) -> Stash {
        Stash::new(model)
            .with_sampled_iterations(3)
            .with_epoch_samples(20_000)
    }

    #[test]
    fn single_instance_report_has_no_t5() {
        let r = quick(zoo::alexnet())
            .profile(&ClusterSpec::single(p3_16xlarge()))
            .unwrap();
        assert!(r.times.t5.is_none());
        assert!(r.interconnect_stall_pct().is_some());
        assert!(r.network_stall_pct().is_none());
        assert_eq!(r.world, 8);
        assert_eq!(r.reference, "p3.16xlarge");
    }

    #[test]
    fn multi_node_uses_family_reference() {
        let r = quick(zoo::alexnet())
            .profile(&ClusterSpec::homogeneous(p3_8xlarge(), 2))
            .unwrap();
        assert_eq!(r.reference, "p3.16xlarge");
        assert!(r.times.t5.is_some());
        let nw = r.network_stall_pct().unwrap();
        assert!(nw > 0.0, "network stall must be positive, got {nw}");
    }

    #[test]
    fn unreferenced_multi_node_shape_errors() {
        let cluster = ClusterSpec::homogeneous(p3_16xlarge(), 3); // 24 GPUs
        match quick(zoo::alexnet()).profile(&cluster) {
            Err(ProfileError::NoReference { world: 24, .. }) => {}
            other => panic!("expected NoReference, got {other:?}"),
        }
    }

    #[test]
    fn single_gpu_instance_has_zero_interconnect_stall() {
        let r = quick(zoo::alexnet())
            .profile(&ClusterSpec::single(p3_2xlarge()))
            .unwrap();
        assert!(r.interconnect_stall_pct().unwrap() < 1e-9);
    }

    #[test]
    fn p2_16x_interconnect_stall_is_severe() {
        let r = quick(zoo::resnet18())
            .profile(&ClusterSpec::single(p2_16xlarge()))
            .unwrap();
        let ic = r.interconnect_stall_pct().unwrap();
        assert!(ic > 25.0, "expected substantial PCIe stall, got {ic}%");
    }

    #[test]
    fn cpu_stall_is_negligible_on_aws() {
        // Headline finding: vCPUs keep up on AWS.
        let r = quick(zoo::resnet18())
            .profile(&ClusterSpec::single(p3_16xlarge()))
            .unwrap();
        let cpu = r.cpu_stall_pct().unwrap();
        assert!(cpu < 15.0, "CPU stall should be small, got {cpu}%");
    }

    #[test]
    fn ds_analyzer_misses_communication() {
        let r = DsAnalyzer::new(zoo::resnet18())
            .with_sampled_iterations(3)
            .profile(p2_16xlarge())
            .unwrap();
        assert!(r.interconnect_stall_pct().is_none());
        assert!(r.cpu_stall_pct().is_some());
        assert!(r.disk_stall_pct().is_some());
    }
}
