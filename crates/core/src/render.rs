//! Markdown rendering of stall reports.
//!
//! The characterization is meant to be *published* (README tables, wiki
//! pages, the paper's own tables); this module renders collections of
//! [`StallReport`]s as GitHub-flavoured markdown so the database can go
//! straight into documentation.

use std::fmt::Write as _;

use crate::report::StallReport;

fn cell(p: Option<f64>) -> String {
    p.map_or_else(|| "–".to_string(), |v| format!("{v:.1}%"))
}

/// Renders one report as a markdown definition block.
#[must_use]
pub fn report_markdown(r: &StallReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "### {} — {} (batch {} × {} GPUs)\n",
        r.cluster, r.model, r.per_gpu_batch, r.world
    );
    let _ = writeln!(out, "| stall | value |");
    let _ = writeln!(out, "|-------|-------|");
    let _ = writeln!(
        out,
        "| interconnect | {} |",
        cell(r.interconnect_stall_pct())
    );
    let _ = writeln!(out, "| network | {} |", cell(r.network_stall_pct()));
    let _ = writeln!(out, "| CPU (prep) | {} |", cell(r.cpu_stall_pct()));
    let _ = writeln!(out, "| disk (fetch) | {} |", cell(r.disk_stall_pct()));
    if let Some(t) = r.training_epoch_time() {
        let _ = writeln!(out, "| epoch (steady state) | {t} |");
    }
    out
}

/// Renders many reports as one comparison grid, one row per report.
#[must_use]
pub fn comparison_markdown(title: &str, reports: &[StallReport]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## {title}\n");
    let _ = writeln!(
        out,
        "| cluster | model | batch | I/C | N/W | CPU | disk | epoch |"
    );
    let _ = writeln!(
        out,
        "|---------|-------|-------|-----|-----|-----|------|-------|"
    );
    for r in reports {
        let epoch = r
            .training_epoch_time()
            .map_or_else(|| "–".to_string(), |t| t.to_string());
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} | {} |",
            r.cluster,
            r.model,
            r.per_gpu_batch,
            cell(r.interconnect_stall_pct()),
            cell(r.network_stall_pct()),
            cell(r.cpu_stall_pct()),
            cell(r.disk_stall_pct()),
            epoch,
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::StepTimes;
    use stash_simkit::time::SimDuration;

    fn sample() -> StallReport {
        StallReport {
            cluster: "p3.8xlarge*2".into(),
            reference: "p3.16xlarge".into(),
            model: "ResNet18".into(),
            per_gpu_batch: 32,
            world: 8,
            times: StepTimes {
                t1: Some(SimDuration::from_secs(100)),
                t2: Some(SimDuration::from_secs(110)),
                t3: Some(SimDuration::from_secs(150)),
                t4: Some(SimDuration::from_secs(120)),
                t5: Some(SimDuration::from_secs(300)),
            },
        }
    }

    #[test]
    fn single_report_renders_all_stalls() {
        let md = report_markdown(&sample());
        assert!(md.contains("### p3.8xlarge*2 — ResNet18"));
        assert!(md.contains("| interconnect | 10.0% |"));
        assert!(md.contains("| network | 172.7% |"));
        assert!(md.contains("epoch (steady state)"));
    }

    #[test]
    fn comparison_grid_has_one_row_per_report() {
        let md = comparison_markdown("sweep", &[sample(), sample()]);
        assert_eq!(md.matches("| p3.8xlarge*2 |").count(), 2);
        assert!(md.starts_with("## sweep"));
    }

    #[test]
    fn missing_steps_render_as_dashes() {
        let mut r = sample();
        r.times.t1 = None;
        r.times.t5 = None;
        let md = report_markdown(&r);
        assert!(md.contains("| interconnect | – |"));
        assert!(md.contains("| network | – |"));
    }
}
