//! A Srifty-style throughput predictor, for the paper's §VI-B comparison.
//!
//! Srifty (MLSys'22) finds cost-optimal VM configurations by *predicting*
//! DDL throughput from (a) a compute profile of the model and (b) an
//! extensive **grid probe** of network/interconnect bandwidth across
//! buffer sizes, world sizes and instance types — ~40 000 measurements on
//! rented VMs. The paper's point is that this probing bill is real money
//! and must be charged against the recommendation quality, whereas Stash's
//! characterization transfers to users for free.
//!
//! This module reproduces that trade-off: [`grid_probe`] performs the
//! measurement sweep (against our simulated cloud, billing simulated
//! dollars), [`SriftyPredictor::predict_throughput`] applies the classic
//! `max(compute, communication)` pipeline bound, and
//! [`compare`] scores prediction vs the full engine.

use std::collections::HashMap;

use serde::Serialize;
use stash_collectives::schedule::ring_duration_estimate;
use stash_ddl::config::TrainConfig;
use stash_ddl::engine::run_epoch;
use stash_ddl::error::TrainError;
use stash_dnn::model::Model;
use stash_flowsim::net::FlowNet;
use stash_gpucompute::kernel::ComputeModel;
use stash_hwtopo::cluster::ClusterSpec;
use stash_hwtopo::topology::Topology;
use stash_simkit::time::SimDuration;

/// One bandwidth probe: all-reduce `buffer_bytes` across `cluster`.
#[derive(Debug, Clone, Serialize)]
pub struct ProbeMeasurement {
    /// Cluster probed.
    pub cluster: String,
    /// All-reduced buffer size, bytes.
    pub buffer_bytes: f64,
    /// Measured collective duration.
    pub duration: SimDuration,
}

/// The bill for a probing campaign.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ProbeCost {
    /// Number of measurements taken.
    pub measurements: usize,
    /// VM-hours rented (including per-cluster cold-start setup).
    pub vm_hours: f64,
    /// Money spent, USD.
    pub usd: f64,
}

/// Per-measurement repetitions a real campaign would run.
const PROBE_REPEATS: usize = 5;
/// VM cold-start + cluster setup charged per probed configuration, hours.
const SETUP_HOURS: f64 = 0.2;

/// Probes every `(cluster, buffer size)` combination, like Srifty's grid
/// sweep, and returns the measurements plus the rental bill.
#[must_use]
pub fn grid_probe(
    clusters: &[ClusterSpec],
    buffer_sizes: &[f64],
) -> (Vec<ProbeMeasurement>, ProbeCost) {
    let mut measurements = Vec::new();
    let mut vm_hours = 0.0;
    let mut usd = 0.0;
    for cluster in clusters {
        let mut net = FlowNet::new();
        let topo = Topology::build(cluster, &mut net);
        let mut cluster_seconds = 0.0;
        for &bytes in buffer_sizes {
            let duration = ring_duration_estimate(&topo, &net, bytes);
            cluster_seconds += duration.as_secs_f64() * PROBE_REPEATS as f64;
            measurements.push(ProbeMeasurement {
                cluster: cluster.display_name(),
                buffer_bytes: bytes,
                duration,
            });
        }
        let hours = SETUP_HOURS + cluster_seconds / 3600.0;
        vm_hours += hours;
        usd += hours * cluster.price_per_hour();
    }
    let cost = ProbeCost {
        measurements: measurements.len() * PROBE_REPEATS,
        vm_hours,
        usd,
    };
    (measurements, cost)
}

/// Predicts throughput from probes + a compute profile (no end-to-end
/// runs), Srifty-style.
#[derive(Debug, Clone, Serialize)]
pub struct SriftyPredictor {
    probes: HashMap<String, Vec<(f64, f64)>>,
}

impl SriftyPredictor {
    /// Fits the predictor to a probing campaign.
    #[must_use]
    pub fn fit(measurements: &[ProbeMeasurement]) -> SriftyPredictor {
        let mut probes: HashMap<String, Vec<(f64, f64)>> = HashMap::new();
        for m in measurements {
            probes
                .entry(m.cluster.clone())
                .or_default()
                .push((m.buffer_bytes, m.duration.as_secs_f64()));
        }
        for series in probes.values_mut() {
            series.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        SriftyPredictor { probes }
    }

    /// Interpolates the collective duration for `bytes` on `cluster`, or
    /// `None` when the configuration was never probed (Srifty's blind spot
    /// the paper calls out: unprobed regions need new campaigns).
    #[must_use]
    pub fn comm_seconds(&self, cluster: &str, bytes: f64) -> Option<f64> {
        let series = self.probes.get(cluster)?;
        match series.iter().position(|(b, _)| *b >= bytes) {
            Some(0) => Some(series[0].1),
            Some(i) => {
                let (b0, t0) = series[i - 1];
                let (b1, t1) = series[i];
                Some(t0 + (t1 - t0) * (bytes - b0) / (b1 - b0))
            }
            None => {
                // Extrapolate from the last two points.
                let n = series.len();
                if n < 2 {
                    return Some(series[0].1);
                }
                let (b0, t0) = series[n - 2];
                let (b1, t1) = series[n - 1];
                Some(t1 + (t1 - t0) * (bytes - b1) / (b1 - b0))
            }
        }
    }

    /// Predicted aggregate throughput (samples/sec) of `model` on
    /// `cluster` at per-GPU `batch`: the pipeline bound
    /// `world · batch / max(compute, comm)`.
    #[must_use]
    pub fn predict_throughput(
        &self,
        cluster: &ClusterSpec,
        model: &Model,
        batch: u64,
    ) -> Option<f64> {
        let compute = cluster
            .instances
            .iter()
            .map(|i| {
                ComputeModel::new(i.gpu.spec())
                    .iteration_time(model, batch)
                    .as_secs_f64()
            })
            .fold(0.0_f64, f64::max);
        let comm = if cluster.world_size() > 1 {
            self.comm_seconds(&cluster.display_name(), model.gradient_bytes())?
        } else {
            0.0
        };
        let iter_seconds = compute.max(comm);
        Some(cluster.world_size() as f64 * batch as f64 / iter_seconds)
    }
}

/// Prediction vs. "ground truth" (the full engine) for one configuration.
#[derive(Debug, Clone, Serialize)]
pub struct Comparison {
    /// Cluster evaluated.
    pub cluster: String,
    /// Srifty-style prediction, samples/sec.
    pub predicted: f64,
    /// Engine-measured throughput, samples/sec.
    pub simulated: f64,
    /// `predicted / simulated`.
    pub ratio: f64,
}

/// Runs both the predictor and the engine on `cluster`.
///
/// # Errors
///
/// Propagates engine failures; returns `InvalidConfig` when the predictor
/// has no probe data for the cluster.
pub fn compare(
    predictor: &SriftyPredictor,
    cluster: &ClusterSpec,
    model: &Model,
    batch: u64,
) -> Result<Comparison, TrainError> {
    let predicted = predictor
        .predict_throughput(cluster, model, batch)
        .ok_or_else(|| {
            TrainError::InvalidConfig(format!("no probes for {}", cluster.display_name()))
        })?;
    let cfg = TrainConfig::synthetic(cluster.clone(), model.clone(), batch, batch * 50);
    let report = run_epoch(&cfg)?;
    Ok(Comparison {
        cluster: cluster.display_name(),
        predicted,
        simulated: report.throughput,
        ratio: predicted / report.throughput,
    })
}

/// The standard probe grid Srifty sweeps: powers of two from 1 MB to 1 GB.
#[must_use]
pub fn standard_buffer_grid() -> Vec<f64> {
    (0..=10)
        .map(|i| 1024.0 * 1024.0 * f64::from(1 << i))
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use stash_dnn::zoo;
    use stash_hwtopo::instance::{p3_16xlarge, p3_8xlarge};

    fn clusters() -> Vec<ClusterSpec> {
        vec![
            ClusterSpec::single(p3_16xlarge()),
            ClusterSpec::homogeneous(p3_8xlarge(), 2),
        ]
    }

    #[test]
    fn probing_costs_real_money() {
        let (m, cost) = grid_probe(&clusters(), &standard_buffer_grid());
        assert_eq!(m.len(), 22);
        assert_eq!(cost.measurements, 110);
        assert!(cost.usd > 0.0, "probing is never free: {cost:?}");
    }

    #[test]
    fn interpolation_is_monotone_in_bytes() {
        let (m, _) = grid_probe(&clusters(), &standard_buffer_grid());
        let p = SriftyPredictor::fit(&m);
        let name = "p3.8xlarge*2";
        let a = p.comm_seconds(name, 2e6).unwrap();
        let b = p.comm_seconds(name, 2e8).unwrap();
        assert!(b > a);
        assert!(p.comm_seconds("p9.999xlarge", 1e6).is_none());
    }

    #[test]
    fn prediction_is_within_2x_of_the_engine() {
        let (m, _) = grid_probe(&clusters(), &standard_buffer_grid());
        let p = SriftyPredictor::fit(&m);
        for cluster in clusters() {
            let c = compare(&p, &cluster, &zoo::resnet18(), 32).unwrap();
            assert!(
                (0.4..2.5).contains(&c.ratio),
                "{}: predicted {} vs simulated {}",
                c.cluster,
                c.predicted,
                c.simulated
            );
        }
    }

    #[test]
    fn extrapolation_beyond_the_grid_works() {
        let (m, _) = grid_probe(&clusters(), &standard_buffer_grid());
        let p = SriftyPredictor::fit(&m);
        // VGG11 gradients (531 MB) sit within the 1 GB grid; BERT (1.38 GB)
        // requires extrapolation.
        let t = p.comm_seconds("p3.8xlarge*2", zoo::bert_large().gradient_bytes());
        assert!(t.unwrap() > 0.0);
    }
}
