//! Storage volume models.
//!
//! Training data lives on an attached volume. The paper's experiments use
//! AWS *general purpose* (gp2) EBS volumes — explicitly called out as the
//! reason the 16xlarge instances suffer the worst fetch stalls ("The AWS
//! general purpose SSD used in our experiments is unable to keep up") —
//! except for the dedicated p3.24xlarge which ships local NVMe.

use serde::{Deserialize, Serialize};
use stash_simkit::time::SimDuration;

use crate::constants;

/// Kind of storage volume attached to an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageKind {
    /// General-purpose EBS (gp2) — the paper's default.
    Gp2,
    /// Instance-local NVMe (p3.24xlarge-class dedicated storage).
    LocalNvme,
}

/// Storage performance parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageSpec {
    /// Which volume kind.
    pub kind: StorageKind,
    /// Sustained sequential throughput, bytes/s.
    pub throughput_bps: f64,
    /// Per-sample random-read overhead (seek + dispatch).
    pub per_sample_latency: SimDuration,
}

impl StorageSpec {
    /// The gp2 volume used for the paper's training data.
    #[must_use]
    pub fn gp2() -> Self {
        StorageSpec {
            kind: StorageKind::Gp2,
            throughput_bps: constants::gp2_throughput_bps(),
            per_sample_latency: constants::SSD_PER_SAMPLE_LAT,
        }
    }

    /// Local NVMe storage (dedicated instances).
    #[must_use]
    pub fn local_nvme() -> Self {
        StorageSpec {
            kind: StorageKind::LocalNvme,
            throughput_bps: constants::local_nvme_throughput_bps(),
            per_sample_latency: SimDuration::from_micros(2),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nvme_outclasses_gp2() {
        let gp2 = StorageSpec::gp2();
        let nvme = StorageSpec::local_nvme();
        assert!(nvme.throughput_bps > gp2.throughput_bps);
        assert!(nvme.per_sample_latency < gp2.per_sample_latency);
    }
}
