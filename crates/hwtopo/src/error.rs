//! Typed errors for hardware-description validation.
//!
//! Instance catalogs usually come from the frozen Table I constructors,
//! but what-if scaling, CLI parsing, and (hostile) serialized specs can
//! produce arbitrary values. Validation rejects them with a typed error
//! instead of letting NaN bandwidths or zero-GPU nodes propagate into the
//! solver as silent nonsense.

use std::error::Error;
use std::fmt;

/// Why an instance or cluster description was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum TopoError {
    /// A numeric field of an instance was zero, negative, NaN or infinite.
    InvalidInstance {
        /// Instance name (may be empty for anonymous specs).
        instance: String,
        /// Which field was hostile.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The cluster itself is malformed (e.g. no instances at all).
    InvalidCluster(String),
}

impl fmt::Display for TopoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoError::InvalidInstance {
                instance,
                field,
                value,
            } => {
                let name = if instance.is_empty() {
                    "<unnamed>"
                } else {
                    instance.as_str()
                };
                write!(f, "invalid instance '{name}': {field} = {value}")
            }
            TopoError::InvalidCluster(msg) => write!(f, "invalid cluster: {msg}"),
        }
    }
}

impl Error for TopoError {}
