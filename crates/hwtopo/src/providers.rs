//! Other clouds' GPU offerings (extension beyond the paper).
//!
//! The paper's introduction names AWS, Azure and GCP but characterizes
//! only AWS. The same K80/V100 silicon is rented by the other two with
//! different slicing, networking and prices — so the profiler applies
//! unchanged. These catalogs follow the publicly documented
//! specifications of the paper's era (2022 list prices, East-US /
//! us-central1).

use crate::gpu::GpuModel;
use crate::instance::InstanceType;
use crate::interconnect::{Interconnect, Slicing};
use crate::storage::StorageSpec;
use crate::units::gib;

/// Azure `NC6` — 1x K80 half-board, the EC2 p2.xlarge analogue.
#[must_use]
pub fn azure_nc6() -> InstanceType {
    InstanceType {
        name: "azure.nc6".into(),
        family: "NC",
        gpu: GpuModel::K80,
        gpu_count: 1,
        vcpus: 6,
        interconnect: Interconnect::Pcie,
        main_memory_bytes: gib(56.0),
        network_gbps: 1.0,
        price_per_hour: 0.90,
        interconnect_scale: 1.0,
        storage: StorageSpec::gp2(),
    }
}

/// Azure `NC24` — 4x K80.
#[must_use]
pub fn azure_nc24() -> InstanceType {
    InstanceType {
        name: "azure.nc24".into(),
        family: "NC",
        gpu: GpuModel::K80,
        gpu_count: 4,
        vcpus: 24,
        interconnect: Interconnect::Pcie,
        main_memory_bytes: gib(224.0),
        network_gbps: 10.0,
        price_per_hour: 3.60,
        interconnect_scale: 1.0,
        storage: StorageSpec::gp2(),
    }
}

/// Azure `NC24s_v3` — 4x V100 with NVLink.
#[must_use]
pub fn azure_nc24s_v3() -> InstanceType {
    InstanceType {
        name: "azure.nc24s_v3".into(),
        family: "NCv3",
        gpu: GpuModel::V100,
        gpu_count: 4,
        vcpus: 24,
        interconnect: Interconnect::NvLink {
            slicing: Slicing::Full,
        },
        main_memory_bytes: gib(448.0),
        network_gbps: 24.0,
        price_per_hour: 12.24,
        interconnect_scale: 1.0,
        storage: StorageSpec::gp2(),
    }
}

/// GCP `n1` + 8x V100 attachment (`n1-standard-64` class host).
#[must_use]
pub fn gcp_n1_v100x8() -> InstanceType {
    InstanceType {
        name: "gcp.n1-v100x8".into(),
        family: "N1",
        gpu: GpuModel::V100,
        gpu_count: 8,
        vcpus: 64,
        interconnect: Interconnect::NvLink {
            slicing: Slicing::Full,
        },
        main_memory_bytes: gib(416.0),
        network_gbps: 32.0,
        price_per_hour: 23.12,
        interconnect_scale: 1.0,
        storage: StorageSpec::gp2(),
    }
}

/// GCP `n1` + 4x K80 attachment.
#[must_use]
pub fn gcp_n1_k80x4() -> InstanceType {
    InstanceType {
        name: "gcp.n1-k80x4".into(),
        family: "N1",
        gpu: GpuModel::K80,
        gpu_count: 4,
        vcpus: 32,
        interconnect: Interconnect::Pcie,
        main_memory_bytes: gib(208.0),
        network_gbps: 16.0,
        price_per_hour: 3.32,
        interconnect_scale: 1.0,
        storage: StorageSpec::gp2(),
    }
}

/// The non-AWS catalog.
#[must_use]
pub fn other_clouds() -> Vec<InstanceType> {
    vec![
        azure_nc6(),
        azure_nc24(),
        azure_nc24s_v3(),
        gcp_n1_k80x4(),
        gcp_n1_v100x8(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_consistent() {
        for inst in other_clouds() {
            assert!(inst.gpu_count > 0);
            assert!(inst.price_per_hour > 0.0);
            assert!(inst.vcpus >= inst.gpu_count, "{}", inst.name);
        }
    }

    #[test]
    fn names_are_provider_prefixed_and_unique() {
        let mut names: Vec<String> = other_clouds().into_iter().map(|i| i.name).collect();
        assert!(names
            .iter()
            .all(|n| n.starts_with("azure.") || n.starts_with("gcp.")));
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn same_silicon_same_spec() {
        // Azure's V100 is AWS's V100: the device model is shared, only the
        // packaging differs.
        assert_eq!(
            azure_nc24s_v3().gpu.spec().peak_flops,
            crate::instance::p3_8xlarge().gpu.spec().peak_flops
        );
    }
}
