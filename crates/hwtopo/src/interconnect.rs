//! Intra-instance interconnect models.
//!
//! The paper distinguishes three interconnect generations (Table I):
//! plain PCIe (P2), PCIe + NVLink crossbars (P3, Fig. 1) and NVSwitch
//! (P4). For the P3 NVLink crossbar, §V-B of the paper observes that
//! p3.8xlarge tenants may receive a *sub-optimally sliced* half of the
//! 8-GPU crossbar, forcing some GPU pairs onto PCIe — modelled here by
//! [`Slicing`].

use serde::{Deserialize, Serialize};

/// How an NVLink crossbar is carved up for a sub-machine-size instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Slicing {
    /// The tenant got a whole crossbar: every GPU pair is NVLink-connected.
    Full,
    /// The tenant's GPUs straddle two crossbars: pairs in different halves
    /// fall back to the PCIe host fabric. The paper theorizes this is what
    /// makes p3.8xlarge's interconnect stall anomalously high, so it is the
    /// default for sliced instances.
    #[default]
    Degraded,
}

/// The interconnect wiring of one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Interconnect {
    /// All GPU peer traffic crosses the shared PCIe host fabric (P2).
    Pcie,
    /// NVLink crossbar(s) carry peer traffic; PCIe carries host traffic
    /// (P3). `slicing` only matters when the instance holds fewer GPUs
    /// than a full crossbar pair (i.e. p3.8xlarge).
    NvLink {
        /// Crossbar allocation quality for sliced instances.
        slicing: Slicing,
    },
    /// NVSwitch all-to-all fabric (P4).
    NvSwitch,
}

impl Interconnect {
    /// Label matching the paper's Table I ("PCIe", "PCIe + NVLink", ...).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Interconnect::Pcie => "PCIe",
            Interconnect::NvLink { .. } => "PCIe + NVLink",
            Interconnect::NvSwitch => "NVSwitch",
        }
    }

    /// Whether GPU peer traffic can use NVLink-class links at all.
    #[must_use]
    pub fn has_nvlink(self) -> bool {
        !matches!(self, Interconnect::Pcie)
    }
}

/// Assigns each local GPU to a crossbar group. GPUs in the same group are
/// NVLink-connected; cross-group pairs depend on the interconnect:
/// full-size NVLink instances have inter-crossbar NVLink wiring (Fig. 1),
/// degraded slices fall back to PCIe.
#[must_use]
pub fn crossbar_groups(interconnect: Interconnect, gpu_count: usize) -> Vec<usize> {
    match interconnect {
        Interconnect::Pcie => vec![0; gpu_count],
        Interconnect::NvSwitch => vec![0; gpu_count],
        Interconnect::NvLink { slicing } => {
            if gpu_count >= 8 {
                // Full machine: two crossbars of four, but they are wired
                // together with NVLink (Fig. 1), so peer routing treats the
                // machine as one group.
                vec![0; gpu_count]
            } else if gpu_count <= 2 {
                vec![0; gpu_count]
            } else {
                match slicing {
                    Slicing::Full => vec![0; gpu_count],
                    Slicing::Degraded => {
                        // Half the GPUs landed on each physical crossbar.
                        (0..gpu_count)
                            .map(|g| usize::from(g >= gpu_count / 2))
                            .collect()
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pcie_is_one_group() {
        assert_eq!(crossbar_groups(Interconnect::Pcie, 16), vec![0; 16]);
    }

    #[test]
    fn full_nvlink_machine_is_one_group() {
        let ic = Interconnect::NvLink {
            slicing: Slicing::Degraded,
        };
        assert_eq!(crossbar_groups(ic, 8), vec![0; 8]);
    }

    #[test]
    fn degraded_slice_splits_in_half() {
        let ic = Interconnect::NvLink {
            slicing: Slicing::Degraded,
        };
        assert_eq!(crossbar_groups(ic, 4), vec![0, 0, 1, 1]);
    }

    #[test]
    fn full_slice_stays_together() {
        let ic = Interconnect::NvLink {
            slicing: Slicing::Full,
        };
        assert_eq!(crossbar_groups(ic, 4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn tiny_instances_trivially_grouped() {
        let ic = Interconnect::NvLink {
            slicing: Slicing::Degraded,
        };
        assert_eq!(crossbar_groups(ic, 1), vec![0]);
        assert_eq!(crossbar_groups(ic, 2), vec![0, 0]);
    }

    #[test]
    fn labels_match_table1() {
        assert_eq!(Interconnect::Pcie.label(), "PCIe");
        assert_eq!(
            Interconnect::NvLink {
                slicing: Slicing::Full
            }
            .label(),
            "PCIe + NVLink"
        );
        assert_eq!(Interconnect::NvSwitch.label(), "NVSwitch");
    }
}
