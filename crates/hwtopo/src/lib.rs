//! # stash-hwtopo — cloud hardware and instance models
//!
//! The hardware substrate standing in for AWS's GPU fleet: GPU device
//! specs, interconnect wiring (PCIe host fabric, NVLink crossbars,
//! NVSwitch), storage volumes, and the paper's Table I instance catalog.
//! [`topology::Topology`] lowers a [`cluster::ClusterSpec`] into
//! `stash-flowsim` links and answers routing queries for GPU peer traffic,
//! host-to-device copies and training-data reads.
//!
//! # Examples
//!
//! ```
//! use stash_hwtopo::prelude::*;
//! use stash_flowsim::net::FlowNet;
//!
//! let cluster = ClusterSpec::homogeneous(p3_8xlarge(), 2);
//! let mut net = FlowNet::new();
//! let topo = Topology::build(&cluster, &mut net);
//! assert_eq!(topo.world_size(), 8);
//! let hop = topo.gpu_route(GpuId { node: 0, local: 3 }, GpuId { node: 1, local: 0 });
//! assert!(!hop.is_empty());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cluster;
pub mod constants;
pub mod error;
pub mod gpu;
pub mod instance;
pub mod interconnect;
pub mod providers;
pub mod scaling;
pub mod storage;
pub mod topology;
pub mod units;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::cluster::ClusterSpec;
    pub use crate::error::TopoError;
    pub use crate::gpu::{GpuModel, GpuSpec};
    pub use crate::instance::{
        by_name, catalog, p2_16xlarge, p2_8xlarge, p2_xlarge, p3_16xlarge, p3_24xlarge, p3_2xlarge,
        p3_8xlarge, p3_8xlarge_sliced, p4, InstanceType,
    };
    pub use crate::interconnect::{Interconnect, Slicing};
    pub use crate::providers::{self, other_clouds};
    pub use crate::scaling::Resource;
    pub use crate::storage::{StorageKind, StorageSpec};
    pub use crate::topology::{GpuId, Topology};
}
