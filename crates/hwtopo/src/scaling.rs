//! Hypothetical hardware variants for what-if cross-checks.
//!
//! The trace-driven what-if engine (`stash-trace::whatif`) projects a new
//! epoch time analytically; the ground truth it is validated against is a
//! *re-simulation* on a cluster whose hardware has actually been rescaled.
//! [`ClusterSpec::scaled`] builds that cluster: every instance gets one
//! [`Resource`] made `factor`× faster, everything else untouched.
//!
//! The mapping from resource to instance parameter:
//!
//! * [`Resource::Network`] — multiplies `network_gbps` (the NIC links).
//! * [`Resource::Interconnect`] — sets `interconnect_scale`, which
//!   [`crate::topology::Topology::build`] applies to PCIe lanes, the
//!   shared host fabric and NVLink/NVSwitch ports alike.
//! * [`Resource::PrepWorkers`] — multiplies `vcpus` (rounded, min 1):
//!   the loader sizes its decode pool from the vCPU count.
//! * [`Resource::FetchBandwidth`] — multiplies the storage volume's
//!   `throughput_bps`.

use crate::cluster::ClusterSpec;
use crate::instance::InstanceType;

/// One rescalable hardware resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Resource {
    /// Inter-node (VM network) bandwidth.
    Network,
    /// Intra-node interconnect bandwidth (PCIe / NVLink / NVSwitch).
    Interconnect,
    /// CPU prep throughput (vCPU count).
    PrepWorkers,
    /// Storage fetch bandwidth.
    FetchBandwidth,
}

impl Resource {
    /// Every resource, in stable order.
    pub const ALL: [Resource; 4] = [
        Resource::Network,
        Resource::Interconnect,
        Resource::PrepWorkers,
        Resource::FetchBandwidth,
    ];

    /// Stable lowercase label (matches `stash-trace`'s what-if labels).
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            Resource::Network => "network",
            Resource::Interconnect => "interconnect",
            Resource::PrepWorkers => "prep_workers",
            Resource::FetchBandwidth => "fetch_bandwidth",
        }
    }

    /// Parses a [`Resource::label`] back; `None` for unknown text.
    #[must_use]
    pub fn from_label(s: &str) -> Option<Resource> {
        Resource::ALL.iter().copied().find(|r| r.label() == s)
    }
}

impl InstanceType {
    /// A hypothetical variant of this instance with `resource` made
    /// `factor`× faster (slower for `factor < 1`). The name gains a
    /// `+<resource>x<factor>` suffix so reports stay distinguishable.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    #[must_use]
    pub fn scaled(&self, resource: Resource, factor: f64) -> InstanceType {
        assert!(
            factor.is_finite() && factor > 0.0,
            "scale factor must be positive, got {factor}"
        );
        let mut inst = self.clone();
        match resource {
            Resource::Network => inst.network_gbps *= factor,
            Resource::Interconnect => inst.interconnect_scale *= factor,
            Resource::PrepWorkers => {
                inst.vcpus = ((inst.vcpus as f64 * factor).round() as usize).max(1);
            }
            Resource::FetchBandwidth => inst.storage.throughput_bps *= factor,
        }
        #[allow(clippy::float_cmp)] // 1.0 is exactly representable
        if factor != 1.0 {
            inst.name = format!("{}+{}x{factor}", self.name, resource.label());
        }
        inst
    }
}

impl ClusterSpec {
    /// The same cluster with `resource` scaled `factor`× on every member
    /// instance — the re-simulation target for what-if validation.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    #[must_use]
    pub fn scaled(&self, resource: Resource, factor: f64) -> ClusterSpec {
        ClusterSpec {
            instances: self
                .instances
                .iter()
                .map(|i| i.scaled(resource, factor))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{p2_8xlarge, p3_8xlarge};

    #[test]
    fn network_scaling_multiplies_gbps_only() {
        let base = p3_8xlarge();
        let fast = base.scaled(Resource::Network, 2.0);
        assert_eq!(fast.network_gbps, 20.0);
        assert_eq!(fast.vcpus, base.vcpus);
        assert_eq!(fast.interconnect_scale, 1.0);
        assert_eq!(fast.storage.throughput_bps, base.storage.throughput_bps);
        assert_eq!(fast.name, "p3.8xlarge+networkx2");
    }

    #[test]
    fn prep_workers_round_and_clamp() {
        let one = p2_8xlarge().scaled(Resource::PrepWorkers, 1.0 / 64.0);
        assert_eq!(one.vcpus, 1);
        let up = p2_8xlarge().scaled(Resource::PrepWorkers, 1.5);
        assert_eq!(up.vcpus, 48);
    }

    #[test]
    fn identity_scaling_preserves_name_and_values() {
        let base = p3_8xlarge();
        let same = base.scaled(Resource::Interconnect, 1.0);
        assert_eq!(same, base);
    }

    #[test]
    fn cluster_scaling_applies_to_every_member() {
        let c = ClusterSpec::homogeneous(p3_8xlarge(), 2).scaled(Resource::FetchBandwidth, 3.0);
        for inst in &c.instances {
            assert_eq!(
                inst.storage.throughput_bps,
                p3_8xlarge().storage.throughput_bps * 3.0
            );
        }
    }

    #[test]
    fn labels_round_trip() {
        for r in Resource::ALL {
            assert_eq!(Resource::from_label(r.label()), Some(r));
        }
        assert_eq!(Resource::from_label("gpu"), None);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn non_positive_factor_panics() {
        let _ = p3_8xlarge().scaled(Resource::Network, -1.0);
    }
}
