//! Unit helpers for bandwidths, sizes and rates.
//!
//! All bandwidth values in the workspace are **bytes per second** (`f64`)
//! and all sizes are bytes; these helpers keep conversion factors explicit
//! at call sites (`gbps(25.0)` rather than a bare `3.125e9`).

/// Gigabits per second → bytes per second.
#[must_use]
pub fn gbps(v: f64) -> f64 {
    v * 1e9 / 8.0
}

/// Gigabytes (decimal) → bytes.
#[must_use]
pub fn gb(v: f64) -> f64 {
    v * 1e9
}

/// Gibibytes (binary) → bytes.
#[must_use]
pub fn gib(v: f64) -> f64 {
    v * 1024.0 * 1024.0 * 1024.0
}

/// Megabytes (decimal) → bytes.
#[must_use]
pub fn mb(v: f64) -> f64 {
    v * 1e6
}

/// Mibibytes (binary) → bytes.
#[must_use]
pub fn mib(v: f64) -> f64 {
    v * 1024.0 * 1024.0
}

/// Gigabytes per second → bytes per second.
#[must_use]
pub fn gb_per_s(v: f64) -> f64 {
    v * 1e9
}

/// Megabytes per second → bytes per second.
#[must_use]
pub fn mb_per_s(v: f64) -> f64 {
    v * 1e6
}

/// Tera-FLOP/s → FLOP/s.
#[must_use]
pub fn tflops(v: f64) -> f64 {
    v * 1e12
}

/// Bytes → human-readable string (for reports).
#[must_use]
pub fn human_bytes(v: f64) -> String {
    if v >= 1e12 {
        format!("{:.2} TB", v / 1e12)
    } else if v >= 1e9 {
        format!("{:.2} GB", v / 1e9)
    } else if v >= 1e6 {
        format!("{:.2} MB", v / 1e6)
    } else if v >= 1e3 {
        format!("{:.2} KB", v / 1e3)
    } else {
        format!("{v:.0} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversion_factors() {
        assert_eq!(gbps(8.0), 1e9);
        assert_eq!(gb(2.0), 2e9);
        assert_eq!(gib(1.0), 1073741824.0);
        assert_eq!(mb(3.0), 3e6);
        assert_eq!(mib(1.0), 1048576.0);
        assert_eq!(gb_per_s(1.5), 1.5e9);
        assert_eq!(mb_per_s(250.0), 2.5e8);
        assert_eq!(tflops(15.7), 1.57e13);
    }

    #[test]
    fn human_bytes_picks_unit() {
        assert_eq!(human_bytes(512.0), "512 B");
        assert_eq!(human_bytes(2_500.0), "2.50 KB");
        assert_eq!(human_bytes(2.5e6), "2.50 MB");
        assert_eq!(human_bytes(2.5e9), "2.50 GB");
        assert_eq!(human_bytes(2.5e12), "2.50 TB");
    }
}
