//! GPU device models.
//!
//! A [`GpuSpec`] captures the handful of device parameters the roofline
//! execution-time model (crate `stash-gpucompute`) needs: peak arithmetic
//! throughput, memory bandwidth, memory capacity and kernel-launch
//! overhead (which includes the framework's host-side per-op dispatch —
//! the dominant cost of tiny kernels). The models of the paper's Table I
//! are provided as constructors.

use serde::{Deserialize, Serialize};
use stash_simkit::time::SimDuration;

use crate::units::{gb_per_s, gib, tflops};

/// The GPU models appearing in the paper (AWS P2/P3/P4 families).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GpuModel {
    /// NVIDIA K80 (one GK210 die as exposed by AWS P2).
    K80,
    /// NVIDIA V100 SXM2 16 GB (p3.2x/8x/16xlarge).
    V100,
    /// NVIDIA V100 SXM2 32 GB (p3.24xlarge-class).
    V100_32,
    /// NVIDIA A100 40 GB (P4 family).
    A100,
}

impl GpuModel {
    /// The device parameters for this model.
    #[must_use]
    pub fn spec(self) -> GpuSpec {
        match self {
            GpuModel::K80 => GpuSpec {
                model: self,
                name: "NVIDIA K80",
                peak_flops: tflops(2.8),
                mem_bandwidth_bps: gb_per_s(240.0),
                mem_bytes: gib(12.0),
                kernel_launch: SimDuration::from_micros(25),
            },
            GpuModel::V100 => GpuSpec {
                model: self,
                name: "NVIDIA V100 16GB",
                peak_flops: tflops(15.7),
                mem_bandwidth_bps: gb_per_s(900.0),
                mem_bytes: gib(16.0),
                kernel_launch: SimDuration::from_micros(30),
            },
            GpuModel::V100_32 => GpuSpec {
                model: self,
                name: "NVIDIA V100 32GB",
                peak_flops: tflops(15.7),
                mem_bandwidth_bps: gb_per_s(900.0),
                mem_bytes: gib(32.0),
                kernel_launch: SimDuration::from_micros(30),
            },
            GpuModel::A100 => GpuSpec {
                model: self,
                name: "NVIDIA A100 40GB",
                peak_flops: tflops(19.5),
                mem_bandwidth_bps: gb_per_s(1555.0),
                mem_bytes: gib(40.0),
                kernel_launch: SimDuration::from_micros(25),
            },
        }
    }

    /// Short label used in reports ("K80", "V100", ...).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GpuModel::K80 => "K80",
            GpuModel::V100 => "V100",
            GpuModel::V100_32 => "V100-32",
            GpuModel::A100 => "A100",
        }
    }
}

/// Device parameters consumed by the execution-time model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GpuSpec {
    /// Which model this spec belongs to.
    pub model: GpuModel,
    /// Marketing name.
    pub name: &'static str,
    /// Peak single-precision FLOP/s.
    pub peak_flops: f64,
    /// HBM/GDDR memory bandwidth, bytes/s.
    pub mem_bandwidth_bps: f64,
    /// Device memory capacity, bytes.
    pub mem_bytes: f64,
    /// Fixed overhead per kernel launch.
    pub kernel_launch: SimDuration,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generational_ordering() {
        let k80 = GpuModel::K80.spec();
        let v100 = GpuModel::V100.spec();
        let a100 = GpuModel::A100.spec();
        assert!(k80.peak_flops < v100.peak_flops);
        assert!(v100.peak_flops < a100.peak_flops);
        assert!(k80.mem_bandwidth_bps < v100.mem_bandwidth_bps);
    }

    #[test]
    fn v100_variants_differ_only_in_memory() {
        let a = GpuModel::V100.spec();
        let b = GpuModel::V100_32.spec();
        assert_eq!(a.peak_flops, b.peak_flops);
        assert_eq!(b.mem_bytes, 2.0 * a.mem_bytes);
    }

    #[test]
    fn labels_are_unique() {
        let mut labels = vec![
            GpuModel::K80.label(),
            GpuModel::V100.label(),
            GpuModel::V100_32.label(),
            GpuModel::A100.label(),
        ];
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 4);
    }
}
