//! Calibration constants for the hardware models.
//!
//! These are the *only* tuned numbers in the substrate; everything else is
//! derived. Each constant cites the public figure it approximates. The
//! reproduction claims shape fidelity of the paper's results, not absolute
//! numbers (our substrate is a simulator, not the authors' testbed).

use crate::units::{gb_per_s, mb_per_s};
use stash_simkit::time::SimDuration;

/// Effective per-device PCIe gen3 x16 bandwidth (pinned-memory copies
/// typically sustain ~6 GB/s of the 15.75 GB/s raw rate).
pub const PCIE_LANE_BPS: f64 = 6.0e9;

/// Aggregate PCIe root-complex/host-fabric bandwidth on the P2 platform.
/// Fixed per physical host — this is what 8 or 16 K80s end up "slicing"
/// (paper Fig. 7).
pub const P2_HOST_BUS_BPS: f64 = 20.0e9;

/// Aggregate host-fabric bandwidth on the (newer) P3 platform.
pub const P3_HOST_BUS_BPS: f64 = 30.0e9;

/// Effective per-GPU NVLink port bandwidth usable by collectives on V100
/// (6 links x 25 GB/s raw; NCCL sustains on the order of 70-130 GB/s
/// bus bandwidth on a DGX-1-class crossbar).
pub const NVLINK_PORT_BPS: f64 = 75.0e9;

/// Effective per-GPU NVSwitch bandwidth on A100 platforms.
pub const NVSWITCH_PORT_BPS: f64 = 150.0e9;

/// One-way latency contributed by a PCIe hop.
pub const PCIE_LAT: SimDuration = SimDuration::from_micros(5);

/// One-way latency contributed by an NVLink hop.
pub const NVLINK_LAT: SimDuration = SimDuration::from_micros(2);

/// One-way latency contributed by each VM NIC hop (two hops per
/// cross-instance transfer ≈ 50 us RTT/2, typical same-AZ EC2).
pub const NET_LAT: SimDuration = SimDuration::from_micros(25);

/// Fraction of nominal instance network bandwidth achievable by TCP/NCCL
/// socket transports.
pub const NET_EFFICIENCY: f64 = 0.85;

/// Throughput of the general-purpose (gp2) EBS volume used for training
/// data in the paper's experiments.
pub fn gp2_throughput_bps() -> f64 {
    mb_per_s(250.0)
}

/// Throughput of the dedicated local NVMe storage on p3.24xlarge-class
/// instances.
pub fn local_nvme_throughput_bps() -> f64 {
    gb_per_s(2.0)
}

/// Per-sample random-read overhead on the SSD (seek + request dispatch),
/// charged as latency on each fetch batch.
pub const SSD_PER_SAMPLE_LAT: SimDuration = SimDuration::from_micros(20);

/// Effective DRAM copy bandwidth available to the input pipeline when
/// samples hit the page cache.
pub fn dram_copy_bps() -> f64 {
    gb_per_s(10.0)
}

/// Images/second one vCPU-equivalent sustains through the decode +
/// augment pipeline. AWS P-family vCPUs with pipelined/pillow-SIMD-class
/// loaders keep up with the GPUs (the paper finds CPU stalls negligible on
/// AWS, unlike the private cluster of DS-Analyzer).
pub const PREP_IMAGES_PER_VCPU_PER_SEC: f64 = 700.0;

/// Fraction of main memory usable as page cache for training data.
pub const PAGE_CACHE_FRACTION: f64 = 0.80;

#[cfg(test)]
mod tests {
    #![allow(clippy::assertions_on_constants)] // the constants ARE the test subject
    use super::*;

    #[test]
    fn p2_bus_is_the_scarce_resource() {
        // 16 GPUs slicing the P2 host fabric must see less per-GPU
        // bandwidth than a dedicated lane — that is the Fig. 7 anomaly.
        assert!(P2_HOST_BUS_BPS / 16.0 < PCIE_LANE_BPS);
        // ...but a single GPU is lane-limited, not bus-limited.
        assert!(P2_HOST_BUS_BPS > PCIE_LANE_BPS);
    }

    #[test]
    fn nvlink_beats_pcie() {
        assert!(NVLINK_PORT_BPS > 10.0 * PCIE_LANE_BPS);
        assert!(NVLINK_LAT < PCIE_LAT);
    }

    #[test]
    fn storage_tiers_ordered() {
        assert!(local_nvme_throughput_bps() > gp2_throughput_bps());
        assert!(dram_copy_bps() > local_nvme_throughput_bps());
    }
}
