//! Builds the flow-level link graph of a cluster and answers routing
//! queries.
//!
//! The [`Topology`] instantiates, per node:
//!
//! * one **PCIe lane** pair (tx/rx) per GPU — dedicated gen3 x16 lanes;
//! * one shared **PCIe host fabric** link — the resource 8/16 K80s contend
//!   on (paper Fig. 7);
//! * one **NVLink port** pair (tx/rx) per GPU when the instance has NVLink;
//! * one **NIC** pair (tx/rx) at nominal network bandwidth x TCP efficiency;
//! * one **SSD** link and one **DRAM** link for the input pipeline.
//!
//! Routing rules implement the paper's interconnect discussion: peer GPU
//! traffic rides NVLink when both endpoints share a crossbar group, falls
//! back to the shared PCIe fabric otherwise (degraded p3.8xlarge slices),
//! and crosses NIC links between nodes.

use serde::{Deserialize, Serialize};
use stash_flowsim::link::{Link, LinkClass, LinkId};
use stash_flowsim::net::FlowNet;

use crate::cluster::ClusterSpec;
use crate::constants;
use crate::error::TopoError;
use crate::interconnect::{crossbar_groups, Interconnect};
use crate::units::gbps;

/// A GPU within the cluster, addressed by node and local index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct GpuId {
    /// Node (instance) index within the cluster.
    pub node: usize,
    /// GPU index within the node.
    pub local: usize,
}

#[derive(Debug, Clone)]
struct NodeTopo {
    lane_tx: Vec<LinkId>,
    lane_rx: Vec<LinkId>,
    nvl_tx: Vec<LinkId>,
    nvl_rx: Vec<LinkId>,
    host_bus: LinkId,
    nic_tx: LinkId,
    nic_rx: LinkId,
    ssd: LinkId,
    dram: LinkId,
    crossbar_group: Vec<usize>,
}

/// The link graph of a cluster plus routing metadata.
#[derive(Debug, Clone)]
pub struct Topology {
    cluster: ClusterSpec,
    nodes: Vec<NodeTopo>,
}

impl Topology {
    /// Validating variant of [`Topology::build`]: rejects empty clusters
    /// and hostile instance descriptions before any link is registered.
    ///
    /// # Errors
    ///
    /// Returns the cluster's [`TopoError`] (see
    /// [`ClusterSpec::validate`]); `net` is left untouched on error.
    pub fn try_build(cluster: &ClusterSpec, net: &mut FlowNet) -> Result<Topology, TopoError> {
        cluster.validate()?;
        Ok(Topology::build(cluster, net))
    }

    /// Instantiates all links for `cluster` into `net` and returns the
    /// routing table.
    #[must_use]
    pub fn build(cluster: &ClusterSpec, net: &mut FlowNet) -> Topology {
        let mut nodes = Vec::with_capacity(cluster.instances.len());
        for (n, inst) in cluster.instances.iter().enumerate() {
            // A what-if interconnect scaling applies to every intra-node
            // link class alike: lanes, the shared fabric, NVLink ports.
            let ic = inst.interconnect_scale;
            let host_bus_bps = ic
                * match inst.family {
                    "P2" => constants::P2_HOST_BUS_BPS,
                    _ => constants::P3_HOST_BUS_BPS,
                };
            let host_bus = net.add_link(Link::new(
                format!("{}#{n}/hostbus", inst.name),
                host_bus_bps,
                constants::PCIE_LAT,
                LinkClass::PcieHostBus,
            ));
            let mut lane_tx = Vec::new();
            let mut lane_rx = Vec::new();
            let mut nvl_tx = Vec::new();
            let mut nvl_rx = Vec::new();
            for g in 0..inst.gpu_count {
                lane_tx.push(net.add_link(Link::new(
                    format!("{}#{n}/gpu{g}/lane-tx", inst.name),
                    ic * constants::PCIE_LANE_BPS,
                    stash_simkit::time::SimDuration::ZERO,
                    LinkClass::PcieLane,
                )));
                lane_rx.push(net.add_link(Link::new(
                    format!("{}#{n}/gpu{g}/lane-rx", inst.name),
                    ic * constants::PCIE_LANE_BPS,
                    stash_simkit::time::SimDuration::ZERO,
                    LinkClass::PcieLane,
                )));
                if inst.interconnect.has_nvlink() {
                    let (bps, class) = match inst.interconnect {
                        Interconnect::NvSwitch => {
                            (constants::NVSWITCH_PORT_BPS, LinkClass::NvSwitch)
                        }
                        _ => (constants::NVLINK_PORT_BPS, LinkClass::NvLink),
                    };
                    nvl_tx.push(net.add_link(Link::new(
                        format!("{}#{n}/gpu{g}/nvl-tx", inst.name),
                        ic * bps,
                        constants::NVLINK_LAT,
                        class,
                    )));
                    nvl_rx.push(net.add_link(Link::new(
                        format!("{}#{n}/gpu{g}/nvl-rx", inst.name),
                        ic * bps,
                        stash_simkit::time::SimDuration::ZERO,
                        class,
                    )));
                }
            }
            let nic_bps = gbps(inst.network_gbps) * constants::NET_EFFICIENCY;
            let nic_tx = net.add_link(Link::new(
                format!("{}#{n}/nic-tx", inst.name),
                nic_bps,
                constants::NET_LAT,
                LinkClass::Network,
            ));
            let nic_rx = net.add_link(Link::new(
                format!("{}#{n}/nic-rx", inst.name),
                nic_bps,
                constants::NET_LAT,
                LinkClass::Network,
            ));
            let ssd = net.add_link(Link::new(
                format!("{}#{n}/ssd", inst.name),
                inst.storage.throughput_bps,
                stash_simkit::time::SimDuration::ZERO,
                LinkClass::Storage,
            ));
            let dram = net.add_link(Link::new(
                format!("{}#{n}/dram", inst.name),
                constants::dram_copy_bps(),
                stash_simkit::time::SimDuration::ZERO,
                LinkClass::Dram,
            ));
            nodes.push(NodeTopo {
                lane_tx,
                lane_rx,
                nvl_tx,
                nvl_rx,
                host_bus,
                nic_tx,
                nic_rx,
                ssd,
                dram,
                crossbar_group: crossbar_groups(inst.interconnect, inst.gpu_count),
            });
        }
        Topology {
            cluster: cluster.clone(),
            nodes,
        }
    }

    /// The cluster this topology was built from.
    #[must_use]
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// Total number of GPUs (DDP world size).
    #[must_use]
    pub fn world_size(&self) -> usize {
        self.cluster.world_size()
    }

    /// Maps a flat rank (node-major order) to its GPU.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= world_size()`.
    #[must_use]
    pub fn rank_gpu(&self, rank: usize) -> GpuId {
        let mut r = rank;
        for (node, inst) in self.cluster.instances.iter().enumerate() {
            if r < inst.gpu_count {
                return GpuId { node, local: r };
            }
            r -= inst.gpu_count;
        }
        panic!(
            "rank {rank} out of range (world size {})",
            self.world_size()
        );
    }

    /// All GPUs in ring order (node-major): the order NCCL-style ring
    /// collectives traverse, keeping cross-node hops to a minimum.
    #[must_use]
    pub fn ring_order(&self) -> Vec<GpuId> {
        (0..self.world_size()).map(|r| self.rank_gpu(r)).collect()
    }

    /// Route for peer GPU traffic (one ring hop of an all-reduce).
    ///
    /// # Panics
    ///
    /// Panics if `src == dst` or either id is out of range.
    #[must_use]
    pub fn gpu_route(&self, src: GpuId, dst: GpuId) -> Vec<LinkId> {
        assert_ne!(src, dst, "no self-routes");
        let s = &self.nodes[src.node];
        let d = &self.nodes[dst.node];
        if src.node == dst.node {
            let inst = &self.cluster.instances[src.node];
            match inst.interconnect {
                Interconnect::Pcie => {
                    vec![s.lane_tx[src.local], s.host_bus, s.lane_rx[dst.local]]
                }
                Interconnect::NvLink { .. } | Interconnect::NvSwitch => {
                    if s.crossbar_group[src.local] == s.crossbar_group[dst.local] {
                        vec![s.nvl_tx[src.local], s.nvl_rx[dst.local]]
                    } else {
                        // Degraded slice: peer traffic falls back to the
                        // shared PCIe fabric.
                        vec![s.lane_tx[src.local], s.host_bus, s.lane_rx[dst.local]]
                    }
                }
            }
        } else {
            vec![
                s.lane_tx[src.local],
                s.nic_tx,
                d.nic_rx,
                d.lane_rx[dst.local],
            ]
        }
    }

    /// Route for a host-to-device copy (input batch upload) on `gpu`.
    #[must_use]
    pub fn h2d_route(&self, gpu: GpuId) -> Vec<LinkId> {
        let n = &self.nodes[gpu.node];
        vec![n.host_bus, n.lane_rx[gpu.local]]
    }

    /// Route for reading training data from the node's SSD.
    #[must_use]
    pub fn disk_route(&self, node: usize) -> Vec<LinkId> {
        vec![self.nodes[node].ssd]
    }

    /// Route for reading training data from the node's page cache.
    #[must_use]
    pub fn dram_route(&self, node: usize) -> Vec<LinkId> {
        vec![self.nodes[node].dram]
    }

    /// The shared PCIe host-fabric link of a node (diagnostics/probes).
    #[must_use]
    pub fn host_bus(&self, node: usize) -> LinkId {
        self.nodes[node].host_bus
    }

    /// A node's NIC link pair `(tx, rx)` — the links a network fault
    /// (link flap, congested fabric) degrades.
    #[must_use]
    pub fn nic_links(&self, node: usize) -> (LinkId, LinkId) {
        (self.nodes[node].nic_tx, self.nodes[node].nic_rx)
    }

    /// A node's storage link — the link a disk brownout degrades.
    #[must_use]
    pub fn ssd_link(&self, node: usize) -> LinkId {
        self.nodes[node].ssd
    }

    /// Degraded-capacity view of a node's NIC: the `(link, capacity)`
    /// pairs to apply when only `factor` of the *current* bandwidth
    /// survives a fault window. Callers snapshot the current capacities
    /// first to restore them when the window closes.
    #[must_use]
    pub fn degraded_nic_capacities(
        &self,
        net: &FlowNet,
        node: usize,
        factor: f64,
    ) -> [(LinkId, f64); 2] {
        let (tx, rx) = self.nic_links(node);
        [
            (tx, net.link(tx).capacity_bps * factor),
            (rx, net.link(rx).capacity_bps * factor),
        ]
    }

    /// Degraded-capacity view of a node's storage volume under a
    /// brownout keeping only `factor` of the current throughput.
    #[must_use]
    pub fn degraded_ssd_capacity(&self, net: &FlowNet, node: usize, factor: f64) -> (LinkId, f64) {
        let ssd = self.ssd_link(node);
        (ssd, net.link(ssd).capacity_bps * factor)
    }

    /// Measures the steady-state per-GPU host bandwidth when **all** GPUs
    /// of `node` run device-to-host copies concurrently — the CUDA
    /// bandwidth probe of paper Fig. 7. Returns one rate (bytes/s) per GPU.
    #[must_use]
    pub fn pcie_bandwidth_probe(&self, net: &FlowNet, node: usize) -> Vec<f64> {
        let n = &self.nodes[node];
        let routes: Vec<Vec<LinkId>> = (0..n.lane_tx.len())
            .map(|g| vec![n.lane_tx[g], n.host_bus])
            .collect();
        net.probe_rates(&routes)
    }

    /// Whether `a` and `b` share an NVLink crossbar group (always false
    /// across nodes or on PCIe-only instances).
    #[must_use]
    pub fn nvlink_connected(&self, a: GpuId, b: GpuId) -> bool {
        if a.node != b.node {
            return false;
        }
        let inst = &self.cluster.instances[a.node];
        inst.interconnect.has_nvlink()
            && self.nodes[a.node].crossbar_group[a.local]
                == self.nodes[a.node].crossbar_group[b.local]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{p2_16xlarge, p2_xlarge, p3_16xlarge, p3_8xlarge, p3_8xlarge_sliced};
    use crate::interconnect::Slicing;

    fn build(cluster: ClusterSpec) -> (Topology, FlowNet) {
        let mut net = FlowNet::new();
        let topo = Topology::build(&cluster, &mut net);
        (topo, net)
    }

    #[test]
    fn rank_mapping_is_node_major() {
        let (topo, _) = build(ClusterSpec::homogeneous(p3_8xlarge(), 2));
        assert_eq!(topo.rank_gpu(0), GpuId { node: 0, local: 0 });
        assert_eq!(topo.rank_gpu(3), GpuId { node: 0, local: 3 });
        assert_eq!(topo.rank_gpu(4), GpuId { node: 1, local: 0 });
        assert_eq!(topo.ring_order().len(), 8);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rank_out_of_range_panics() {
        let (topo, _) = build(ClusterSpec::single(p2_xlarge()));
        let _ = topo.rank_gpu(1);
    }

    #[test]
    fn p2_peer_routes_cross_host_bus() {
        let (topo, net) = build(ClusterSpec::single(p2_16xlarge()));
        let r = topo.gpu_route(GpuId { node: 0, local: 0 }, GpuId { node: 0, local: 1 });
        assert_eq!(r.len(), 3);
        assert_eq!(net.link(r[1]).class, LinkClass::PcieHostBus);
    }

    #[test]
    fn p3_full_crossbar_uses_nvlink() {
        let (topo, net) = build(ClusterSpec::single(p3_16xlarge()));
        let r = topo.gpu_route(GpuId { node: 0, local: 0 }, GpuId { node: 0, local: 7 });
        assert_eq!(r.len(), 2);
        assert!(net.link(r[0]).class == LinkClass::NvLink);
        assert!(topo.nvlink_connected(GpuId { node: 0, local: 0 }, GpuId { node: 0, local: 7 }));
    }

    #[test]
    fn degraded_slice_falls_back_to_pcie_across_halves() {
        let (topo, net) = build(ClusterSpec::single(p3_8xlarge_sliced(Slicing::Degraded)));
        let same_half = topo.gpu_route(GpuId { node: 0, local: 0 }, GpuId { node: 0, local: 1 });
        assert_eq!(net.link(same_half[0]).class, LinkClass::NvLink);
        let cross_half = topo.gpu_route(GpuId { node: 0, local: 1 }, GpuId { node: 0, local: 2 });
        assert!(cross_half
            .iter()
            .any(|l| net.link(*l).class == LinkClass::PcieHostBus));
    }

    #[test]
    fn full_slice_keeps_nvlink_everywhere() {
        let (topo, net) = build(ClusterSpec::single(p3_8xlarge_sliced(Slicing::Full)));
        let r = topo.gpu_route(GpuId { node: 0, local: 1 }, GpuId { node: 0, local: 2 });
        assert_eq!(net.link(r[0]).class, LinkClass::NvLink);
    }

    #[test]
    fn cross_node_routes_use_nics() {
        let (topo, net) = build(ClusterSpec::homogeneous(p3_8xlarge(), 2));
        let r = topo.gpu_route(GpuId { node: 0, local: 3 }, GpuId { node: 1, local: 0 });
        let classes: Vec<_> = r.iter().map(|l| net.link(*l).class).collect();
        assert!(classes.contains(&LinkClass::Network));
        assert_eq!(
            classes.iter().filter(|c| **c == LinkClass::Network).count(),
            2
        );
    }

    #[test]
    fn fig7_probe_shape_16x_worst() {
        // Per-GPU PCIe bandwidth: xlarge > 8xlarge > 16xlarge (Fig. 7).
        let per_gpu = |inst| {
            let (topo, net) = build(ClusterSpec::single(inst));
            let rates = topo.pcie_bandwidth_probe(&net, 0);
            rates[0]
        };
        let x1 = per_gpu(p2_xlarge());
        let x8 = per_gpu(crate::instance::p2_8xlarge());
        let x16 = per_gpu(p2_16xlarge());
        assert!(x1 > x8, "{x1} vs {x8}");
        assert!(x8 > x16, "{x8} vs {x16}");
        // xlarge is lane-limited, not bus-limited.
        assert_eq!(x1, constants::PCIE_LANE_BPS);
    }

    #[test]
    fn h2d_and_storage_routes_exist() {
        let (topo, net) = build(ClusterSpec::single(p3_8xlarge()));
        let h2d = topo.h2d_route(GpuId { node: 0, local: 2 });
        assert_eq!(net.link(h2d[0]).class, LinkClass::PcieHostBus);
        assert_eq!(net.link(topo.disk_route(0)[0]).class, LinkClass::Storage);
        assert_eq!(net.link(topo.dram_route(0)[0]).class, LinkClass::Dram);
    }

    #[test]
    fn p4_uses_nvswitch_links() {
        let (topo, net) = build(ClusterSpec::single(crate::instance::p4()));
        let r = topo.gpu_route(GpuId { node: 0, local: 0 }, GpuId { node: 0, local: 5 });
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|l| net.link(*l).class == LinkClass::NvSwitch));
        // NVSwitch ports outclass NVLink ports.
        assert!(net.link(r[0]).capacity_bps > crate::constants::NVLINK_PORT_BPS);
    }

    #[test]
    fn p2_cross_node_route_is_nic_bound() {
        let (topo, net) = build(ClusterSpec::homogeneous(crate::instance::p2_8xlarge(), 2));
        let r = topo.gpu_route(GpuId { node: 0, local: 7 }, GpuId { node: 1, local: 0 });
        let min_cap = r
            .iter()
            .map(|l| net.link(*l).capacity_bps)
            .fold(f64::INFINITY, f64::min);
        // 10 Gbps x efficiency ≈ 1.06 GB/s: far below any PCIe hop.
        assert!(min_cap < 2e9, "bottleneck {min_cap}");
        assert!(!topo.nvlink_connected(GpuId { node: 0, local: 7 }, GpuId { node: 1, local: 0 }));
    }

    #[test]
    fn ring_order_spans_every_gpu_exactly_once() {
        let (topo, _) = build(ClusterSpec::homogeneous(p3_8xlarge(), 3));
        let ring = topo.ring_order();
        assert_eq!(ring.len(), 12);
        let mut seen = ring.clone();
        seen.sort();
        seen.dedup();
        assert_eq!(seen.len(), 12);
        // Node-major: exactly two node boundaries... (3 nodes → 3 cross
        // hops including the wrap-around).
        let crossings = ring
            .iter()
            .zip(ring.iter().cycle().skip(1))
            .take(ring.len())
            .filter(|(a, b)| a.node != b.node)
            .count();
        assert_eq!(crossings, 3);
    }

    #[test]
    fn fault_target_links_are_exposed() {
        let (topo, net) = build(ClusterSpec::homogeneous(p3_8xlarge(), 2));
        let (tx, rx) = topo.nic_links(1);
        assert_eq!(net.link(tx).class, LinkClass::Network);
        assert_eq!(net.link(rx).class, LinkClass::Network);
        assert_ne!(tx, rx);
        assert_eq!(net.link(topo.ssd_link(0)).class, LinkClass::Storage);
        // Degraded views scale the current capacity.
        let degraded = topo.degraded_nic_capacities(&net, 1, 0.25);
        assert_eq!(degraded[0].1, net.link(tx).capacity_bps * 0.25);
        let (ssd, cap) = topo.degraded_ssd_capacity(&net, 0, 0.5);
        assert_eq!(cap, net.link(ssd).capacity_bps * 0.5);
    }

    #[test]
    fn try_build_rejects_empty_and_hostile_clusters() {
        let mut net = FlowNet::new();
        let empty = ClusterSpec { instances: vec![] };
        assert!(Topology::try_build(&empty, &mut net).is_err());
        assert_eq!(net.link_count(), 0, "no links registered on error");
        let mut inst = p3_8xlarge();
        inst.network_gbps = f64::NAN;
        assert!(Topology::try_build(&ClusterSpec::single(inst), &mut net).is_err());
        assert!(Topology::try_build(&ClusterSpec::single(p3_8xlarge()), &mut net).is_ok());
    }

    #[test]
    #[should_panic(expected = "no self-routes")]
    fn self_route_panics() {
        let (topo, _) = build(ClusterSpec::single(p3_8xlarge()));
        let g = GpuId { node: 0, local: 0 };
        let _ = topo.gpu_route(g, g);
    }
}
