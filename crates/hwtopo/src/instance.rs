//! The AWS GPU instance catalog (paper Table I).
//!
//! Every P-family instance the paper characterizes, with its GPUs, vCPUs,
//! interconnect, memory, network bandwidth and N. Virginia on-demand price.
//! Prices and capacities are the paper's values, frozen at publication
//! time.

use serde::Serialize;

use crate::error::TopoError;
use crate::gpu::GpuModel;
use crate::interconnect::{Interconnect, Slicing};
use crate::storage::StorageSpec;
use crate::units::gib;

/// One AWS instance type: the unit the profiler characterizes.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct InstanceType {
    /// API name, e.g. `"p3.16xlarge"`.
    pub name: String,
    /// Instance family ("P2", "P3", "P4").
    pub family: &'static str,
    /// GPU device model.
    pub gpu: GpuModel,
    /// Number of GPUs.
    pub gpu_count: usize,
    /// Number of vCPUs.
    pub vcpus: usize,
    /// GPU peer interconnect wiring.
    pub interconnect: Interconnect,
    /// Host DRAM capacity, bytes.
    pub main_memory_bytes: f64,
    /// Nominal network bandwidth, Gbit/s.
    pub network_gbps: f64,
    /// On-demand price, USD per hour (N. Virginia).
    pub price_per_hour: f64,
    /// Speed multiplier on every intra-node interconnect link (PCIe
    /// lanes, the shared host fabric, NVLink/NVSwitch ports). `1.0` for
    /// real hardware; what-if cross-checks build hypothetical variants
    /// via [`crate::scaling`].
    pub interconnect_scale: f64,
    /// Attached training-data volume.
    pub storage: StorageSpec,
}

impl InstanceType {
    /// Total GPU memory across all devices, bytes (Table I's "GPU Memory").
    #[must_use]
    pub fn total_gpu_memory_bytes(&self) -> f64 {
        self.gpu.spec().mem_bytes * self.gpu_count as f64
    }

    /// Rejects hostile hardware descriptions: zero GPUs or vCPUs, and
    /// zero/negative/NaN capacities, bandwidths, prices or scale factors.
    /// The frozen Table I constructors always pass; scaled or
    /// deserialized variants may not.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::InvalidInstance`] naming the first bad field.
    pub fn validate(&self) -> Result<(), TopoError> {
        let bad = |field: &'static str, value: f64| TopoError::InvalidInstance {
            instance: self.name.clone(),
            field,
            value,
        };
        if self.gpu_count == 0 {
            return Err(bad("gpu_count", 0.0));
        }
        if self.vcpus == 0 {
            return Err(bad("vcpus", 0.0));
        }
        let positive: [(&'static str, f64); 4] = [
            ("main_memory_bytes", self.main_memory_bytes),
            ("network_gbps", self.network_gbps),
            ("interconnect_scale", self.interconnect_scale),
            ("storage.throughput_bps", self.storage.throughput_bps),
        ];
        for (field, value) in positive {
            if !value.is_finite() || value <= 0.0 {
                return Err(bad(field, value));
            }
        }
        if !self.price_per_hour.is_finite() || self.price_per_hour < 0.0 {
            return Err(bad("price_per_hour", self.price_per_hour));
        }
        Ok(())
    }

    /// Price of `hours` of use, USD.
    #[must_use]
    pub fn cost_for_hours(&self, hours: f64) -> f64 {
        self.price_per_hour * hours.max(0.0)
    }
}

/// `p2.xlarge` — 1x K80.
#[must_use]
pub fn p2_xlarge() -> InstanceType {
    InstanceType {
        name: "p2.xlarge".into(),
        family: "P2",
        gpu: GpuModel::K80,
        gpu_count: 1,
        vcpus: 4,
        interconnect: Interconnect::Pcie,
        main_memory_bytes: gib(61.0),
        network_gbps: 1.0, // Table I: "< 10"
        price_per_hour: 0.90,
        interconnect_scale: 1.0,
        storage: StorageSpec::gp2(),
    }
}

/// `p2.8xlarge` — 8x K80.
#[must_use]
pub fn p2_8xlarge() -> InstanceType {
    InstanceType {
        name: "p2.8xlarge".into(),
        family: "P2",
        gpu: GpuModel::K80,
        gpu_count: 8,
        vcpus: 32,
        interconnect: Interconnect::Pcie,
        main_memory_bytes: gib(488.0),
        network_gbps: 10.0,
        price_per_hour: 7.20,
        interconnect_scale: 1.0,
        storage: StorageSpec::gp2(),
    }
}

/// `p2.16xlarge` — 16x K80.
#[must_use]
pub fn p2_16xlarge() -> InstanceType {
    InstanceType {
        name: "p2.16xlarge".into(),
        family: "P2",
        gpu: GpuModel::K80,
        gpu_count: 16,
        vcpus: 64,
        interconnect: Interconnect::Pcie,
        main_memory_bytes: gib(732.0),
        network_gbps: 25.0,
        price_per_hour: 14.40,
        interconnect_scale: 1.0,
        storage: StorageSpec::gp2(),
    }
}

/// `p3.2xlarge` — 1x V100.
#[must_use]
pub fn p3_2xlarge() -> InstanceType {
    InstanceType {
        name: "p3.2xlarge".into(),
        family: "P3",
        gpu: GpuModel::V100,
        gpu_count: 1,
        vcpus: 8,
        interconnect: Interconnect::Pcie,
        main_memory_bytes: gib(61.0),
        network_gbps: 10.0,
        price_per_hour: 3.06,
        interconnect_scale: 1.0,
        storage: StorageSpec::gp2(),
    }
}

/// `p3.8xlarge` — 4x V100 with the default (degraded) crossbar slice; see
/// [`p3_8xlarge_sliced`] to choose the allocation quality.
#[must_use]
pub fn p3_8xlarge() -> InstanceType {
    p3_8xlarge_sliced(Slicing::Degraded)
}

/// `p3.8xlarge` with an explicit crossbar [`Slicing`] — the paper theorizes
/// the allocation is probabilistic, so both variants are exposed.
#[must_use]
pub fn p3_8xlarge_sliced(slicing: Slicing) -> InstanceType {
    InstanceType {
        name: "p3.8xlarge".into(),
        family: "P3",
        gpu: GpuModel::V100,
        gpu_count: 4,
        vcpus: 32,
        interconnect: Interconnect::NvLink { slicing },
        main_memory_bytes: gib(244.0),
        network_gbps: 10.0,
        price_per_hour: 12.24,
        interconnect_scale: 1.0,
        storage: StorageSpec::gp2(),
    }
}

/// `p3.16xlarge` — 8x V100, full crossbar.
#[must_use]
pub fn p3_16xlarge() -> InstanceType {
    InstanceType {
        name: "p3.16xlarge".into(),
        family: "P3",
        gpu: GpuModel::V100,
        gpu_count: 8,
        vcpus: 64,
        interconnect: Interconnect::NvLink {
            slicing: Slicing::Full,
        },
        main_memory_bytes: gib(488.0),
        network_gbps: 25.0,
        price_per_hour: 24.48,
        interconnect_scale: 1.0,
        storage: StorageSpec::gp2(),
    }
}

/// `p3.24xlarge` — dedicated offering: 8x V100-32GB, 100 Gbps. The
/// instance ships local NVMe, but the paper's training data lives on the
/// same general-purpose EBS volume as everywhere else — which is why the
/// 24xlarge shows the same stalls as the 16xlarge (§V-B).
#[must_use]
pub fn p3_24xlarge() -> InstanceType {
    InstanceType {
        name: "p3.24xlarge".into(),
        family: "P3",
        gpu: GpuModel::V100_32,
        gpu_count: 8,
        vcpus: 96,
        interconnect: Interconnect::NvLink {
            slicing: Slicing::Full,
        },
        main_memory_bytes: gib(768.0),
        network_gbps: 100.0,
        price_per_hour: 31.218,
        interconnect_scale: 1.0,
        storage: StorageSpec::gp2(),
    }
}

/// `p4` (p4d.24xlarge) — 8x A100 behind NVSwitch. Listed in Table I but
/// not characterized by the paper (dedicated, single-variant offering).
#[must_use]
pub fn p4() -> InstanceType {
    InstanceType {
        name: "p4".into(),
        family: "P4",
        gpu: GpuModel::A100,
        gpu_count: 8,
        vcpus: 96,
        interconnect: Interconnect::NvSwitch,
        main_memory_bytes: gib(1152.0),
        network_gbps: 400.0,
        price_per_hour: 32.7726,
        interconnect_scale: 1.0,
        storage: StorageSpec::local_nvme(),
    }
}

/// The full Table I catalog, in the paper's order.
#[must_use]
pub fn catalog() -> Vec<InstanceType> {
    vec![
        p4(),
        p3_2xlarge(),
        p3_8xlarge(),
        p3_16xlarge(),
        p3_24xlarge(),
        p2_xlarge(),
        p2_8xlarge(),
        p2_16xlarge(),
    ]
}

/// Looks up an instance type by its API name.
#[must_use]
pub fn by_name(name: &str) -> Option<InstanceType> {
    catalog().into_iter().find(|i| i.name == name)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table1_sizes() {
        assert_eq!(p2_16xlarge().gpu_count, 16);
        assert_eq!(p3_16xlarge().gpu_count, 8);
        assert_eq!(p3_24xlarge().gpu_count, 8);
        assert_eq!(p4().gpu_count, 8);
        assert_eq!(p2_xlarge().vcpus, 4);
        assert_eq!(p3_24xlarge().vcpus, 96);
    }

    #[test]
    fn prices_match_table1() {
        assert_eq!(p2_xlarge().price_per_hour, 0.90);
        assert_eq!(p2_8xlarge().price_per_hour, 7.20);
        assert_eq!(p2_16xlarge().price_per_hour, 14.40);
        assert_eq!(p3_2xlarge().price_per_hour, 3.06);
        assert_eq!(p3_8xlarge().price_per_hour, 12.24);
        assert_eq!(p3_16xlarge().price_per_hour, 24.48);
        assert_eq!(p3_24xlarge().price_per_hour, 31.218);
        assert_eq!(p4().price_per_hour, 32.7726);
    }

    #[test]
    fn gpu_memory_totals_match_table1() {
        // Table I lists total GPU memory: 12/96/192 for P2, 16/64/128/256
        // for P3, 320 for P4 (GB, binary).
        let gb = |x: f64| x / gib(1.0);
        assert_eq!(gb(p2_xlarge().total_gpu_memory_bytes()), 12.0);
        assert_eq!(gb(p2_8xlarge().total_gpu_memory_bytes()), 96.0);
        assert_eq!(gb(p2_16xlarge().total_gpu_memory_bytes()), 192.0);
        assert_eq!(gb(p3_2xlarge().total_gpu_memory_bytes()), 16.0);
        assert_eq!(gb(p3_8xlarge().total_gpu_memory_bytes()), 64.0);
        assert_eq!(gb(p3_16xlarge().total_gpu_memory_bytes()), 128.0);
        assert_eq!(gb(p3_24xlarge().total_gpu_memory_bytes()), 256.0);
        assert_eq!(gb(p4().total_gpu_memory_bytes()), 320.0);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(by_name("p3.16xlarge").unwrap().gpu_count, 8);
        assert!(by_name("m5.large").is_none());
    }

    #[test]
    fn cost_is_linear_and_clamped() {
        let i = p3_2xlarge();
        assert_eq!(i.cost_for_hours(2.0), 6.12);
        assert_eq!(i.cost_for_hours(-1.0), 0.0);
    }

    #[test]
    fn every_catalog_instance_validates() {
        for inst in catalog() {
            inst.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", inst.name));
        }
    }

    #[test]
    #[allow(clippy::type_complexity)]
    fn hostile_instances_are_rejected() {
        let mutations: Vec<(&str, Box<dyn Fn(&mut InstanceType)>)> = vec![
            ("zero gpus", Box::new(|i| i.gpu_count = 0)),
            ("zero vcpus", Box::new(|i| i.vcpus = 0)),
            ("nan network", Box::new(|i| i.network_gbps = f64::NAN)),
            ("negative network", Box::new(|i| i.network_gbps = -1.0)),
            ("zero memory", Box::new(|i| i.main_memory_bytes = 0.0)),
            (
                "infinite scale",
                Box::new(|i| i.interconnect_scale = f64::INFINITY),
            ),
            ("zero storage", Box::new(|i| i.storage.throughput_bps = 0.0)),
            ("nan price", Box::new(|i| i.price_per_hour = f64::NAN)),
        ];
        for (what, mutate) in mutations {
            let mut inst = p3_16xlarge();
            mutate(&mut inst);
            assert!(
                matches!(inst.validate(), Err(TopoError::InvalidInstance { .. })),
                "{what} accepted"
            );
        }
    }

    #[test]
    fn catalog_has_unique_names() {
        let mut names: Vec<_> = catalog().into_iter().map(|i| i.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
