//! Cluster specifications: one or more instances tied by the VM network.
//!
//! The paper's experiments use either a single instance or several
//! identical instances connected over the AWS network (e.g. "p3.8xlarge*2").

use serde::Serialize;

use crate::error::TopoError;
use crate::instance::{by_name, InstanceType};

/// A set of instances participating in one data-parallel training job.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterSpec {
    /// Member instances. All GPUs of every member participate.
    pub instances: Vec<InstanceType>,
}

impl ClusterSpec {
    /// Single-instance cluster.
    #[must_use]
    pub fn single(instance: InstanceType) -> Self {
        ClusterSpec {
            instances: vec![instance],
        }
    }

    /// `count` identical instances connected via the network (the paper's
    /// `"<type>*<count>"` notation).
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    #[must_use]
    pub fn homogeneous(instance: InstanceType, count: usize) -> Self {
        assert!(count > 0, "a cluster needs at least one instance");
        ClusterSpec {
            instances: std::iter::repeat_with(|| instance.clone())
                .take(count)
                .collect(),
        }
    }

    /// Like [`ClusterSpec::homogeneous`] but with a typed error instead
    /// of a panic, for callers fed untrusted counts.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::InvalidCluster`] for `count == 0` and
    /// [`TopoError::InvalidInstance`] for a hostile instance description.
    pub fn try_homogeneous(instance: InstanceType, count: usize) -> Result<Self, TopoError> {
        if count == 0 {
            return Err(TopoError::InvalidCluster(
                "a cluster needs at least one instance".into(),
            ));
        }
        instance.validate()?;
        Ok(ClusterSpec::homogeneous(instance, count))
    }

    /// Rejects empty clusters and hostile member instances.
    ///
    /// # Errors
    ///
    /// Returns [`TopoError::InvalidCluster`] when the cluster has no
    /// instances, or the first member's [`TopoError::InvalidInstance`].
    pub fn validate(&self) -> Result<(), TopoError> {
        if self.instances.is_empty() {
            return Err(TopoError::InvalidCluster(
                "cluster has no instances (empty topology)".into(),
            ));
        }
        for inst in &self.instances {
            inst.validate()?;
        }
        Ok(())
    }

    /// Total number of GPUs across the cluster (the DDP world size).
    #[must_use]
    pub fn world_size(&self) -> usize {
        self.instances.iter().map(|i| i.gpu_count).sum()
    }

    /// Number of instances.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.instances.len()
    }

    /// Whether training crosses the VM network.
    #[must_use]
    pub fn is_distributed(&self) -> bool {
        self.instances.len() > 1
    }

    /// Combined price per hour, USD.
    #[must_use]
    pub fn price_per_hour(&self) -> f64 {
        self.instances.iter().map(|i| i.price_per_hour).sum()
    }

    /// Parses the paper's cluster notation: an instance name optionally
    /// followed by `*<count>` (e.g. `"p3.8xlarge*2"`).
    ///
    /// # Errors
    ///
    /// Returns a human-readable message for unknown instances or invalid
    /// counts.
    pub fn parse(spec: &str) -> Result<ClusterSpec, String> {
        let (name, count) = match spec.split_once('*') {
            Some((n, c)) => (
                n,
                c.parse::<usize>()
                    .map_err(|_| format!("bad replica count in '{spec}'"))?,
            ),
            None => (spec, 1),
        };
        if count == 0 {
            return Err("replica count must be positive".into());
        }
        let inst = by_name(name).ok_or_else(|| format!("unknown instance '{name}'"))?;
        Ok(ClusterSpec::homogeneous(inst, count))
    }

    /// Display name: `"p3.8xlarge"` or `"p3.8xlarge*2"` for homogeneous
    /// clusters, comma-joined names otherwise.
    #[must_use]
    pub fn display_name(&self) -> String {
        let first = &self.instances[0].name;
        if self.instances.iter().all(|i| &i.name == first) {
            if self.instances.len() == 1 {
                first.clone()
            } else {
                format!("{first}*{}", self.instances.len())
            }
        } else {
            self.instances
                .iter()
                .map(|i| i.name.as_str())
                .collect::<Vec<_>>()
                .join(",")
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::instance::{p2_8xlarge, p3_16xlarge, p3_8xlarge};

    #[test]
    fn world_size_sums_gpus() {
        let c = ClusterSpec::homogeneous(p3_8xlarge(), 2);
        assert_eq!(c.world_size(), 8);
        assert_eq!(c.node_count(), 2);
        assert!(c.is_distributed());
    }

    #[test]
    fn single_is_not_distributed() {
        let c = ClusterSpec::single(p3_16xlarge());
        assert!(!c.is_distributed());
        assert_eq!(c.world_size(), 8);
    }

    #[test]
    fn display_name_uses_star_notation() {
        assert_eq!(
            ClusterSpec::single(p3_8xlarge()).display_name(),
            "p3.8xlarge"
        );
        assert_eq!(
            ClusterSpec::homogeneous(p3_8xlarge(), 2).display_name(),
            "p3.8xlarge*2"
        );
        let mixed = ClusterSpec {
            instances: vec![p3_8xlarge(), p2_8xlarge()],
        };
        assert_eq!(mixed.display_name(), "p3.8xlarge,p2.8xlarge");
    }

    #[test]
    fn price_sums_members() {
        let c = ClusterSpec::homogeneous(p2_8xlarge(), 2);
        assert_eq!(c.price_per_hour(), 14.40);
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn empty_homogeneous_rejected() {
        let _ = ClusterSpec::homogeneous(p2_8xlarge(), 0);
    }

    #[test]
    fn try_homogeneous_rejects_hostile_input_with_typed_errors() {
        assert!(matches!(
            ClusterSpec::try_homogeneous(p2_8xlarge(), 0),
            Err(TopoError::InvalidCluster(_))
        ));
        let mut inst = p2_8xlarge();
        inst.network_gbps = f64::NAN;
        assert!(matches!(
            ClusterSpec::try_homogeneous(inst, 2),
            Err(TopoError::InvalidInstance { .. })
        ));
        assert!(ClusterSpec::try_homogeneous(p2_8xlarge(), 2).is_ok());
    }

    #[test]
    fn empty_cluster_fails_validation() {
        let empty = ClusterSpec { instances: vec![] };
        assert!(matches!(
            empty.validate(),
            Err(TopoError::InvalidCluster(_))
        ));
        assert!(ClusterSpec::single(p3_16xlarge()).validate().is_ok());
    }

    #[test]
    fn parse_round_trips_display_names() {
        for spec in ["p3.16xlarge", "p3.8xlarge*2", "p2.xlarge"] {
            let c = ClusterSpec::parse(spec).unwrap();
            assert_eq!(c.display_name(), spec);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ClusterSpec::parse("m5.large").is_err());
        assert!(ClusterSpec::parse("p3.8xlarge*0").is_err());
        assert!(ClusterSpec::parse("p3.8xlarge*x").is_err());
    }
}
