//! The flow network: links + active flows + time integration.
//!
//! [`FlowNet`] is driven by an external event loop. The contract is:
//!
//! 1. mutate the network only at the current time (`start_flow`,
//!    `cancel_flow`), after calling [`FlowNet::advance`] to that time;
//! 2. after every mutation, ask [`FlowNet::next_event_time`] and schedule a
//!    wake-up event then;
//! 3. on wake-up, call [`FlowNet::advance`] and drain
//!    [`FlowNet::take_completed`].
//!
//! Stale wake-ups (scheduled before a topology change) are harmless: they
//! simply find nothing completed.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use stash_simkit::time::{SimDuration, SimTime};

use stash_simkit::stats::TimeWeighted;

use stash_trace::{Category, SharedTracer, Track};

use crate::fairness::{max_min_rates, MaxMinScratch};
use crate::link::{Link, LinkClass, LinkId};

/// Identifier of an in-flight flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId(u64);

/// Description of a transfer to start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Links traversed, in order. May be empty for an unconstrained
    /// (infinitely fast) transfer that still pays latency.
    pub route: Vec<LinkId>,
    /// Payload size in bytes.
    pub bytes: f64,
    /// Extra fixed latency beyond the sum of link latencies (e.g. kernel
    /// launch or protocol overhead).
    pub extra_latency: SimDuration,
    /// Opaque tag returned on completion so the caller can route the event.
    pub tag: u64,
}

impl FlowSpec {
    /// Convenience constructor with no extra latency.
    #[must_use]
    pub fn new(route: Vec<LinkId>, bytes: f64, tag: u64) -> Self {
        FlowSpec {
            route,
            bytes,
            extra_latency: SimDuration::ZERO,
            tag,
        }
    }
}

#[derive(Debug, Clone)]
struct FlowState {
    route: Vec<usize>,
    /// `route` sorted and deduplicated, computed once at start: what the
    /// fair-share allocator and the per-link user counts operate on.
    route_dedup: Vec<usize>,
    remaining_latency: SimDuration,
    remaining_bytes: f64,
    rate: f64,
    /// Whether this flow currently contributes to [`FlowNet::link_users`]
    /// (latency elapsed, bytes outstanding).
    counted: bool,
    tag: u64,
    /// Stall class for trace events, derived from the route's link
    /// classes at start.
    cat: Category,
}

/// A set of links plus the flows currently crossing them.
///
/// Rates are recomputed with max-min fairness at every state change; between
/// changes every flow progresses linearly, so completions can be predicted
/// exactly.
///
/// # Examples
///
/// ```
/// use stash_flowsim::prelude::*;
/// use stash_simkit::time::{SimDuration, SimTime};
///
/// let mut net = FlowNet::new();
/// let l = net.add_link(Link::new("bus", 100.0, SimDuration::ZERO, LinkClass::PcieHostBus));
/// let t0 = SimTime::ZERO;
/// net.start_flow(t0, FlowSpec::new(vec![l], 50.0, 1));
/// let done = net.next_event_time(t0).unwrap();
/// assert!((done.as_secs_f64() - 0.5).abs() < 1e-6); // 50 bytes at 100 B/s
/// net.advance(done);
/// assert_eq!(net.take_completed().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct FlowNet {
    links: Vec<Link>,
    flows: BTreeMap<FlowId, FlowState>,
    completed: Vec<(FlowId, u64)>,
    last_advance: SimTime,
    next_id: u64,
    /// Total bytes delivered across all flows (diagnostics).
    delivered_bytes: f64,
    /// Per-link instantaneous load / capacity, integrated over time.
    link_load: Vec<TimeWeighted>,
    /// Per-link bytes carried.
    link_bytes: Vec<f64>,
    /// Link capacities, mirrored from `links` so rate solves skip the
    /// per-event rebuild.
    caps: Vec<f64>,
    /// Per-link count of counted (allocator-visible) flows. Lets state
    /// changes that touch only uncontended links skip the full solve.
    link_users: Vec<u32>,
    /// Per-link instantaneous rate sum of counted flows — the numerator
    /// of the utilisation signal, maintained incrementally.
    link_rate_load: Vec<f64>,
    /// Reusable water-filling working memory.
    scratch: MaxMinScratch,
    /// Reusable id buffers for the allocator and event settling.
    active_ids: Vec<FlowId>,
    activated_buf: Vec<FlowId>,
    done_buf: Vec<FlowId>,
    freed_buf: Vec<usize>,
    /// Full water-filling solves performed (diagnostics).
    full_recomputes: u64,
    /// State changes settled without a full solve (diagnostics).
    shortcut_events: u64,
    /// Optional event recorder: flow lifecycle instants, allocated-rate
    /// counters and solver activity. `None` (the default) is the
    /// zero-cost path — every emission site gates on one `is_some`.
    tracer: Option<SharedTracer>,
}

impl FlowNet {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        FlowNet::default()
    }

    /// Attaches a trace recorder: subsequent flow starts, completions,
    /// rate changes and full solver runs are emitted as events. Pass the
    /// engine's shared tracer so network activity lands on the same
    /// timeline as compute spans.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    /// Stall class of a route: network hops dominate, then storage/DRAM
    /// (input fetch), everything else is intra-node interconnect.
    fn classify(&self, route_dedup: &[usize]) -> Category {
        let mut cat = Category::Interconnect;
        for &l in route_dedup {
            match self.links[l].class {
                LinkClass::Network => return Category::Network,
                LinkClass::Storage | LinkClass::Dram => cat = Category::Fetch,
                _ => {}
            }
        }
        cat
    }

    /// Registers a link and returns its id.
    pub fn add_link(&mut self, link: Link) -> LinkId {
        let id = LinkId(u32::try_from(self.links.len()).expect("too many links"));
        self.caps.push(link.capacity_bps);
        self.links.push(link);
        self.link_load
            .push(TimeWeighted::new(0.0, self.last_advance));
        self.link_bytes.push(0.0);
        self.link_users.push(0);
        self.link_rate_load.push(0.0);
        id
    }

    /// Mean utilisation (load / capacity, time-weighted) of `id` since the
    /// simulation started.
    #[must_use]
    pub fn link_utilization(&self, id: LinkId) -> f64 {
        self.link_load[id.index()].mean_until(self.last_advance)
    }

    /// Total bytes carried over `id`.
    #[must_use]
    pub fn link_carried_bytes(&self, id: LinkId) -> f64 {
        self.link_bytes[id.index()]
    }

    /// Immutable access to a link definition.
    #[must_use]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Number of registered links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of in-flight flows.
    #[must_use]
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes delivered so far.
    #[must_use]
    pub fn delivered_bytes(&self) -> f64 {
        self.delivered_bytes
    }

    /// Starts a flow at time `now` (which must not precede the last
    /// advance). Returns the flow id.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative or not finite, or if `now` precedes the
    /// last observed time.
    pub fn start_flow(&mut self, now: SimTime, spec: FlowSpec) -> FlowId {
        assert!(
            spec.bytes.is_finite() && spec.bytes >= 0.0,
            "flow bytes must be non-negative"
        );
        self.advance(now);
        let latency: SimDuration = spec
            .route
            .iter()
            .map(|l| self.links[l.index()].latency)
            .sum::<SimDuration>()
            + spec.extra_latency;
        let id = FlowId(self.next_id);
        self.next_id += 1;
        let route: Vec<usize> = spec.route.iter().map(|l| l.index()).collect();
        let mut route_dedup = route.clone();
        route_dedup.sort_unstable();
        route_dedup.dedup();
        let counted = latency.is_zero() && spec.bytes > 0.0;
        let cat = if self.tracer.is_some() {
            self.classify(&route_dedup)
        } else {
            Category::Interconnect
        };
        self.flows.insert(
            id,
            FlowState {
                route,
                route_dedup,
                remaining_latency: latency,
                remaining_bytes: spec.bytes,
                rate: 0.0,
                counted,
                tag: spec.tag,
                cat,
            },
        );
        if let Some(tr) = &self.tracer {
            tr.borrow_mut()
                .instant(Track::flow(id.0), cat, "flow_start", now);
        }
        if counted {
            let f = &self.flows[&id];
            for &l in &f.route_dedup {
                self.link_users[l] += 1;
            }
            let alone = f.route_dedup.iter().all(|&l| self.link_users[l] == 1);
            if alone {
                // Disjoint from every other active flow: the allocator
                // would give it min-capacity of its links and leave the
                // rest untouched, so assign that directly.
                self.settle_alone_flow(id);
                self.shortcut_events += 1;
                self.touch_loads();
            } else {
                self.recompute_rates();
            }
        } else {
            // Latency-phase flows are invisible to the allocator: rates
            // are unchanged, only the load integrals get their segment
            // boundary.
            self.shortcut_events += 1;
            self.touch_loads();
        }
        self.collect_done();
        id
    }

    /// Cancels an in-flight flow; returns `true` if it was still active.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> bool {
        self.advance(now);
        let Some(f) = self.flows.remove(&id) else {
            return false;
        };
        if f.counted {
            let mut contended = false;
            for &l in &f.route_dedup {
                self.link_users[l] -= 1;
                if self.link_users[l] > 0 {
                    contended = true;
                }
            }
            if contended {
                self.recompute_rates();
            } else {
                for &l in &f.route_dedup {
                    self.link_rate_load[l] = 0.0;
                }
                self.shortcut_events += 1;
                self.touch_loads();
            }
        } else {
            self.shortcut_events += 1;
            self.touch_loads();
        }
        true
    }

    /// Advances the network state to `now`, progressing latencies and byte
    /// counts. Completions are queued for [`FlowNet::take_completed`].
    ///
    /// # Panics
    ///
    /// Panics (debug) if `now` precedes the last advance.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_advance, "time moved backwards");
        if now <= self.last_advance {
            return;
        }
        let mut dt = now.duration_since(self.last_advance);
        // Process the interval in segments bounded by latency expiries and
        // predicted flow completions, so that (a) a flow entering its
        // transfer phase mid-interval gets correct rates for the remainder
        // and (b) bandwidth freed by a completing flow is redistributed to
        // the survivors for the rest of the interval.
        while !dt.is_zero() {
            let min_lat = self
                .flows
                .values()
                .filter(|f| !f.remaining_latency.is_zero())
                .map(|f| f.remaining_latency)
                .min();
            let min_ttc = self
                .flows
                .values()
                .filter(|f| {
                    f.remaining_latency.is_zero()
                        && f.remaining_bytes > 0.0
                        && f.rate > 0.0
                        && f.rate.is_finite()
                })
                .map(|f| {
                    SimDuration::from_secs_f64(f.remaining_bytes / f.rate)
                        .max(SimDuration::from_nanos(1))
                })
                .min();
            let mut seg = dt;
            if let Some(l) = min_lat {
                seg = seg.min(l);
            }
            if let Some(c) = min_ttc {
                seg = seg.min(c);
            }
            let mut boundary = false;
            for (&id, f) in self.flows.iter_mut() {
                if !f.remaining_latency.is_zero() {
                    f.remaining_latency = f.remaining_latency.saturating_sub(seg);
                    if f.remaining_latency.is_zero() {
                        boundary = true;
                        if f.remaining_bytes > 0.0 {
                            // Entering the transfer phase: join the
                            // allocator's user counts; rates settle at the
                            // boundary below.
                            f.counted = true;
                            for &l in &f.route_dedup {
                                self.link_users[l] += 1;
                            }
                            self.activated_buf.push(id);
                        }
                    }
                } else if f.remaining_bytes > 0.0 {
                    let moved = f.rate * seg.as_secs_f64();
                    for &l in &f.route {
                        self.link_bytes[l] += moved;
                    }
                    f.remaining_bytes -= moved;
                    // Snap tiny residues (< 1 ns worth of transfer) to done
                    // so rounding cannot stall the loop.
                    if f.remaining_bytes <= f.rate * 1e-9 {
                        f.remaining_bytes = 0.0;
                        boundary = true;
                    }
                }
            }
            dt -= seg;
            // Advance the clock segment-by-segment so rate changes (and the
            // utilisation integrals they update) land at the right instant.
            self.last_advance += seg;
            if boundary {
                self.collect_done();
            }
        }
        self.last_advance = now;
        self.collect_done();
    }

    /// Drains the list of flows that completed since the last call.
    /// Each entry is `(flow id, tag)`.
    pub fn take_completed(&mut self) -> Vec<(FlowId, u64)> {
        std::mem::take(&mut self.completed)
    }

    /// Earliest future time at which the network's state changes by itself:
    /// a latency expiry or a flow completion. `None` when nothing is in
    /// flight.
    #[must_use]
    pub fn next_event_time(&self, now: SimTime) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for f in self.flows.values() {
            let t = if !f.remaining_latency.is_zero() {
                now + f.remaining_latency
            } else if f.remaining_bytes <= 0.0 {
                now
            } else if f.rate > 0.0 {
                now + SimDuration::from_secs_f64(f.remaining_bytes / f.rate)
                    + SimDuration::from_nanos(1)
            } else if f.rate.is_infinite() || f.route.is_empty() {
                now
            } else {
                continue; // starved flow: waits for a topology change
            };
            best = Some(best.map_or(t, |b: SimTime| b.min(t)));
        }
        best
    }

    /// Instantaneous rate of a flow in bytes/sec (0 during its latency
    /// phase, `None` if unknown/completed).
    #[must_use]
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| {
            if f.remaining_latency.is_zero() {
                f.rate
            } else {
                0.0
            }
        })
    }

    /// Solves steady-state rates for a hypothetical set of routes without
    /// touching live state — used by bandwidth probes (paper Fig. 7).
    #[must_use]
    pub fn probe_rates(&self, routes: &[Vec<LinkId>]) -> Vec<f64> {
        let caps: Vec<f64> = self.links.iter().map(|l| l.capacity_bps).collect();
        let idx_routes: Vec<Vec<usize>> = routes
            .iter()
            .map(|r| r.iter().map(|l| l.index()).collect())
            .collect();
        max_min_rates(&caps, &idx_routes)
    }

    /// Number of full water-filling solves and of events settled by the
    /// incremental shortcuts instead, since construction.
    #[must_use]
    pub fn recompute_stats(&self) -> (u64, u64) {
        (self.full_recomputes, self.shortcut_events)
    }

    /// Assigns the exact allocator outcome for a counted flow that shares
    /// no link with any other counted flow: the minimum capacity along its
    /// route (infinite for an empty route), with its links' load sums
    /// updated in place. Every other flow's rate and load is untouched —
    /// which is also exactly what a full solve would conclude, since the
    /// flow forms its own component of the flow/link sharing graph.
    fn settle_alone_flow(&mut self, id: FlowId) {
        let f = self.flows.get_mut(&id).expect("flow vanished");
        let rate = f
            .route_dedup
            .iter()
            .map(|&l| self.caps[l])
            .fold(f64::INFINITY, f64::min);
        f.rate = rate;
        let cat = f.cat;
        if rate.is_finite() {
            for &l in &f.route {
                self.link_rate_load[l] += rate;
            }
        }
        if let Some(tr) = &self.tracer {
            tr.borrow_mut()
                .counter(Track::flow(id.0), cat, "rate_bps", self.last_advance, rate);
        }
    }

    /// Re-anchors every link's utilisation integral at the current time
    /// with its (maintained) load sum. Full solves and shortcuts both end
    /// with this, so the integrals see identical segment boundaries either
    /// way.
    fn touch_loads(&mut self) {
        for (l, w) in self.link_load.iter_mut().enumerate() {
            w.set(self.last_advance, self.link_rate_load[l] / self.caps[l]);
        }
    }

    fn recompute_rates(&mut self) {
        self.full_recomputes += 1;
        self.active_ids.clear();
        for (id, f) in &self.flows {
            if f.counted {
                self.active_ids.push(*id);
            }
        }
        // Snapshot pre-solve rates (traced runs only) so only genuine
        // rate changes become counter samples.
        let old_rates: Option<Vec<f64>> = self.tracer.as_ref().map(|_| {
            self.active_ids
                .iter()
                .map(|id| self.flows[id].rate)
                .collect()
        });
        let routes: Vec<&[usize]> = self
            .active_ids
            .iter()
            .map(|id| self.flows[id].route_dedup.as_slice())
            .collect();
        let rates = self.scratch.solve_dedup(&self.caps, &routes);
        for f in self.flows.values_mut() {
            f.rate = 0.0;
        }
        for (id, &rate) in self.active_ids.iter().zip(rates) {
            self.flows.get_mut(id).expect("flow vanished").rate = rate;
        }
        // Refresh per-link load sums and integrals.
        self.link_rate_load.iter_mut().for_each(|v| *v = 0.0);
        for f in self.flows.values() {
            if f.remaining_latency.is_zero() && f.rate.is_finite() {
                for &l in &f.route {
                    self.link_rate_load[l] += f.rate;
                }
            }
        }
        self.touch_loads();
        if let Some(tr) = &self.tracer {
            let mut t = tr.borrow_mut();
            t.instant(
                Track::solver(),
                Category::Solver,
                "full_solve",
                self.last_advance,
            );
            if let Some(old) = old_rates {
                for (i, id) in self.active_ids.iter().enumerate() {
                    let f = &self.flows[id];
                    if f.rate != old[i] {
                        t.counter(
                            Track::flow(id.0),
                            f.cat,
                            "rate_bps",
                            self.last_advance,
                            f.rate,
                        );
                    }
                }
            }
        }
    }

    /// Moves finished flows to the completed queue and settles any flows
    /// that just entered their transfer phase; returns whether any flow
    /// finished. Rates are recomputed only when a change can actually
    /// shift the allocation — a removal or activation whose links carry no
    /// other flow is settled directly.
    fn collect_done(&mut self) -> bool {
        self.done_buf.clear();
        for (id, f) in &self.flows {
            if f.remaining_latency.is_zero()
                && (f.remaining_bytes <= 0.0 || f.route.is_empty() || f.rate.is_infinite())
            {
                self.done_buf.push(*id);
            }
        }
        let any = !self.done_buf.is_empty();
        if !any && self.activated_buf.is_empty() {
            return false;
        }

        self.freed_buf.clear();
        let done = std::mem::take(&mut self.done_buf);
        for id in &done {
            let f = self.flows.remove(id).expect("flow vanished");
            self.delivered_bytes += f.remaining_bytes.max(0.0);
            self.completed.push((*id, f.tag));
            if f.counted {
                for &l in &f.route_dedup {
                    self.link_users[l] -= 1;
                    self.freed_buf.push(l);
                }
            }
            if let Some(tr) = &self.tracer {
                tr.borrow_mut()
                    .instant(Track::flow(id.0), f.cat, "flow_done", self.last_advance);
            }
        }
        self.done_buf = done;

        // A removal perturbs survivors only via links it shared with them;
        // an activation perturbs others only via links that already have a
        // user. If neither applies, the old allocation is still the
        // max-min solution for the survivors.
        let mut needs_full = self.freed_buf.iter().any(|&l| self.link_users[l] > 0);
        if !needs_full {
            for id in &self.activated_buf {
                // Flows both activated and finished in this settling (e.g.
                // empty routes) were removed above — skip them.
                if let Some(f) = self.flows.get(id) {
                    if f.route_dedup.iter().any(|&l| self.link_users[l] != 1) {
                        needs_full = true;
                        break;
                    }
                }
            }
        }

        if needs_full {
            self.activated_buf.clear();
            self.recompute_rates();
        } else {
            for i in 0..self.freed_buf.len() {
                self.link_rate_load[self.freed_buf[i]] = 0.0;
            }
            let activated = std::mem::take(&mut self.activated_buf);
            for id in &activated {
                if self.flows.contains_key(id) {
                    self.settle_alone_flow(*id);
                }
            }
            self.activated_buf = activated;
            self.activated_buf.clear();
            self.shortcut_events += 1;
            self.touch_loads();
        }
        any
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkClass;

    fn mk_net(caps: &[f64]) -> (FlowNet, Vec<LinkId>) {
        let mut net = FlowNet::new();
        let ids = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                net.add_link(Link::new(
                    format!("l{i}"),
                    c,
                    SimDuration::ZERO,
                    LinkClass::Other,
                ))
            })
            .collect();
        (net, ids)
    }

    #[test]
    fn single_flow_completes_on_schedule() {
        let (mut net, l) = mk_net(&[100.0]);
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 200.0, 7));
        let t = net.next_event_time(SimTime::ZERO).unwrap();
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-6);
        net.advance(t);
        let done = net.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, 7);
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        let (mut net, l) = mk_net(&[100.0]);
        // Flow A: 100 bytes, flow B: 50 bytes, same link.
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 100.0, 1));
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 50.0, 2));
        // Shared at 50 B/s each: B finishes at t=1; A then runs at 100 B/s
        // with 50 bytes left → finishes at t=1.5.
        let t1 = net.next_event_time(SimTime::ZERO).unwrap();
        assert!((t1.as_secs_f64() - 1.0).abs() < 1e-6);
        net.advance(t1);
        assert_eq!(net.take_completed(), vec![(FlowId(1), 2)]);
        let t2 = net.next_event_time(t1).unwrap();
        assert!(
            (t2.as_secs_f64() - 1.5).abs() < 1e-6,
            "t2={}",
            t2.as_secs_f64()
        );
        net.advance(t2);
        assert_eq!(net.take_completed().len(), 1);
    }

    #[test]
    fn latency_delays_transfer_start() {
        let mut net = FlowNet::new();
        let l = net.add_link(Link::new(
            "lat",
            100.0,
            SimDuration::from_secs(1),
            LinkClass::Network,
        ));
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l], 100.0, 0));
        // 1s latency + 1s transfer.
        let t1 = net.next_event_time(SimTime::ZERO).unwrap();
        assert_eq!(t1.as_secs_f64(), 1.0);
        net.advance(t1);
        assert!(net.take_completed().is_empty());
        let t2 = net.next_event_time(t1).unwrap();
        assert!((t2.as_secs_f64() - 2.0).abs() < 1e-6);
        net.advance(t2);
        assert_eq!(net.take_completed().len(), 1);
    }

    #[test]
    fn advance_across_latency_boundary_is_exact() {
        // One flow with latency, one without, same link. Advancing in a
        // single big step must give the same result as stepping precisely.
        let mut net = FlowNet::new();
        let l = net.add_link(Link::new("b", 100.0, SimDuration::ZERO, LinkClass::Other));
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l], 100.0, 1)); // no latency
        let spec = FlowSpec {
            route: vec![l],
            bytes: 100.0,
            extra_latency: SimDuration::from_millis(500),
            tag: 2,
        };
        net.start_flow(SimTime::ZERO, spec);
        // Phase 1 (0–0.5s): flow1 alone at 100 B/s → 50 bytes left.
        // Phase 2: both share 50 B/s. flow1 needs 1s more → done at 1.5s.
        net.advance(SimTime::from_nanos(2_000_000_000));
        let done = net.take_completed();
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn zero_byte_flow_completes_after_latency() {
        let mut net = FlowNet::new();
        let l = net.add_link(Link::new(
            "n",
            10.0,
            SimDuration::from_millis(3),
            LinkClass::Network,
        ));
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l], 0.0, 9));
        let t = net.next_event_time(SimTime::ZERO).unwrap();
        assert_eq!(t.as_secs_f64(), 0.003);
        net.advance(t);
        assert_eq!(net.take_completed().len(), 1);
    }

    #[test]
    fn empty_route_zero_latency_completes_immediately() {
        let mut net = FlowNet::new();
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![], 1e9, 3));
        assert_eq!(net.take_completed().len(), 1);
    }

    #[test]
    fn cancel_restores_bandwidth() {
        let (mut net, l) = mk_net(&[100.0]);
        let a = net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 1000.0, 1));
        let b = net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 100.0, 2));
        assert_eq!(net.flow_rate(b), Some(50.0));
        assert!(net.cancel_flow(SimTime::ZERO, a));
        assert_eq!(net.flow_rate(b), Some(100.0));
        assert!(!net.cancel_flow(SimTime::ZERO, a));
    }

    #[test]
    fn probe_rates_match_fair_share() {
        let (mut net, l) = mk_net(&[100.0, 40.0]);
        let _ = &mut net;
        let rates = net.probe_rates(&[vec![l[0]], vec![l[0], l[1]]]);
        assert!((rates[1] - 40.0).abs() < 1e-9);
        assert!((rates[0] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_and_bytes_are_tracked() {
        let (mut net, l) = mk_net(&[100.0]);
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 100.0, 0));
        // Fully busy for 1 s, idle for 1 s.
        net.advance(SimTime::from_nanos(2_000_000_000));
        let _ = net.take_completed();
        assert!((net.link_carried_bytes(l[0]) - 100.0).abs() < 1e-6);
        let util = net.link_utilization(l[0]);
        assert!((util - 0.5).abs() < 1e-6, "util={util}");
    }

    #[test]
    fn idle_link_has_zero_utilization() {
        let (mut net, l) = mk_net(&[100.0, 50.0]);
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 10.0, 0));
        net.advance(SimTime::from_nanos(1_000_000_000));
        assert_eq!(net.link_utilization(l[1]), 0.0);
        assert_eq!(net.link_carried_bytes(l[1]), 0.0);
    }

    /// Full-solve oracle: what the seed's recompute (max-min over every
    /// counted flow's route) would assign right now.
    fn oracle_rates(net: &FlowNet) -> Vec<(FlowId, f64)> {
        let caps: Vec<f64> = net.links.iter().map(|l| l.capacity_bps).collect();
        let ids: Vec<FlowId> = net
            .flows
            .iter()
            .filter(|(_, f)| f.counted)
            .map(|(id, _)| *id)
            .collect();
        let routes: Vec<Vec<usize>> = ids.iter().map(|id| net.flows[id].route.clone()).collect();
        let rates = max_min_rates(&caps, &routes);
        ids.into_iter().zip(rates).collect()
    }

    #[test]
    fn incremental_rates_match_full_solve_throughout() {
        // Mixed scenario: disjoint flows, shared bottlenecks, latency
        // phases and a cancellation. After every event the incremental
        // allocation must equal a from-scratch solve bit-for-bit.
        let (mut net, l) = mk_net(&[100.0, 40.0, 250.0, 10.0]);
        let mut now = SimTime::ZERO;
        net.start_flow(now, FlowSpec::new(vec![l[2]], 500.0, 0)); // alone
        net.start_flow(now, FlowSpec::new(vec![l[0]], 300.0, 1));
        net.start_flow(now, FlowSpec::new(vec![l[0], l[1]], 120.0, 2)); // shares l0
        let victim = net.start_flow(
            now,
            FlowSpec {
                route: vec![l[1], l[3]],
                bytes: 90.0,
                extra_latency: SimDuration::from_millis(700),
                tag: 3,
            },
        );
        let mut steps = 0;
        loop {
            for (id, want) in oracle_rates(&net) {
                let got = net.flows[&id].rate;
                assert!(
                    got == want || (got.is_infinite() && want.is_infinite()),
                    "flow {id:?}: incremental {got} != full solve {want}"
                );
            }
            if steps == 2 {
                net.cancel_flow(now, victim);
            }
            let Some(t) = net.next_event_time(now) else {
                break;
            };
            net.advance(t);
            now = t;
            net.take_completed();
            steps += 1;
            assert!(steps < 32, "scenario failed to converge");
        }
        assert_eq!(net.active_flows(), 0);
        let (full, shortcut) = net.recompute_stats();
        assert!(full > 0, "shared links must trigger full solves");
        assert!(shortcut > 0, "disjoint events must take the shortcut");
    }

    #[test]
    fn disjoint_flows_never_trigger_full_solves() {
        let (mut net, l) = mk_net(&[100.0, 50.0, 25.0]);
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 100.0, 0));
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[1]], 100.0, 1));
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[2]], 100.0, 2));
        assert_eq!(net.flow_rate(FlowId(0)), Some(100.0));
        assert_eq!(net.flow_rate(FlowId(1)), Some(50.0));
        assert_eq!(net.flow_rate(FlowId(2)), Some(25.0));
        let mut now = SimTime::ZERO;
        while let Some(t) = net.next_event_time(now) {
            net.advance(t);
            now = t;
            net.take_completed();
        }
        assert_eq!(net.active_flows(), 0);
        let (full, shortcut) = net.recompute_stats();
        assert_eq!(full, 0, "uncontended traffic must skip the solver");
        assert!(shortcut >= 6, "starts and completions all shortcut");
        // Utilisation bookkeeping must survive the shortcut path: link 0
        // was saturated for 1 s of the 4 s total (100 B at 100 B/s; the
        // slowest link finishes at 4 s).
        assert!((net.link_utilization(l[0]) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn latency_activation_on_idle_links_shortcuts() {
        let (mut net, l) = mk_net(&[100.0]);
        let spec = FlowSpec {
            route: vec![l[0]],
            bytes: 100.0,
            extra_latency: SimDuration::from_millis(250),
            tag: 0,
        };
        net.start_flow(SimTime::ZERO, spec);
        let t1 = net.next_event_time(SimTime::ZERO).unwrap();
        net.advance(t1); // latency expiry: flow activates alone
        let t2 = net.next_event_time(t1).unwrap();
        assert!((t2.as_secs_f64() - 1.25).abs() < 1e-6);
        net.advance(t2);
        assert_eq!(net.take_completed().len(), 1);
        let (full, _) = net.recompute_stats();
        assert_eq!(full, 0, "an activation onto idle links needs no solve");
    }

    #[test]
    fn traced_flows_emit_lifecycle_events() {
        use stash_trace::{shared, JsonSink, Tracer, TrackKind};
        use std::cell::RefCell;
        use std::rc::Rc;

        let sink = Rc::new(RefCell::new(JsonSink::new()));
        let (mut net, l) = mk_net(&[100.0]);
        net.set_tracer(shared(Tracer::new(sink.clone())));
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 100.0, 1));
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 50.0, 2));
        let mut now = SimTime::ZERO;
        while let Some(t) = net.next_event_time(now) {
            net.advance(t);
            now = t;
            net.take_completed();
        }
        assert_eq!(net.active_flows(), 0);
        let events = sink.borrow().events().to_vec();
        let count = |name: &str| events.iter().filter(|(_, e)| e.name() == name).count();
        assert_eq!(count("flow_start"), 2);
        assert_eq!(count("flow_done"), 2);
        assert!(
            count("rate_bps") >= 3,
            "shared-link rates change during the run"
        );
        assert!(count("full_solve") >= 1, "contended start requires a solve");
        assert!(events
            .iter()
            .any(|(_, e)| e.track().kind == TrackKind::Flow));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (mut net, l) = mk_net(&[64.0, 32.0]);
            net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 111.0, 1));
            net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0], l[1]], 57.0, 2));
            let mut log = Vec::new();
            let mut now = SimTime::ZERO;
            while let Some(t) = net.next_event_time(now) {
                net.advance(t);
                now = t;
                for (id, tag) in net.take_completed() {
                    log.push((t.as_nanos(), id, tag));
                }
            }
            log
        };
        assert_eq!(run(), run());
        assert_eq!(run().len(), 2);
    }
}
