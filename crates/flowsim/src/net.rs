//! The flow network: links + active flows + time integration.
//!
//! [`FlowNet`] is driven by an external event loop. The contract is:
//!
//! 1. mutate the network only at the current time (`start_flow`,
//!    `cancel_flow`), after calling [`FlowNet::advance`] to that time;
//! 2. after every mutation, ask [`FlowNet::next_event_time`] and schedule a
//!    wake-up event then;
//! 3. on wake-up, call [`FlowNet::advance`] and drain
//!    [`FlowNet::take_completed`].
//!
//! Stale wake-ups (scheduled before a topology change) are harmless: they
//! simply find nothing completed.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use stash_simkit::time::{SimDuration, SimTime};

use stash_simkit::stats::TimeWeighted;

use crate::fairness::max_min_rates;
use crate::link::{Link, LinkId};

/// Identifier of an in-flight flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId(u64);

/// Description of a transfer to start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Links traversed, in order. May be empty for an unconstrained
    /// (infinitely fast) transfer that still pays latency.
    pub route: Vec<LinkId>,
    /// Payload size in bytes.
    pub bytes: f64,
    /// Extra fixed latency beyond the sum of link latencies (e.g. kernel
    /// launch or protocol overhead).
    pub extra_latency: SimDuration,
    /// Opaque tag returned on completion so the caller can route the event.
    pub tag: u64,
}

impl FlowSpec {
    /// Convenience constructor with no extra latency.
    #[must_use]
    pub fn new(route: Vec<LinkId>, bytes: f64, tag: u64) -> Self {
        FlowSpec {
            route,
            bytes,
            extra_latency: SimDuration::ZERO,
            tag,
        }
    }
}

#[derive(Debug, Clone)]
struct FlowState {
    route: Vec<usize>,
    remaining_latency: SimDuration,
    remaining_bytes: f64,
    rate: f64,
    tag: u64,
}

/// A set of links plus the flows currently crossing them.
///
/// Rates are recomputed with max-min fairness at every state change; between
/// changes every flow progresses linearly, so completions can be predicted
/// exactly.
///
/// # Examples
///
/// ```
/// use stash_flowsim::prelude::*;
/// use stash_simkit::time::{SimDuration, SimTime};
///
/// let mut net = FlowNet::new();
/// let l = net.add_link(Link::new("bus", 100.0, SimDuration::ZERO, LinkClass::PcieHostBus));
/// let t0 = SimTime::ZERO;
/// net.start_flow(t0, FlowSpec::new(vec![l], 50.0, 1));
/// let done = net.next_event_time(t0).unwrap();
/// assert!((done.as_secs_f64() - 0.5).abs() < 1e-6); // 50 bytes at 100 B/s
/// net.advance(done);
/// assert_eq!(net.take_completed().len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct FlowNet {
    links: Vec<Link>,
    flows: BTreeMap<FlowId, FlowState>,
    completed: Vec<(FlowId, u64)>,
    last_advance: SimTime,
    next_id: u64,
    /// Total bytes delivered across all flows (diagnostics).
    delivered_bytes: f64,
    /// Per-link instantaneous load / capacity, integrated over time.
    link_load: Vec<TimeWeighted>,
    /// Per-link bytes carried.
    link_bytes: Vec<f64>,
}

impl FlowNet {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        FlowNet::default()
    }

    /// Registers a link and returns its id.
    pub fn add_link(&mut self, link: Link) -> LinkId {
        let id = LinkId(u32::try_from(self.links.len()).expect("too many links"));
        self.links.push(link);
        self.link_load.push(TimeWeighted::new(0.0, self.last_advance));
        self.link_bytes.push(0.0);
        id
    }

    /// Mean utilisation (load / capacity, time-weighted) of `id` since the
    /// simulation started.
    #[must_use]
    pub fn link_utilization(&self, id: LinkId) -> f64 {
        self.link_load[id.index()].mean_until(self.last_advance)
    }

    /// Total bytes carried over `id`.
    #[must_use]
    pub fn link_carried_bytes(&self, id: LinkId) -> f64 {
        self.link_bytes[id.index()]
    }

    /// Immutable access to a link definition.
    #[must_use]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Number of registered links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Number of in-flight flows.
    #[must_use]
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes delivered so far.
    #[must_use]
    pub fn delivered_bytes(&self) -> f64 {
        self.delivered_bytes
    }

    /// Starts a flow at time `now` (which must not precede the last
    /// advance). Returns the flow id.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative or not finite, or if `now` precedes the
    /// last observed time.
    pub fn start_flow(&mut self, now: SimTime, spec: FlowSpec) -> FlowId {
        assert!(spec.bytes.is_finite() && spec.bytes >= 0.0, "flow bytes must be non-negative");
        self.advance(now);
        let latency: SimDuration = spec
            .route
            .iter()
            .map(|l| self.links[l.index()].latency)
            .sum::<SimDuration>()
            + spec.extra_latency;
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.insert(
            id,
            FlowState {
                route: spec.route.iter().map(|l| l.index()).collect(),
                remaining_latency: latency,
                remaining_bytes: spec.bytes,
                rate: 0.0,
                tag: spec.tag,
            },
        );
        self.recompute_rates();
        self.collect_done();
        id
    }

    /// Cancels an in-flight flow; returns `true` if it was still active.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> bool {
        self.advance(now);
        let existed = self.flows.remove(&id).is_some();
        if existed {
            self.recompute_rates();
        }
        existed
    }

    /// Advances the network state to `now`, progressing latencies and byte
    /// counts. Completions are queued for [`FlowNet::take_completed`].
    ///
    /// # Panics
    ///
    /// Panics (debug) if `now` precedes the last advance.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_advance, "time moved backwards");
        if now <= self.last_advance {
            return;
        }
        let mut dt = now.duration_since(self.last_advance);
        // Process the interval in segments bounded by latency expiries and
        // predicted flow completions, so that (a) a flow entering its
        // transfer phase mid-interval gets correct rates for the remainder
        // and (b) bandwidth freed by a completing flow is redistributed to
        // the survivors for the rest of the interval.
        while !dt.is_zero() {
            let min_lat = self
                .flows
                .values()
                .filter(|f| !f.remaining_latency.is_zero())
                .map(|f| f.remaining_latency)
                .min();
            let min_ttc = self
                .flows
                .values()
                .filter(|f| f.remaining_latency.is_zero() && f.remaining_bytes > 0.0 && f.rate > 0.0 && f.rate.is_finite())
                .map(|f| SimDuration::from_secs_f64(f.remaining_bytes / f.rate).max(SimDuration::from_nanos(1)))
                .min();
            let mut seg = dt;
            if let Some(l) = min_lat {
                seg = seg.min(l);
            }
            if let Some(c) = min_ttc {
                seg = seg.min(c);
            }
            let mut boundary = false;
            for f in self.flows.values_mut() {
                if !f.remaining_latency.is_zero() {
                    f.remaining_latency = f.remaining_latency.saturating_sub(seg);
                    if f.remaining_latency.is_zero() {
                        boundary = true;
                    }
                } else if f.remaining_bytes > 0.0 {
                    let moved = f.rate * seg.as_secs_f64();
                    for &l in &f.route {
                        self.link_bytes[l] += moved;
                    }
                    f.remaining_bytes -= moved;
                    // Snap tiny residues (< 1 ns worth of transfer) to done
                    // so rounding cannot stall the loop.
                    if f.remaining_bytes <= f.rate * 1e-9 {
                        f.remaining_bytes = 0.0;
                        boundary = true;
                    }
                }
            }
            dt -= seg;
            // Advance the clock segment-by-segment so rate changes (and the
            // utilisation integrals they update) land at the right instant.
            self.last_advance += seg;
            if boundary {
                let any_done = self.collect_done();
                if !any_done {
                    self.recompute_rates();
                }
            }
        }
        self.last_advance = now;
        self.collect_done();
    }

    /// Drains the list of flows that completed since the last call.
    /// Each entry is `(flow id, tag)`.
    pub fn take_completed(&mut self) -> Vec<(FlowId, u64)> {
        std::mem::take(&mut self.completed)
    }

    /// Earliest future time at which the network's state changes by itself:
    /// a latency expiry or a flow completion. `None` when nothing is in
    /// flight.
    #[must_use]
    pub fn next_event_time(&self, now: SimTime) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        for f in self.flows.values() {
            let t = if !f.remaining_latency.is_zero() {
                now + f.remaining_latency
            } else if f.remaining_bytes <= 0.0 {
                now
            } else if f.rate > 0.0 {
                now + SimDuration::from_secs_f64(f.remaining_bytes / f.rate)
                    + SimDuration::from_nanos(1)
            } else if f.rate.is_infinite() || f.route.is_empty() {
                now
            } else {
                continue; // starved flow: waits for a topology change
            };
            best = Some(best.map_or(t, |b: SimTime| b.min(t)));
        }
        best
    }

    /// Instantaneous rate of a flow in bytes/sec (0 during its latency
    /// phase, `None` if unknown/completed).
    #[must_use]
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.flows.get(&id).map(|f| if f.remaining_latency.is_zero() { f.rate } else { 0.0 })
    }

    /// Solves steady-state rates for a hypothetical set of routes without
    /// touching live state — used by bandwidth probes (paper Fig. 7).
    #[must_use]
    pub fn probe_rates(&self, routes: &[Vec<LinkId>]) -> Vec<f64> {
        let caps: Vec<f64> = self.links.iter().map(|l| l.capacity_bps).collect();
        let idx_routes: Vec<Vec<usize>> = routes
            .iter()
            .map(|r| r.iter().map(|l| l.index()).collect())
            .collect();
        max_min_rates(&caps, &idx_routes)
    }

    fn recompute_rates(&mut self) {
        let caps: Vec<f64> = self.links.iter().map(|l| l.capacity_bps).collect();
        let ids: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining_latency.is_zero() && f.remaining_bytes > 0.0)
            .map(|(id, _)| *id)
            .collect();
        let routes: Vec<Vec<usize>> = ids.iter().map(|id| self.flows[id].route.clone()).collect();
        let rates = max_min_rates(&caps, &routes);
        for f in self.flows.values_mut() {
            f.rate = 0.0;
        }
        for (id, rate) in ids.iter().zip(rates) {
            self.flows.get_mut(id).expect("flow vanished").rate = rate;
        }
        // Refresh per-link load integrals.
        let mut load = vec![0.0_f64; self.links.len()];
        for f in self.flows.values() {
            if f.remaining_latency.is_zero() && f.rate.is_finite() {
                for &l in &f.route {
                    load[l] += f.rate;
                }
            }
        }
        for (l, w) in self.link_load.iter_mut().enumerate() {
            w.set(self.last_advance, load[l] / self.links[l].capacity_bps);
        }
    }

    /// Moves finished flows to the completed queue; returns whether any
    /// flow finished (rates are recomputed in that case).
    fn collect_done(&mut self) -> bool {
        let done: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| {
                f.remaining_latency.is_zero()
                    && (f.remaining_bytes <= 0.0
                        || f.route.is_empty()
                        || f.rate.is_infinite())
            })
            .map(|(id, _)| *id)
            .collect();
        let mut any = false;
        for id in done {
            let f = self.flows.remove(&id).expect("flow vanished");
            self.delivered_bytes += f.remaining_bytes.max(0.0);
            self.completed.push((id, f.tag));
            any = true;
        }
        if any {
            self.recompute_rates();
        }
        any
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkClass;

    fn mk_net(caps: &[f64]) -> (FlowNet, Vec<LinkId>) {
        let mut net = FlowNet::new();
        let ids = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                net.add_link(Link::new(format!("l{i}"), c, SimDuration::ZERO, LinkClass::Other))
            })
            .collect();
        (net, ids)
    }

    #[test]
    fn single_flow_completes_on_schedule() {
        let (mut net, l) = mk_net(&[100.0]);
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 200.0, 7));
        let t = net.next_event_time(SimTime::ZERO).unwrap();
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-6);
        net.advance(t);
        let done = net.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, 7);
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        let (mut net, l) = mk_net(&[100.0]);
        // Flow A: 100 bytes, flow B: 50 bytes, same link.
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 100.0, 1));
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 50.0, 2));
        // Shared at 50 B/s each: B finishes at t=1; A then runs at 100 B/s
        // with 50 bytes left → finishes at t=1.5.
        let t1 = net.next_event_time(SimTime::ZERO).unwrap();
        assert!((t1.as_secs_f64() - 1.0).abs() < 1e-6);
        net.advance(t1);
        assert_eq!(net.take_completed(), vec![(FlowId(1), 2)]);
        let t2 = net.next_event_time(t1).unwrap();
        assert!((t2.as_secs_f64() - 1.5).abs() < 1e-6, "t2={}", t2.as_secs_f64());
        net.advance(t2);
        assert_eq!(net.take_completed().len(), 1);
    }

    #[test]
    fn latency_delays_transfer_start() {
        let mut net = FlowNet::new();
        let l = net.add_link(Link::new(
            "lat",
            100.0,
            SimDuration::from_secs(1),
            LinkClass::Network,
        ));
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l], 100.0, 0));
        // 1s latency + 1s transfer.
        let t1 = net.next_event_time(SimTime::ZERO).unwrap();
        assert_eq!(t1.as_secs_f64(), 1.0);
        net.advance(t1);
        assert!(net.take_completed().is_empty());
        let t2 = net.next_event_time(t1).unwrap();
        assert!((t2.as_secs_f64() - 2.0).abs() < 1e-6);
        net.advance(t2);
        assert_eq!(net.take_completed().len(), 1);
    }

    #[test]
    fn advance_across_latency_boundary_is_exact() {
        // One flow with latency, one without, same link. Advancing in a
        // single big step must give the same result as stepping precisely.
        let mut net = FlowNet::new();
        let l = net.add_link(Link::new("b", 100.0, SimDuration::ZERO, LinkClass::Other));
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l], 100.0, 1)); // no latency
        let spec = FlowSpec {
            route: vec![l],
            bytes: 100.0,
            extra_latency: SimDuration::from_millis(500),
            tag: 2,
        };
        net.start_flow(SimTime::ZERO, spec);
        // Phase 1 (0–0.5s): flow1 alone at 100 B/s → 50 bytes left.
        // Phase 2: both share 50 B/s. flow1 needs 1s more → done at 1.5s.
        net.advance(SimTime::from_nanos(2_000_000_000));
        let done = net.take_completed();
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn zero_byte_flow_completes_after_latency() {
        let mut net = FlowNet::new();
        let l = net.add_link(Link::new(
            "n",
            10.0,
            SimDuration::from_millis(3),
            LinkClass::Network,
        ));
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l], 0.0, 9));
        let t = net.next_event_time(SimTime::ZERO).unwrap();
        assert_eq!(t.as_secs_f64(), 0.003);
        net.advance(t);
        assert_eq!(net.take_completed().len(), 1);
    }

    #[test]
    fn empty_route_zero_latency_completes_immediately() {
        let mut net = FlowNet::new();
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![], 1e9, 3));
        assert_eq!(net.take_completed().len(), 1);
    }

    #[test]
    fn cancel_restores_bandwidth() {
        let (mut net, l) = mk_net(&[100.0]);
        let a = net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 1000.0, 1));
        let b = net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 100.0, 2));
        assert_eq!(net.flow_rate(b), Some(50.0));
        assert!(net.cancel_flow(SimTime::ZERO, a));
        assert_eq!(net.flow_rate(b), Some(100.0));
        assert!(!net.cancel_flow(SimTime::ZERO, a));
    }

    #[test]
    fn probe_rates_match_fair_share() {
        let (mut net, l) = mk_net(&[100.0, 40.0]);
        let _ = &mut net;
        let rates = net.probe_rates(&[vec![l[0]], vec![l[0], l[1]]]);
        assert!((rates[1] - 40.0).abs() < 1e-9);
        assert!((rates[0] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_and_bytes_are_tracked() {
        let (mut net, l) = mk_net(&[100.0]);
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 100.0, 0));
        // Fully busy for 1 s, idle for 1 s.
        net.advance(SimTime::from_nanos(2_000_000_000));
        let _ = net.take_completed();
        assert!((net.link_carried_bytes(l[0]) - 100.0).abs() < 1e-6);
        let util = net.link_utilization(l[0]);
        assert!((util - 0.5).abs() < 1e-6, "util={util}");
    }

    #[test]
    fn idle_link_has_zero_utilization() {
        let (mut net, l) = mk_net(&[100.0, 50.0]);
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 10.0, 0));
        net.advance(SimTime::from_nanos(1_000_000_000));
        assert_eq!(net.link_utilization(l[1]), 0.0);
        assert_eq!(net.link_carried_bytes(l[1]), 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (mut net, l) = mk_net(&[64.0, 32.0]);
            net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 111.0, 1));
            net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0], l[1]], 57.0, 2));
            let mut log = Vec::new();
            let mut now = SimTime::ZERO;
            while let Some(t) = net.next_event_time(now) {
                net.advance(t);
                now = t;
                for (id, tag) in net.take_completed() {
                    log.push((t.as_nanos(), id, tag));
                }
            }
            log
        };
        assert_eq!(run(), run());
        assert_eq!(run().len(), 2);
    }
}
