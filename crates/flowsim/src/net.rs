//! The flow network: links + active flows + time integration.
//!
//! [`FlowNet`] is driven by an external event loop. The contract is:
//!
//! 1. mutate the network only at the current time (`start_flow`,
//!    `cancel_flow`), after calling [`FlowNet::advance`] to that time;
//! 2. after every mutation, ask [`FlowNet::next_event_time`] and schedule a
//!    wake-up event then;
//! 3. on wake-up, call [`FlowNet::advance`] and drain
//!    [`FlowNet::take_completed`] (or, allocation-free,
//!    [`FlowNet::drain_completed_into`]).
//!
//! Stale wake-ups (scheduled before a topology change) are harmless: they
//! simply find nothing completed.
//!
//! Flow state lives in a free-list slab (`Vec<FlowSlot>` + generation-tagged
//! [`FlowId`]): start/complete/lookup are O(1) and a steady-state
//! start/advance/complete cycle performs no heap allocation — slots and
//! their route buffers are recycled, and the solver works off pooled flat
//! route buffers. An intrusive doubly-linked list threads the live slots in
//! creation order, so every iteration (and therefore every floating-point
//! accumulation order) is identical to the former `BTreeMap`-by-id walk.

use serde::{Deserialize, Serialize};
use stash_simkit::time::{SimDuration, SimTime};

use stash_simkit::stats::TimeWeighted;

use stash_trace::{Category, SharedTracer, Track};

use crate::fairness::{max_min_rates, MaxMinScratch};
use crate::link::{Link, LinkClass, LinkId};

/// Sentinel for "no slot" in the intrusive creation-order list.
const NIL: u32 = u32::MAX;

/// Identifier of an in-flight flow.
///
/// The id is a slab slot index tagged with the slot's generation: once a
/// flow completes or is cancelled its slot is recycled under a bumped
/// generation, so a stale id can never alias a later flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FlowId {
    idx: u32,
    gen: u32,
}

/// Description of a transfer to start.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Links traversed, in order. May be empty for an unconstrained
    /// (infinitely fast) transfer that still pays latency.
    pub route: Vec<LinkId>,
    /// Payload size in bytes.
    pub bytes: f64,
    /// Extra fixed latency beyond the sum of link latencies (e.g. kernel
    /// launch or protocol overhead).
    pub extra_latency: SimDuration,
    /// Opaque tag returned on completion so the caller can route the event.
    pub tag: u64,
}

impl FlowSpec {
    /// Convenience constructor with no extra latency.
    #[must_use]
    pub fn new(route: Vec<LinkId>, bytes: f64, tag: u64) -> Self {
        FlowSpec {
            route,
            bytes,
            extra_latency: SimDuration::ZERO,
            tag,
        }
    }
}

/// One slab slot: either a live flow or a vacant entry on the free list.
/// The route buffers keep their capacity across reuse.
#[derive(Debug, Clone)]
struct FlowSlot {
    gen: u32,
    in_use: bool,
    /// Monotonic creation counter, used for trace track identity (stable
    /// across slot reuse, matching the former ever-growing flow id).
    serial: u64,
    /// Intrusive doubly-linked list threading live slots in creation order.
    prev: u32,
    next: u32,
    route: Vec<usize>,
    /// `route` sorted and deduplicated, computed once at start: what the
    /// fair-share allocator and the per-link user counts operate on.
    route_dedup: Vec<usize>,
    remaining_latency: SimDuration,
    remaining_bytes: f64,
    rate: f64,
    /// Whether this flow currently contributes to [`FlowNet::link_users`]
    /// (latency elapsed, bytes outstanding).
    counted: bool,
    tag: u64,
    /// Stall class for trace events, derived from the route's link
    /// classes at start.
    cat: Category,
}

impl FlowSlot {
    fn vacant() -> FlowSlot {
        FlowSlot {
            gen: 0,
            in_use: false,
            serial: 0,
            prev: NIL,
            next: NIL,
            route: Vec::new(),
            route_dedup: Vec::new(),
            remaining_latency: SimDuration::ZERO,
            remaining_bytes: 0.0,
            rate: 0.0,
            counted: false,
            tag: 0,
            cat: Category::Interconnect,
        }
    }
}

/// A set of links plus the flows currently crossing them.
///
/// Rates are recomputed with max-min fairness at every state change; between
/// changes every flow progresses linearly, so completions can be predicted
/// exactly.
///
/// # Examples
///
/// ```
/// use stash_flowsim::prelude::*;
/// use stash_simkit::time::{SimDuration, SimTime};
///
/// let mut net = FlowNet::new();
/// let l = net.add_link(Link::new("bus", 100.0, SimDuration::ZERO, LinkClass::PcieHostBus));
/// let t0 = SimTime::ZERO;
/// net.start_flow(t0, FlowSpec::new(vec![l], 50.0, 1));
/// let done = net.next_event_time(t0).unwrap();
/// assert!((done.as_secs_f64() - 0.5).abs() < 1e-6); // 50 bytes at 100 B/s
/// net.advance(done);
/// assert_eq!(net.take_completed().len(), 1);
/// ```
#[derive(Debug)]
pub struct FlowNet {
    links: Vec<Link>,
    /// Flow slab: live slots are threaded by `head`/`tail` in creation
    /// order, vacant slots sit on `free`.
    slots: Vec<FlowSlot>,
    free: Vec<u32>,
    head: u32,
    tail: u32,
    n_active: usize,
    next_serial: u64,
    completed: Vec<(FlowId, u64)>,
    last_advance: SimTime,
    /// Total bytes delivered across all flows (diagnostics).
    delivered_bytes: f64,
    /// Per-link instantaneous load / capacity, integrated over time.
    link_load: Vec<TimeWeighted>,
    /// Per-link bytes carried.
    link_bytes: Vec<f64>,
    /// Link capacities, mirrored from `links` so rate solves skip the
    /// per-event rebuild.
    caps: Vec<f64>,
    /// Per-link count of counted (allocator-visible) flows. Lets state
    /// changes that touch only uncontended links skip the full solve.
    link_users: Vec<u32>,
    /// Per-link instantaneous rate sum of counted flows — the numerator
    /// of the utilisation signal, maintained incrementally.
    link_rate_load: Vec<f64>,
    /// Reusable water-filling working memory.
    scratch: MaxMinScratch,
    /// Reusable slot-index / id buffers for the allocator and settling.
    active_ids: Vec<u32>,
    activated_buf: Vec<FlowId>,
    done_buf: Vec<u32>,
    freed_buf: Vec<usize>,
    /// Pooled flat-packed dedup routes handed to the solver (one span per
    /// entry of `active_ids`).
    routes_flat: Vec<usize>,
    routes_spans: Vec<(u32, u32)>,
    /// Full water-filling solves performed (diagnostics).
    full_recomputes: u64,
    /// State changes settled without a full solve (diagnostics).
    shortcut_events: u64,
    /// Optional load probe: while set, every utilisation re-anchor of this
    /// link appends a `(time, load/cap)` sample — the exact set-sequence of
    /// its time-weighted integral, replayable by the engine's steady-state
    /// fast-forward.
    probe_link: Option<usize>,
    probe_buf: Vec<(SimTime, f64)>,
    /// Optional event recorder: flow lifecycle instants, allocated-rate
    /// counters and solver activity. `None` (the default) is the
    /// zero-cost path — every emission site gates on one `is_some`.
    tracer: Option<SharedTracer>,
}

impl Default for FlowNet {
    fn default() -> Self {
        FlowNet {
            links: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            n_active: 0,
            next_serial: 0,
            completed: Vec::new(),
            last_advance: SimTime::ZERO,
            delivered_bytes: 0.0,
            link_load: Vec::new(),
            link_bytes: Vec::new(),
            caps: Vec::new(),
            link_users: Vec::new(),
            link_rate_load: Vec::new(),
            scratch: MaxMinScratch::new(),
            active_ids: Vec::new(),
            activated_buf: Vec::new(),
            done_buf: Vec::new(),
            freed_buf: Vec::new(),
            routes_flat: Vec::new(),
            routes_spans: Vec::new(),
            full_recomputes: 0,
            shortcut_events: 0,
            probe_link: None,
            probe_buf: Vec::new(),
            tracer: None,
        }
    }
}

impl FlowNet {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        FlowNet::default()
    }

    /// Returns the network to its freshly-constructed state while keeping
    /// every buffer's capacity (slab slots, route vectors, solver scratch),
    /// so a reused network behaves bit-identically to a new one without
    /// reallocating. The tracer and load probe are detached.
    pub fn reset(&mut self) {
        let mut i = self.head;
        while i != NIL {
            let f = &mut self.slots[i as usize];
            let next = f.next;
            f.in_use = false;
            f.gen = f.gen.wrapping_add(1);
            f.route.clear();
            f.route_dedup.clear();
            self.free.push(i);
            i = next;
        }
        self.head = NIL;
        self.tail = NIL;
        self.n_active = 0;
        self.next_serial = 0;
        self.links.clear();
        self.caps.clear();
        self.link_load.clear();
        self.link_bytes.clear();
        self.link_users.clear();
        self.link_rate_load.clear();
        self.completed.clear();
        self.last_advance = SimTime::ZERO;
        self.delivered_bytes = 0.0;
        self.active_ids.clear();
        self.activated_buf.clear();
        self.done_buf.clear();
        self.freed_buf.clear();
        self.routes_flat.clear();
        self.routes_spans.clear();
        self.full_recomputes = 0;
        self.shortcut_events = 0;
        self.probe_link = None;
        self.probe_buf.clear();
        self.tracer = None;
    }

    /// Attaches a trace recorder: subsequent flow starts, completions,
    /// rate changes and full solver runs are emitted as events. Pass the
    /// engine's shared tracer so network activity lands on the same
    /// timeline as compute spans.
    pub fn set_tracer(&mut self, tracer: SharedTracer) {
        self.tracer = Some(tracer);
    }

    /// Looks up a live flow's slot index, `None` for stale or unknown ids.
    fn lookup(&self, id: FlowId) -> Option<u32> {
        match self.slots.get(id.idx as usize) {
            Some(s) if s.in_use && s.gen == id.gen => Some(id.idx),
            _ => None,
        }
    }

    /// Takes a slot off the free list (or grows the slab) and links it at
    /// the tail of the creation-order list.
    fn alloc_slot(&mut self) -> u32 {
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                let Ok(idx) = u32::try_from(self.slots.len()) else {
                    unreachable!("too many flows: slot index exceeds u32")
                };
                self.slots.push(FlowSlot::vacant());
                idx
            }
        };
        let tail = self.tail;
        {
            let s = &mut self.slots[idx as usize];
            debug_assert!(!s.in_use);
            s.in_use = true;
            s.prev = tail;
            s.next = NIL;
        }
        if tail != NIL {
            self.slots[tail as usize].next = idx;
        } else {
            self.head = idx;
        }
        self.tail = idx;
        self.n_active += 1;
        stash_telemetry::metrics::FLOWS_ACTIVE_HIGH_WATER.record_max(self.n_active as u64);
        stash_telemetry::metrics::FLOW_SLOTS_HIGH_WATER.record_max(self.slots.len() as u64);
        idx
    }

    /// Unlinks a slot from the live list and returns it to the free list
    /// under a bumped generation. Route buffers keep their capacity.
    fn release_slot(&mut self, idx: u32) {
        let (prev, next) = {
            let s = &mut self.slots[idx as usize];
            debug_assert!(s.in_use);
            s.in_use = false;
            s.gen = s.gen.wrapping_add(1);
            s.route.clear();
            s.route_dedup.clear();
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
        self.free.push(idx);
        self.n_active -= 1;
    }

    /// Stall class of a route: network hops dominate, then storage/DRAM
    /// (input fetch), everything else is intra-node interconnect.
    fn classify(&self, route_dedup: &[usize]) -> Category {
        let mut cat = Category::Interconnect;
        for &l in route_dedup {
            match self.links[l].class {
                LinkClass::Network => return Category::Network,
                LinkClass::Storage | LinkClass::Dram => cat = Category::Fetch,
                _ => {}
            }
        }
        cat
    }

    /// Registers a link and returns its id.
    pub fn add_link(&mut self, link: Link) -> LinkId {
        let Ok(raw) = u32::try_from(self.links.len()) else {
            unreachable!("too many links: link index exceeds u32")
        };
        let id = LinkId(raw);
        self.caps.push(link.capacity_bps);
        self.links.push(link);
        self.link_load
            .push(TimeWeighted::new(0.0, self.last_advance));
        self.link_bytes.push(0.0);
        self.link_users.push(0);
        self.link_rate_load.push(0.0);
        id
    }

    /// Mean utilisation (load / capacity, time-weighted) of `id` since the
    /// simulation started.
    #[must_use]
    pub fn link_utilization(&self, id: LinkId) -> f64 {
        self.link_load[id.index()].mean_until(self.last_advance)
    }

    /// Total bytes carried over `id`.
    #[must_use]
    pub fn link_carried_bytes(&self, id: LinkId) -> f64 {
        self.link_bytes[id.index()]
    }

    /// Immutable access to a link definition.
    #[must_use]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// Number of registered links.
    #[must_use]
    pub fn link_count(&self) -> usize {
        self.links.len()
    }

    /// Changes a link's capacity at time `now` (fault injection: link
    /// degradation windows, storage brownouts). Progress up to `now` is
    /// settled at the old rates first, then every flow rate is re-solved
    /// against the new capacity, so the change takes effect exactly at
    /// `now` and utilisation integrals stay exact.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bps` is not finite and positive, or if `now`
    /// precedes the last observed time.
    pub fn set_link_capacity(&mut self, now: SimTime, id: LinkId, capacity_bps: f64) {
        assert!(
            capacity_bps.is_finite() && capacity_bps > 0.0,
            "link capacity must be finite and positive, got {capacity_bps}"
        );
        self.advance(now);
        self.links[id.index()].capacity_bps = capacity_bps;
        self.caps[id.index()] = capacity_bps;
        self.recompute_rates();
    }

    /// Number of in-flight flows.
    #[must_use]
    pub fn active_flows(&self) -> usize {
        self.n_active
    }

    /// Total bytes delivered so far.
    #[must_use]
    pub fn delivered_bytes(&self) -> f64 {
        self.delivered_bytes
    }

    /// Time of the most recent [`FlowNet::advance`].
    #[must_use]
    pub fn last_advance(&self) -> SimTime {
        self.last_advance
    }

    /// Starts a flow at time `now` (which must not precede the last
    /// advance). Returns the flow id.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative or not finite, or if `now` precedes the
    /// last observed time.
    pub fn start_flow(&mut self, now: SimTime, spec: FlowSpec) -> FlowId {
        self.start_flow_borrowed(now, &spec.route, spec.bytes, spec.extra_latency, spec.tag)
    }

    /// Allocation-free variant of [`FlowNet::start_flow`]: the route is
    /// copied into the recycled slot's pooled buffers instead of being
    /// moved in, so hot-path callers can reuse one route description for
    /// many flows.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is negative or not finite, or if `now` precedes the
    /// last observed time.
    pub fn start_flow_borrowed(
        &mut self,
        now: SimTime,
        route: &[LinkId],
        bytes: f64,
        extra_latency: SimDuration,
        tag: u64,
    ) -> FlowId {
        assert!(
            bytes.is_finite() && bytes >= 0.0,
            "flow bytes must be non-negative"
        );
        self.advance(now);
        let latency: SimDuration = route
            .iter()
            .map(|l| self.links[l.index()].latency)
            .sum::<SimDuration>()
            + extra_latency;
        let counted = latency.is_zero() && bytes > 0.0;
        let idx = self.alloc_slot();
        let serial = self.next_serial;
        self.next_serial += 1;
        {
            let s = &mut self.slots[idx as usize];
            s.serial = serial;
            s.route.clear();
            s.route.extend(route.iter().map(|l| l.index()));
            s.route_dedup.clear();
            s.route_dedup.extend_from_slice(&s.route);
            s.route_dedup.sort_unstable();
            s.route_dedup.dedup();
            s.remaining_latency = latency;
            s.remaining_bytes = bytes;
            s.rate = 0.0;
            s.counted = counted;
            s.tag = tag;
            s.cat = Category::Interconnect;
        }
        if self.tracer.is_some() {
            let cat = self.classify(&self.slots[idx as usize].route_dedup);
            self.slots[idx as usize].cat = cat;
            if let Some(tr) = &self.tracer {
                tr.borrow_mut()
                    .instant(Track::flow(serial), cat, "flow_start", now);
            }
        }
        let id = FlowId {
            idx,
            gen: self.slots[idx as usize].gen,
        };
        if counted {
            let f = &self.slots[idx as usize];
            for &l in &f.route_dedup {
                self.link_users[l] += 1;
            }
            let f = &self.slots[idx as usize];
            let alone = f.route_dedup.iter().all(|&l| self.link_users[l] == 1);
            if alone {
                // Disjoint from every other active flow: the allocator
                // would give it min-capacity of its links and leave the
                // rest untouched, so assign that directly.
                self.settle_alone_flow(idx);
                self.shortcut_events += 1;
                stash_telemetry::metrics::SOLVER_SHORTCUT_EVENTS.inc();
                self.touch_loads();
            } else {
                self.recompute_rates();
            }
        } else {
            // Latency-phase flows are invisible to the allocator: rates
            // are unchanged, only the load integrals get their segment
            // boundary.
            self.shortcut_events += 1;
            stash_telemetry::metrics::SOLVER_SHORTCUT_EVENTS.inc();
            self.touch_loads();
        }
        self.collect_done();
        id
    }

    /// Cancels an in-flight flow; returns `true` if it was still active.
    pub fn cancel_flow(&mut self, now: SimTime, id: FlowId) -> bool {
        self.advance(now);
        let Some(idx) = self.lookup(id) else {
            return false;
        };
        let counted = self.slots[idx as usize].counted;
        if counted {
            let mut contended = false;
            let f = &self.slots[idx as usize];
            for &l in &f.route_dedup {
                self.link_users[l] -= 1;
                if self.link_users[l] > 0 {
                    contended = true;
                }
            }
            if contended {
                self.release_slot(idx);
                self.recompute_rates();
            } else {
                let f = &self.slots[idx as usize];
                for &l in &f.route_dedup {
                    self.link_rate_load[l] = 0.0;
                }
                self.release_slot(idx);
                self.shortcut_events += 1;
                stash_telemetry::metrics::SOLVER_SHORTCUT_EVENTS.inc();
                self.touch_loads();
            }
        } else {
            self.release_slot(idx);
            self.shortcut_events += 1;
            stash_telemetry::metrics::SOLVER_SHORTCUT_EVENTS.inc();
            self.touch_loads();
        }
        true
    }

    /// Advances the network state to `now`, progressing latencies and byte
    /// counts. Completions are queued for [`FlowNet::take_completed`].
    ///
    /// # Panics
    ///
    /// Panics (debug) if `now` precedes the last advance.
    pub fn advance(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_advance, "time moved backwards");
        if now <= self.last_advance {
            return;
        }
        let mut dt = now.duration_since(self.last_advance);
        // Process the interval in segments bounded by latency expiries and
        // predicted flow completions, so that (a) a flow entering its
        // transfer phase mid-interval gets correct rates for the remainder
        // and (b) bandwidth freed by a completing flow is redistributed to
        // the survivors for the rest of the interval.
        while !dt.is_zero() {
            let mut min_lat: Option<SimDuration> = None;
            let mut min_ttc: Option<SimDuration> = None;
            let mut i = self.head;
            while i != NIL {
                let f = &self.slots[i as usize];
                if !f.remaining_latency.is_zero() {
                    min_lat =
                        Some(min_lat.map_or(f.remaining_latency, |m| m.min(f.remaining_latency)));
                } else if f.remaining_bytes > 0.0 && f.rate > 0.0 && f.rate.is_finite() {
                    let ttc = SimDuration::from_secs_f64(f.remaining_bytes / f.rate)
                        .max(SimDuration::from_nanos(1));
                    min_ttc = Some(min_ttc.map_or(ttc, |m| m.min(ttc)));
                }
                i = f.next;
            }
            let mut seg = dt;
            if let Some(l) = min_lat {
                seg = seg.min(l);
            }
            if let Some(c) = min_ttc {
                seg = seg.min(c);
            }
            let mut boundary = false;
            let mut i = self.head;
            while i != NIL {
                let f = &mut self.slots[i as usize];
                let next = f.next;
                if !f.remaining_latency.is_zero() {
                    f.remaining_latency = f.remaining_latency.saturating_sub(seg);
                    if f.remaining_latency.is_zero() {
                        boundary = true;
                        if f.remaining_bytes > 0.0 {
                            // Entering the transfer phase: join the
                            // allocator's user counts; rates settle at the
                            // boundary below.
                            f.counted = true;
                            let id = FlowId { idx: i, gen: f.gen };
                            for &l in &f.route_dedup {
                                self.link_users[l] += 1;
                            }
                            self.activated_buf.push(id);
                        }
                    }
                } else if f.remaining_bytes > 0.0 {
                    let moved = f.rate * seg.as_secs_f64();
                    for &l in &f.route {
                        self.link_bytes[l] += moved;
                    }
                    f.remaining_bytes -= moved;
                    // Snap tiny residues (< 1 ns worth of transfer) to done
                    // so rounding cannot stall the loop.
                    if f.remaining_bytes <= f.rate * 1e-9 {
                        f.remaining_bytes = 0.0;
                        boundary = true;
                    }
                }
                i = next;
            }
            dt -= seg;
            // Advance the clock segment-by-segment so rate changes (and the
            // utilisation integrals they update) land at the right instant.
            self.last_advance += seg;
            if boundary {
                self.collect_done();
            }
        }
        self.last_advance = now;
        self.collect_done();
    }

    /// Drains the list of flows that completed since the last call.
    /// Each entry is `(flow id, tag)`.
    pub fn take_completed(&mut self) -> Vec<(FlowId, u64)> {
        std::mem::take(&mut self.completed)
    }

    /// Allocation-free variant of [`FlowNet::take_completed`]: clears `out`
    /// and swaps it with the internal completion buffer, so both vectors
    /// keep their capacity across calls.
    pub fn drain_completed_into(&mut self, out: &mut Vec<(FlowId, u64)>) {
        out.clear();
        std::mem::swap(&mut self.completed, out);
    }

    /// Earliest future time at which the network's state changes by itself:
    /// a latency expiry or a flow completion. `None` when nothing is in
    /// flight.
    #[must_use]
    pub fn next_event_time(&self, now: SimTime) -> Option<SimTime> {
        let mut best: Option<SimTime> = None;
        let mut i = self.head;
        while i != NIL {
            let f = &self.slots[i as usize];
            i = f.next;
            let t = if !f.remaining_latency.is_zero() {
                now + f.remaining_latency
            } else if f.remaining_bytes <= 0.0 {
                now
            } else if f.rate > 0.0 {
                now + SimDuration::from_secs_f64(f.remaining_bytes / f.rate)
                    + SimDuration::from_nanos(1)
            } else if f.rate.is_infinite() || f.route.is_empty() {
                now
            } else {
                continue; // starved flow: waits for a topology change
            };
            best = Some(best.map_or(t, |b: SimTime| b.min(t)));
        }
        best
    }

    /// Instantaneous rate of a flow in bytes/sec (0 during its latency
    /// phase, `None` if unknown/completed).
    #[must_use]
    pub fn flow_rate(&self, id: FlowId) -> Option<f64> {
        self.lookup(id).map(|idx| {
            let f = &self.slots[idx as usize];
            if f.remaining_latency.is_zero() {
                f.rate
            } else {
                0.0
            }
        })
    }

    /// Solves steady-state rates for a hypothetical set of routes without
    /// touching live state — used by bandwidth probes (paper Fig. 7).
    #[must_use]
    pub fn probe_rates(&self, routes: &[Vec<LinkId>]) -> Vec<f64> {
        let caps: Vec<f64> = self.links.iter().map(|l| l.capacity_bps).collect();
        let idx_routes: Vec<Vec<usize>> = routes
            .iter()
            .map(|r| r.iter().map(|l| l.index()).collect())
            .collect();
        max_min_rates(&caps, &idx_routes)
    }

    /// Number of full water-filling solves and of events settled by the
    /// incremental shortcuts instead, since construction.
    #[must_use]
    pub fn recompute_stats(&self) -> (u64, u64) {
        (self.full_recomputes, self.shortcut_events)
    }

    /// Starts recording `(time, load/cap)` samples for `link`: every
    /// utilisation re-anchor appends the exact value fed to the link's
    /// time-weighted integral. The engine's steady-state fast-forward uses
    /// the sample stream both to prove a load cycle repeats exactly and to
    /// replay it shifted in time.
    pub fn set_load_probe(&mut self, link: LinkId) {
        self.probe_link = Some(link.index());
        self.probe_buf.clear();
    }

    /// Stops load-probe recording.
    pub fn clear_load_probe(&mut self) {
        self.probe_link = None;
    }

    /// Clears `out` and swaps it with the probe sample buffer (both keep
    /// their capacity across calls).
    pub fn take_probe_samples(&mut self, out: &mut Vec<(SimTime, f64)>) {
        out.clear();
        std::mem::swap(&mut self.probe_buf, out);
    }

    /// Replays a recorded load cycle onto `link`'s utilisation integral:
    /// for each repetition `k` in `1..=periods`, every sample `(t, v)` is
    /// re-applied at `t + k * period`. Because the integral is
    /// piecewise-constant and integrated over time *deltas*, a time-shifted
    /// replay of an identical cycle contributes bit-identical mass — this
    /// is the fast-forward's substitute for simulating the cycles.
    pub fn replay_probe_load(
        &mut self,
        link: LinkId,
        samples: &[(SimTime, f64)],
        period: SimDuration,
        periods: u64,
    ) {
        let w = &mut self.link_load[link.index()];
        for k in 1..=periods {
            let shift = SimDuration::from_nanos(period.as_nanos() * k);
            for &(t, v) in samples {
                w.set(t + shift, v);
            }
        }
    }

    /// Assigns the exact allocator outcome for a counted flow that shares
    /// no link with any other counted flow: the minimum capacity along its
    /// route (infinite for an empty route), with its links' load sums
    /// updated in place. Every other flow's rate and load is untouched —
    /// which is also exactly what a full solve would conclude, since the
    /// flow forms its own component of the flow/link sharing graph.
    fn settle_alone_flow(&mut self, idx: u32) {
        let f = &mut self.slots[idx as usize];
        let rate = f
            .route_dedup
            .iter()
            .map(|&l| self.caps[l])
            .fold(f64::INFINITY, f64::min);
        f.rate = rate;
        let cat = f.cat;
        let serial = f.serial;
        if rate.is_finite() {
            for &l in &f.route {
                self.link_rate_load[l] += rate;
            }
        }
        if let Some(tr) = &self.tracer {
            tr.borrow_mut().counter(
                Track::flow(serial),
                cat,
                "rate_bps",
                self.last_advance,
                rate,
            );
        }
    }

    /// Re-anchors every link's utilisation integral at the current time
    /// with its (maintained) load sum. Full solves and shortcuts both end
    /// with this, so the integrals see identical segment boundaries either
    /// way.
    fn touch_loads(&mut self) {
        for (l, w) in self.link_load.iter_mut().enumerate() {
            w.set(self.last_advance, self.link_rate_load[l] / self.caps[l]);
        }
        if let Some(p) = self.probe_link {
            self.probe_buf
                .push((self.last_advance, self.link_rate_load[p] / self.caps[p]));
        }
    }

    fn recompute_rates(&mut self) {
        self.full_recomputes += 1;
        stash_telemetry::metrics::SOLVER_FULL_RECOMPUTES.inc();
        self.active_ids.clear();
        let mut i = self.head;
        while i != NIL {
            let f = &self.slots[i as usize];
            if f.counted {
                self.active_ids.push(i);
            }
            i = f.next;
        }
        // Snapshot pre-solve rates (traced runs only) so only genuine
        // rate changes become counter samples.
        let old_rates: Option<Vec<f64>> = self.tracer.as_ref().map(|_| {
            self.active_ids
                .iter()
                .map(|&i| self.slots[i as usize].rate)
                .collect()
        });
        // Flat-pack the dedup routes into the pooled buffers — no
        // per-solve allocation.
        self.routes_flat.clear();
        self.routes_spans.clear();
        for &i in &self.active_ids {
            let Ok(lo) = u32::try_from(self.routes_flat.len()) else {
                unreachable!("route buffer overflow: flat index exceeds u32")
            };
            self.routes_flat
                .extend_from_slice(&self.slots[i as usize].route_dedup);
            let Ok(hi) = u32::try_from(self.routes_flat.len()) else {
                unreachable!("route buffer overflow: flat index exceeds u32")
            };
            self.routes_spans.push((lo, hi));
        }
        // Host wall-clock around the solve only: Instant is a syscall,
        // so even the timestamp is skipped while telemetry is off.
        let solve_t0 = stash_telemetry::enabled().then(std::time::Instant::now);
        let rates = self
            .scratch
            .solve_flat(&self.caps, &self.routes_flat, &self.routes_spans);
        if let Some(t0) = solve_t0 {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            stash_telemetry::metrics::SOLVER_RECOMPUTE_LATENCY_NS.record(ns);
        }
        let mut i = self.head;
        while i != NIL {
            let f = &mut self.slots[i as usize];
            f.rate = 0.0;
            i = f.next;
        }
        for (k, &idx) in self.active_ids.iter().enumerate() {
            self.slots[idx as usize].rate = rates[k];
        }
        // Refresh per-link load sums and integrals.
        self.link_rate_load.iter_mut().for_each(|v| *v = 0.0);
        let mut i = self.head;
        while i != NIL {
            let f = &self.slots[i as usize];
            if f.remaining_latency.is_zero() && f.rate.is_finite() {
                for &l in &f.route {
                    self.link_rate_load[l] += f.rate;
                }
            }
            i = f.next;
        }
        self.touch_loads();
        if let Some(tr) = &self.tracer {
            let mut t = tr.borrow_mut();
            t.instant(
                Track::solver(),
                Category::Solver,
                "full_solve",
                self.last_advance,
            );
            if let Some(old) = old_rates {
                for (k, &idx) in self.active_ids.iter().enumerate() {
                    let f = &self.slots[idx as usize];
                    if f.rate != old[k] {
                        t.counter(
                            Track::flow(f.serial),
                            f.cat,
                            "rate_bps",
                            self.last_advance,
                            f.rate,
                        );
                    }
                }
            }
        }
    }

    /// Moves finished flows to the completed queue and settles any flows
    /// that just entered their transfer phase; returns whether any flow
    /// finished. Rates are recomputed only when a change can actually
    /// shift the allocation — a removal or activation whose links carry no
    /// other flow is settled directly.
    fn collect_done(&mut self) -> bool {
        self.done_buf.clear();
        let mut i = self.head;
        while i != NIL {
            let f = &self.slots[i as usize];
            if f.remaining_latency.is_zero()
                && (f.remaining_bytes <= 0.0 || f.route.is_empty() || f.rate.is_infinite())
            {
                self.done_buf.push(i);
            }
            i = f.next;
        }
        let any = !self.done_buf.is_empty();
        if !any && self.activated_buf.is_empty() {
            return false;
        }

        self.freed_buf.clear();
        let done = std::mem::take(&mut self.done_buf);
        for &idx in &done {
            let (gen, tag, counted, cat, serial, remaining) = {
                let f = &self.slots[idx as usize];
                (f.gen, f.tag, f.counted, f.cat, f.serial, f.remaining_bytes)
            };
            self.delivered_bytes += remaining.max(0.0);
            self.completed.push((FlowId { idx, gen }, tag));
            if counted {
                let f = &self.slots[idx as usize];
                for &l in &f.route_dedup {
                    self.link_users[l] -= 1;
                    self.freed_buf.push(l);
                }
            }
            if let Some(tr) = &self.tracer {
                tr.borrow_mut()
                    .instant(Track::flow(serial), cat, "flow_done", self.last_advance);
            }
            self.release_slot(idx);
        }
        self.done_buf = done;

        // A removal perturbs survivors only via links it shared with them;
        // an activation perturbs others only via links that already have a
        // user. If neither applies, the old allocation is still the
        // max-min solution for the survivors.
        let mut needs_full = self.freed_buf.iter().any(|&l| self.link_users[l] > 0);
        if !needs_full {
            for id in &self.activated_buf {
                // Flows both activated and finished in this settling (e.g.
                // empty routes) were removed above — skip them.
                if let Some(s) = self.slots.get(id.idx as usize) {
                    if s.in_use
                        && s.gen == id.gen
                        && s.route_dedup.iter().any(|&l| self.link_users[l] != 1)
                    {
                        needs_full = true;
                        break;
                    }
                }
            }
        }

        if needs_full {
            self.activated_buf.clear();
            self.recompute_rates();
        } else {
            for i in 0..self.freed_buf.len() {
                self.link_rate_load[self.freed_buf[i]] = 0.0;
            }
            let activated = std::mem::take(&mut self.activated_buf);
            for id in &activated {
                if let Some(idx) = self.lookup(*id) {
                    self.settle_alone_flow(idx);
                }
            }
            self.activated_buf = activated;
            self.activated_buf.clear();
            self.shortcut_events += 1;
            stash_telemetry::metrics::SOLVER_SHORTCUT_EVENTS.inc();
            self.touch_loads();
        }
        any
    }

    /// Test-only view of the live flows in creation order: `(id, dedup
    /// route, current rate)`.
    #[cfg(test)]
    fn live_flows(&self) -> Vec<(FlowId, Vec<usize>, f64, bool)> {
        let mut out = Vec::new();
        let mut i = self.head;
        while i != NIL {
            let f = &self.slots[i as usize];
            out.push((
                FlowId { idx: i, gen: f.gen },
                f.route.clone(),
                f.rate,
                f.counted,
            ));
            i = f.next;
        }
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::link::LinkClass;

    fn mk_net(caps: &[f64]) -> (FlowNet, Vec<LinkId>) {
        let mut net = FlowNet::new();
        let ids = caps
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                net.add_link(Link::new(
                    format!("l{i}"),
                    c,
                    SimDuration::ZERO,
                    LinkClass::Other,
                ))
            })
            .collect();
        (net, ids)
    }

    #[test]
    fn single_flow_completes_on_schedule() {
        let (mut net, l) = mk_net(&[100.0]);
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 200.0, 7));
        let t = net.next_event_time(SimTime::ZERO).unwrap();
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-6);
        net.advance(t);
        let done = net.take_completed();
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].1, 7);
        assert_eq!(net.active_flows(), 0);
    }

    #[test]
    fn capacity_change_takes_effect_exactly_at_now() {
        let (mut net, l) = mk_net(&[100.0]);
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 200.0, 7));
        // Half the bytes move in the first second at 100 B/s; the link
        // then browns out to 50 B/s, so the rest takes two more seconds.
        let mid = SimTime::ZERO + SimDuration::from_secs(1);
        net.set_link_capacity(mid, l[0], 50.0);
        let t = net.next_event_time(mid).unwrap();
        assert!(
            (t.as_secs_f64() - 3.0).abs() < 1e-6,
            "t={}",
            t.as_secs_f64()
        );
        net.advance(t);
        assert_eq!(net.take_completed().len(), 1);
        // Restoring the capacity with no flows in flight is harmless.
        net.set_link_capacity(t, l[0], 100.0);
        assert_eq!(net.link(l[0]).capacity_bps, 100.0);
    }

    #[test]
    fn two_flows_share_then_speed_up() {
        let (mut net, l) = mk_net(&[100.0]);
        // Flow A: 100 bytes, flow B: 50 bytes, same link.
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 100.0, 1));
        let b = net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 50.0, 2));
        // Shared at 50 B/s each: B finishes at t=1; A then runs at 100 B/s
        // with 50 bytes left → finishes at t=1.5.
        let t1 = net.next_event_time(SimTime::ZERO).unwrap();
        assert!((t1.as_secs_f64() - 1.0).abs() < 1e-6);
        net.advance(t1);
        assert_eq!(net.take_completed(), vec![(b, 2)]);
        let t2 = net.next_event_time(t1).unwrap();
        assert!(
            (t2.as_secs_f64() - 1.5).abs() < 1e-6,
            "t2={}",
            t2.as_secs_f64()
        );
        net.advance(t2);
        assert_eq!(net.take_completed().len(), 1);
    }

    #[test]
    fn latency_delays_transfer_start() {
        let mut net = FlowNet::new();
        let l = net.add_link(Link::new(
            "lat",
            100.0,
            SimDuration::from_secs(1),
            LinkClass::Network,
        ));
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l], 100.0, 0));
        // 1s latency + 1s transfer.
        let t1 = net.next_event_time(SimTime::ZERO).unwrap();
        assert_eq!(t1.as_secs_f64(), 1.0);
        net.advance(t1);
        assert!(net.take_completed().is_empty());
        let t2 = net.next_event_time(t1).unwrap();
        assert!((t2.as_secs_f64() - 2.0).abs() < 1e-6);
        net.advance(t2);
        assert_eq!(net.take_completed().len(), 1);
    }

    #[test]
    fn advance_across_latency_boundary_is_exact() {
        // One flow with latency, one without, same link. Advancing in a
        // single big step must give the same result as stepping precisely.
        let mut net = FlowNet::new();
        let l = net.add_link(Link::new("b", 100.0, SimDuration::ZERO, LinkClass::Other));
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l], 100.0, 1)); // no latency
        let spec = FlowSpec {
            route: vec![l],
            bytes: 100.0,
            extra_latency: SimDuration::from_millis(500),
            tag: 2,
        };
        net.start_flow(SimTime::ZERO, spec);
        // Phase 1 (0–0.5s): flow1 alone at 100 B/s → 50 bytes left.
        // Phase 2: both share 50 B/s. flow1 needs 1s more → done at 1.5s.
        net.advance(SimTime::from_nanos(2_000_000_000));
        let done = net.take_completed();
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn zero_byte_flow_completes_after_latency() {
        let mut net = FlowNet::new();
        let l = net.add_link(Link::new(
            "n",
            10.0,
            SimDuration::from_millis(3),
            LinkClass::Network,
        ));
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l], 0.0, 9));
        let t = net.next_event_time(SimTime::ZERO).unwrap();
        assert_eq!(t.as_secs_f64(), 0.003);
        net.advance(t);
        assert_eq!(net.take_completed().len(), 1);
    }

    #[test]
    fn empty_route_zero_latency_completes_immediately() {
        let mut net = FlowNet::new();
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![], 1e9, 3));
        assert_eq!(net.take_completed().len(), 1);
    }

    #[test]
    fn cancel_restores_bandwidth() {
        let (mut net, l) = mk_net(&[100.0]);
        let a = net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 1000.0, 1));
        let b = net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 100.0, 2));
        assert_eq!(net.flow_rate(b), Some(50.0));
        assert!(net.cancel_flow(SimTime::ZERO, a));
        assert_eq!(net.flow_rate(b), Some(100.0));
        assert!(!net.cancel_flow(SimTime::ZERO, a));
    }

    #[test]
    fn stale_id_is_rejected_after_slot_reuse() {
        let (mut net, l) = mk_net(&[100.0]);
        let a = net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 100.0, 1));
        assert!(net.cancel_flow(SimTime::ZERO, a));
        // The recycled slot now backs a different flow under a new
        // generation — the stale id must not alias it.
        let b = net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 100.0, 2));
        assert_ne!(a, b);
        assert_eq!(net.flow_rate(a), None);
        assert!(!net.cancel_flow(SimTime::ZERO, a));
        assert_eq!(net.flow_rate(b), Some(100.0));
    }

    #[test]
    fn probe_rates_match_fair_share() {
        let (mut net, l) = mk_net(&[100.0, 40.0]);
        let _ = &mut net;
        let rates = net.probe_rates(&[vec![l[0]], vec![l[0], l[1]]]);
        assert!((rates[1] - 40.0).abs() < 1e-9);
        assert!((rates[0] - 60.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_and_bytes_are_tracked() {
        let (mut net, l) = mk_net(&[100.0]);
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 100.0, 0));
        // Fully busy for 1 s, idle for 1 s.
        net.advance(SimTime::from_nanos(2_000_000_000));
        let _ = net.take_completed();
        assert!((net.link_carried_bytes(l[0]) - 100.0).abs() < 1e-6);
        let util = net.link_utilization(l[0]);
        assert!((util - 0.5).abs() < 1e-6, "util={util}");
    }

    #[test]
    fn idle_link_has_zero_utilization() {
        let (mut net, l) = mk_net(&[100.0, 50.0]);
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 10.0, 0));
        net.advance(SimTime::from_nanos(1_000_000_000));
        assert_eq!(net.link_utilization(l[1]), 0.0);
        assert_eq!(net.link_carried_bytes(l[1]), 0.0);
    }

    #[test]
    fn reset_behaves_like_fresh_network() {
        let run = |net: &mut FlowNet| {
            let l = net.add_link(Link::new("b", 100.0, SimDuration::ZERO, LinkClass::Other));
            net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l], 100.0, 1));
            net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l], 50.0, 2));
            let mut log = Vec::new();
            let mut now = SimTime::ZERO;
            while let Some(t) = net.next_event_time(now) {
                net.advance(t);
                now = t;
                for (_, tag) in net.take_completed() {
                    log.push((t.as_nanos(), tag));
                }
            }
            (
                log,
                net.link_utilization(l).to_bits(),
                net.delivered_bytes(),
            )
        };
        let mut fresh = FlowNet::new();
        let want = run(&mut fresh);
        let mut reused = FlowNet::new();
        let _ = run(&mut reused);
        reused.reset();
        assert_eq!(reused.active_flows(), 0);
        assert_eq!(reused.link_count(), 0);
        assert_eq!(run(&mut reused), want, "reset run must match fresh run");
    }

    #[test]
    fn drain_completed_reuses_buffers() {
        let (mut net, l) = mk_net(&[100.0]);
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 100.0, 5));
        net.advance(SimTime::from_nanos(2_000_000_000));
        let mut buf = Vec::with_capacity(4);
        net.drain_completed_into(&mut buf);
        assert_eq!(buf.len(), 1);
        assert_eq!(buf[0].1, 5);
        net.drain_completed_into(&mut buf);
        assert!(buf.is_empty());
    }

    /// Full-solve oracle: what the seed's recompute (max-min over every
    /// counted flow's route) would assign right now.
    fn oracle_rates(net: &FlowNet) -> Vec<(FlowId, f64)> {
        let caps: Vec<f64> = net.links.iter().map(|l| l.capacity_bps).collect();
        let counted: Vec<(FlowId, Vec<usize>)> = net
            .live_flows()
            .into_iter()
            .filter(|(_, _, _, counted)| *counted)
            .map(|(id, route, _, _)| (id, route))
            .collect();
        let routes: Vec<Vec<usize>> = counted.iter().map(|(_, r)| r.clone()).collect();
        let rates = max_min_rates(&caps, &routes);
        counted.into_iter().map(|(id, _)| id).zip(rates).collect()
    }

    #[test]
    fn incremental_rates_match_full_solve_throughout() {
        // Mixed scenario: disjoint flows, shared bottlenecks, latency
        // phases and a cancellation. After every event the incremental
        // allocation must equal a from-scratch solve bit-for-bit.
        let (mut net, l) = mk_net(&[100.0, 40.0, 250.0, 10.0]);
        let mut now = SimTime::ZERO;
        net.start_flow(now, FlowSpec::new(vec![l[2]], 500.0, 0)); // alone
        net.start_flow(now, FlowSpec::new(vec![l[0]], 300.0, 1));
        net.start_flow(now, FlowSpec::new(vec![l[0], l[1]], 120.0, 2)); // shares l0
        let victim = net.start_flow(
            now,
            FlowSpec {
                route: vec![l[1], l[3]],
                bytes: 90.0,
                extra_latency: SimDuration::from_millis(700),
                tag: 3,
            },
        );
        let mut steps = 0;
        loop {
            let live: std::collections::HashMap<FlowId, f64> = net
                .live_flows()
                .into_iter()
                .map(|(id, _, rate, _)| (id, rate))
                .collect();
            for (id, want) in oracle_rates(&net) {
                let got = live[&id];
                assert!(
                    got == want || (got.is_infinite() && want.is_infinite()),
                    "flow {id:?}: incremental {got} != full solve {want}"
                );
            }
            if steps == 2 {
                net.cancel_flow(now, victim);
            }
            let Some(t) = net.next_event_time(now) else {
                break;
            };
            net.advance(t);
            now = t;
            net.take_completed();
            steps += 1;
            assert!(steps < 32, "scenario failed to converge");
        }
        assert_eq!(net.active_flows(), 0);
        let (full, shortcut) = net.recompute_stats();
        assert!(full > 0, "shared links must trigger full solves");
        assert!(shortcut > 0, "disjoint events must take the shortcut");
    }

    #[test]
    fn disjoint_flows_never_trigger_full_solves() {
        let (mut net, l) = mk_net(&[100.0, 50.0, 25.0]);
        let a = net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 100.0, 0));
        let b = net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[1]], 100.0, 1));
        let c = net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[2]], 100.0, 2));
        assert_eq!(net.flow_rate(a), Some(100.0));
        assert_eq!(net.flow_rate(b), Some(50.0));
        assert_eq!(net.flow_rate(c), Some(25.0));
        let mut now = SimTime::ZERO;
        while let Some(t) = net.next_event_time(now) {
            net.advance(t);
            now = t;
            net.take_completed();
        }
        assert_eq!(net.active_flows(), 0);
        let (full, shortcut) = net.recompute_stats();
        assert_eq!(full, 0, "uncontended traffic must skip the solver");
        assert!(shortcut >= 6, "starts and completions all shortcut");
        // Utilisation bookkeeping must survive the shortcut path: link 0
        // was saturated for 1 s of the 4 s total (100 B at 100 B/s; the
        // slowest link finishes at 4 s).
        assert!((net.link_utilization(l[0]) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn latency_activation_on_idle_links_shortcuts() {
        let (mut net, l) = mk_net(&[100.0]);
        let spec = FlowSpec {
            route: vec![l[0]],
            bytes: 100.0,
            extra_latency: SimDuration::from_millis(250),
            tag: 0,
        };
        net.start_flow(SimTime::ZERO, spec);
        let t1 = net.next_event_time(SimTime::ZERO).unwrap();
        net.advance(t1); // latency expiry: flow activates alone
        let t2 = net.next_event_time(t1).unwrap();
        assert!((t2.as_secs_f64() - 1.25).abs() < 1e-6);
        net.advance(t2);
        assert_eq!(net.take_completed().len(), 1);
        let (full, _) = net.recompute_stats();
        assert_eq!(full, 0, "an activation onto idle links needs no solve");
    }

    #[test]
    fn traced_flows_emit_lifecycle_events() {
        use stash_trace::{shared, JsonSink, Tracer, TrackKind};
        use std::cell::RefCell;
        use std::rc::Rc;

        let sink = Rc::new(RefCell::new(JsonSink::new()));
        let (mut net, l) = mk_net(&[100.0]);
        net.set_tracer(shared(Tracer::new(sink.clone())));
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 100.0, 1));
        net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 50.0, 2));
        let mut now = SimTime::ZERO;
        while let Some(t) = net.next_event_time(now) {
            net.advance(t);
            now = t;
            net.take_completed();
        }
        assert_eq!(net.active_flows(), 0);
        let events = sink.borrow().events().to_vec();
        let count = |name: &str| events.iter().filter(|(_, e)| e.name() == name).count();
        assert_eq!(count("flow_start"), 2);
        assert_eq!(count("flow_done"), 2);
        assert!(
            count("rate_bps") >= 3,
            "shared-link rates change during the run"
        );
        assert!(count("full_solve") >= 1, "contended start requires a solve");
        assert!(events
            .iter()
            .any(|(_, e)| e.track().kind == TrackKind::Flow));
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (mut net, l) = mk_net(&[64.0, 32.0]);
            net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0]], 111.0, 1));
            net.start_flow(SimTime::ZERO, FlowSpec::new(vec![l[0], l[1]], 57.0, 2));
            let mut log = Vec::new();
            let mut now = SimTime::ZERO;
            while let Some(t) = net.next_event_time(now) {
                net.advance(t);
                now = t;
                for (id, tag) in net.take_completed() {
                    log.push((t.as_nanos(), id, tag));
                }
            }
            log
        };
        assert_eq!(run(), run());
        assert_eq!(run().len(), 2);
    }

    #[test]
    fn load_probe_records_and_replays_cycles() {
        // Two identical back-to-back cycles on one link; the probe's
        // samples for cycle 2 must be cycle 1 shifted by the period, and a
        // replayed third cycle must extend the utilisation integral exactly
        // as simulating it would.
        let period = SimDuration::from_secs(2);
        let cycle = |net: &mut FlowNet, l: LinkId, at: SimTime| {
            net.start_flow(at, FlowSpec::new(vec![l], 100.0, 0));
            net.advance(at + period);
            net.take_completed();
        };
        let (mut net, l) = mk_net(&[100.0]);
        net.set_load_probe(l[0]);
        let mut c1 = Vec::new();
        let mut c2 = Vec::new();
        cycle(&mut net, l[0], SimTime::ZERO);
        net.take_probe_samples(&mut c1);
        cycle(&mut net, l[0], SimTime::ZERO + period);
        net.take_probe_samples(&mut c2);
        assert_eq!(c1.len(), c2.len());
        for (&(t1, v1), &(t2, v2)) in c1.iter().zip(&c2) {
            assert_eq!(t1 + period, t2);
            assert_eq!(v1.to_bits(), v2.to_bits());
        }
        // Simulated third cycle…
        let (mut sim, sl) = mk_net(&[100.0]);
        for k in 0..3u32 {
            cycle(
                &mut sim,
                sl[0],
                SimTime::ZERO + SimDuration::from_nanos(period.as_nanos() * u64::from(k)),
            );
        }
        // …vs replaying it from the recorded second cycle.
        net.clear_load_probe();
        let w = net.last_advance();
        net.replay_probe_load(l[0], &c2, period, 1);
        net.advance(w + period);
        assert_eq!(
            sim.link_utilization(sl[0]).to_bits(),
            net.link_utilization(l[0]).to_bits(),
            "replayed cycle must integrate bit-identically"
        );
    }
}
