//! Max-min fair rate allocation (progressive filling / water-filling).
//!
//! Given a set of flows, each using a set of links, and per-link capacities,
//! the allocator computes the unique max-min fair rate vector: rates are
//! raised uniformly until a link saturates, flows through that link are
//! frozen at their share, and the process repeats. This is the standard
//! flow-level model of bandwidth sharing (as used by e.g. SimGrid) and is
//! how we model PCIe-bus contention, SSD reader contention and network
//! sharing without packet-level simulation.

/// One flow's demand: the links it traverses (indices into the capacity
/// slice). An empty route means the flow is not bandwidth-constrained and
/// receives [`f64::INFINITY`].
pub type Route<'a> = &'a [usize];

/// Computes max-min fair rates.
///
/// * `capacities[l]` — capacity of link `l` in bytes/sec;
/// * `routes[f]` — links used by flow `f` (duplicates are ignored).
///
/// Returns one rate per flow, in bytes/sec.
///
/// # Panics
///
/// Panics if a route references a link index out of bounds.
#[must_use]
pub fn max_min_rates(capacities: &[f64], routes: &[Vec<usize>]) -> Vec<f64> {
    let n_flows = routes.len();
    let n_links = capacities.len();
    let mut rate = vec![0.0_f64; n_flows];
    if n_flows == 0 {
        return rate;
    }
    for r in routes {
        for &l in r {
            assert!(l < n_links, "route references unknown link {l}");
        }
    }

    let mut remaining_cap = capacities.to_vec();
    let mut frozen = vec![false; n_flows];
    // Flows with empty routes are unconstrained.
    for (f, r) in routes.iter().enumerate() {
        if r.is_empty() {
            rate[f] = f64::INFINITY;
            frozen[f] = true;
        }
    }

    // users[l] = number of unfrozen flows crossing link l.
    let mut users = vec![0_usize; n_links];
    let count_users = |frozen: &[bool], users: &mut [usize]| {
        users.iter_mut().for_each(|u| *u = 0);
        for (f, r) in routes.iter().enumerate() {
            if frozen[f] {
                continue;
            }
            let mut seen: Vec<usize> = r.clone();
            seen.sort_unstable();
            seen.dedup();
            for l in seen {
                users[l] += 1;
            }
        }
    };

    loop {
        count_users(&frozen, &mut users);
        // Find the tightest link: min over links of remaining/users.
        let mut best: Option<(f64, usize)> = None;
        for l in 0..n_links {
            if users[l] == 0 {
                continue;
            }
            let fair = remaining_cap[l] / users[l] as f64;
            match best {
                Some((b, _)) if fair >= b => {}
                _ => best = Some((fair, l)),
            }
        }
        let Some((fair_share, bottleneck)) = best else {
            break; // no unfrozen flows remain
        };
        // Freeze every unfrozen flow crossing the bottleneck at fair_share.
        let mut froze_any = false;
        for (f, r) in routes.iter().enumerate() {
            if frozen[f] || !r.contains(&bottleneck) {
                continue;
            }
            rate[f] = fair_share;
            frozen[f] = true;
            froze_any = true;
            let mut seen: Vec<usize> = r.clone();
            seen.sort_unstable();
            seen.dedup();
            for l in seen {
                remaining_cap[l] = (remaining_cap[l] - fair_share).max(0.0);
            }
        }
        debug_assert!(froze_any, "water-filling made no progress");
        if !froze_any {
            break;
        }
    }
    rate
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn single_flow_gets_full_link() {
        let rates = max_min_rates(&[100.0], &[vec![0]]);
        assert!(approx(rates[0], 100.0));
    }

    #[test]
    fn equal_flows_split_evenly() {
        let rates = max_min_rates(&[90.0], &[vec![0], vec![0], vec![0]]);
        for r in rates {
            assert!(approx(r, 30.0));
        }
    }

    #[test]
    fn bottleneck_frees_capacity_elsewhere() {
        // Flow A uses links 0+1, flow B uses link 0 only.
        // Link 0: 100, link 1: 20. A is capped at 20 by link 1, so B gets 80.
        let rates = max_min_rates(&[100.0, 20.0], &[vec![0, 1], vec![0]]);
        assert!(approx(rates[0], 20.0), "A={}", rates[0]);
        assert!(approx(rates[1], 80.0), "B={}", rates[1]);
    }

    #[test]
    fn classic_parking_lot() {
        // 3 links of cap 10; long flow crosses all, one short flow per link.
        let routes = vec![vec![0, 1, 2], vec![0], vec![1], vec![2]];
        let rates = max_min_rates(&[10.0, 10.0, 10.0], &routes);
        assert!(approx(rates[0], 5.0));
        for r in &rates[1..] {
            assert!(approx(*r, 5.0));
        }
    }

    #[test]
    fn empty_route_is_unconstrained() {
        let rates = max_min_rates(&[10.0], &[vec![], vec![0]]);
        assert!(rates[0].is_infinite());
        assert!(approx(rates[1], 10.0));
    }

    #[test]
    fn duplicate_links_in_route_counted_once() {
        let rates = max_min_rates(&[10.0], &[vec![0, 0], vec![0]]);
        assert!(approx(rates[0], 5.0));
        assert!(approx(rates[1], 5.0));
    }

    #[test]
    fn no_flows_is_empty() {
        assert!(max_min_rates(&[10.0], &[]).is_empty());
    }

    #[test]
    fn capacities_never_exceeded() {
        // Random-ish fixed topology, verify feasibility.
        let caps = [50.0, 30.0, 70.0, 10.0];
        let routes = vec![
            vec![0, 1],
            vec![1, 2],
            vec![0, 2, 3],
            vec![3],
            vec![2],
            vec![0],
        ];
        let rates = max_min_rates(&caps, &routes);
        for (l, &cap) in caps.iter().enumerate() {
            let load: f64 = routes
                .iter()
                .zip(&rates)
                .filter(|(r, _)| r.contains(&l))
                .map(|(_, rate)| *rate)
                .sum();
            assert!(load <= cap * (1.0 + 1e-9), "link {l} overloaded: {load} > {cap}");
        }
        // Every flow is bottlenecked somewhere: its rate equals the fair
        // share of at least one saturated link it crosses (max-min property
        // checked loosely: rate > 0).
        for r in &rates {
            assert!(*r > 0.0);
        }
    }
}
