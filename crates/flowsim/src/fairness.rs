//! Max-min fair rate allocation (progressive filling / water-filling).
//!
//! Given a set of flows, each using a set of links, and per-link capacities,
//! the allocator computes the unique max-min fair rate vector: rates are
//! raised uniformly until a link saturates, flows through that link are
//! frozen at their share, and the process repeats. This is the standard
//! flow-level model of bandwidth sharing (as used by e.g. SimGrid) and is
//! how we model PCIe-bus contention, SSD reader contention and network
//! sharing without packet-level simulation.

/// One flow's demand: the links it traverses (indices into the capacity
/// slice). An empty route means the flow is not bandwidth-constrained and
/// receives [`f64::INFINITY`].
pub type Route<'a> = &'a [usize];

/// Reusable working memory for the water-filling solver.
///
/// The event-driven simulator re-solves rates at every topology change;
/// keeping the per-flow and per-link working vectors in a scratch object
/// (owned by the caller, typically a `FlowNet`) makes each solve
/// allocation-free. The solver itself is the same progressive-filling
/// arithmetic as [`max_min_rates`], so results are bit-identical.
#[derive(Debug, Default, Clone)]
pub struct MaxMinScratch {
    rate: Vec<f64>,
    remaining_cap: Vec<f64>,
    frozen: Vec<bool>,
    users: Vec<usize>,
}

impl MaxMinScratch {
    /// Fresh scratch space (buffers grow on first use).
    #[must_use]
    pub fn new() -> MaxMinScratch {
        MaxMinScratch::default()
    }

    /// Computes max-min fair rates over routes that are already
    /// duplicate-free (each link appears at most once per route).
    ///
    /// Returns one rate per flow, in bytes/sec, borrowed from the scratch
    /// buffer — copy it out before the next solve.
    ///
    /// # Panics
    ///
    /// Panics if a route references a link index out of bounds.
    pub fn solve_dedup(&mut self, capacities: &[f64], routes: &[&[usize]]) -> &[f64] {
        self.solve_with(capacities, routes.len(), |f| routes[f])
    }

    /// Same solve as [`Self::solve_dedup`] over flat-packed routes: flow
    /// `f`'s (duplicate-free) route is `flat[spans[f].0 as usize..spans[f].1
    /// as usize]`. This lets callers keep all routes in one pooled buffer —
    /// no per-solve `Vec<&[usize]>` — while running the exact same
    /// progressive-filling arithmetic, so results are bit-identical to
    /// [`Self::solve_dedup`].
    ///
    /// # Panics
    ///
    /// Panics if a span or link index is out of bounds.
    pub fn solve_flat(
        &mut self,
        capacities: &[f64],
        flat: &[usize],
        spans: &[(u32, u32)],
    ) -> &[f64] {
        self.solve_with(capacities, spans.len(), |f| {
            let (lo, hi) = spans[f];
            &flat[lo as usize..hi as usize]
        })
    }

    fn solve_with<'r>(
        &mut self,
        capacities: &[f64],
        n_flows: usize,
        route_of: impl Fn(usize) -> &'r [usize],
    ) -> &[f64] {
        let n_links = capacities.len();
        self.rate.clear();
        self.rate.resize(n_flows, 0.0);
        if n_flows == 0 {
            return &self.rate;
        }
        for f in 0..n_flows {
            for &l in route_of(f) {
                assert!(l < n_links, "route references unknown link {l}");
            }
        }

        self.remaining_cap.clear();
        self.remaining_cap.extend_from_slice(capacities);
        self.frozen.clear();
        self.frozen.resize(n_flows, false);
        // Flows with empty routes are unconstrained.
        for f in 0..n_flows {
            if route_of(f).is_empty() {
                self.rate[f] = f64::INFINITY;
                self.frozen[f] = true;
            }
        }
        self.users.clear();
        self.users.resize(n_links, 0);

        let mut rounds = 0u64;
        loop {
            rounds += 1;
            // users[l] = number of unfrozen flows crossing link l.
            self.users.iter_mut().for_each(|u| *u = 0);
            for f in 0..n_flows {
                if self.frozen[f] {
                    continue;
                }
                for &l in route_of(f) {
                    self.users[l] += 1;
                }
            }
            // Find the tightest link: min over links of remaining/users.
            let mut best: Option<(f64, usize)> = None;
            for l in 0..n_links {
                if self.users[l] == 0 {
                    continue;
                }
                let fair = self.remaining_cap[l] / self.users[l] as f64;
                match best {
                    Some((b, _)) if fair >= b => {}
                    _ => best = Some((fair, l)),
                }
            }
            let Some((fair_share, bottleneck)) = best else {
                break; // no unfrozen flows remain
            };
            // Freeze every unfrozen flow crossing the bottleneck at
            // fair_share.
            let mut froze_any = false;
            for f in 0..n_flows {
                let r = route_of(f);
                if self.frozen[f] || !r.contains(&bottleneck) {
                    continue;
                }
                self.rate[f] = fair_share;
                self.frozen[f] = true;
                froze_any = true;
                for &l in r {
                    self.remaining_cap[l] = (self.remaining_cap[l] - fair_share).max(0.0);
                }
            }
            debug_assert!(froze_any, "water-filling made no progress");
            if !froze_any {
                break;
            }
        }
        stash_telemetry::metrics::SOLVER_ROUNDS.add(rounds);
        &self.rate
    }
}

/// Computes max-min fair rates.
///
/// * `capacities[l]` — capacity of link `l` in bytes/sec;
/// * `routes[f]` — links used by flow `f` (duplicates are ignored).
///
/// Returns one rate per flow, in bytes/sec.
///
/// Each route is deduplicated once up front (the solver's freeze rounds
/// then walk the cleaned routes directly, instead of re-sorting every
/// route on every round).
///
/// # Panics
///
/// Panics if a route references a link index out of bounds.
#[must_use]
pub fn max_min_rates(capacities: &[f64], routes: &[Vec<usize>]) -> Vec<f64> {
    let deduped: Vec<Vec<usize>> = routes
        .iter()
        .map(|r| {
            let mut seen = r.clone();
            seen.sort_unstable();
            seen.dedup();
            seen
        })
        .collect();
    let refs: Vec<&[usize]> = deduped.iter().map(Vec::as_slice).collect();
    MaxMinScratch::new().solve_dedup(capacities, &refs).to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) -> bool {
        (a - b).abs() <= 1e-6 * b.abs().max(1.0)
    }

    #[test]
    fn single_flow_gets_full_link() {
        let rates = max_min_rates(&[100.0], &[vec![0]]);
        assert!(approx(rates[0], 100.0));
    }

    #[test]
    fn equal_flows_split_evenly() {
        let rates = max_min_rates(&[90.0], &[vec![0], vec![0], vec![0]]);
        for r in rates {
            assert!(approx(r, 30.0));
        }
    }

    #[test]
    fn bottleneck_frees_capacity_elsewhere() {
        // Flow A uses links 0+1, flow B uses link 0 only.
        // Link 0: 100, link 1: 20. A is capped at 20 by link 1, so B gets 80.
        let rates = max_min_rates(&[100.0, 20.0], &[vec![0, 1], vec![0]]);
        assert!(approx(rates[0], 20.0), "A={}", rates[0]);
        assert!(approx(rates[1], 80.0), "B={}", rates[1]);
    }

    #[test]
    fn classic_parking_lot() {
        // 3 links of cap 10; long flow crosses all, one short flow per link.
        let routes = vec![vec![0, 1, 2], vec![0], vec![1], vec![2]];
        let rates = max_min_rates(&[10.0, 10.0, 10.0], &routes);
        assert!(approx(rates[0], 5.0));
        for r in &rates[1..] {
            assert!(approx(*r, 5.0));
        }
    }

    #[test]
    fn empty_route_is_unconstrained() {
        let rates = max_min_rates(&[10.0], &[vec![], vec![0]]);
        assert!(rates[0].is_infinite());
        assert!(approx(rates[1], 10.0));
    }

    #[test]
    fn duplicate_links_in_route_counted_once() {
        let rates = max_min_rates(&[10.0], &[vec![0, 0], vec![0]]);
        assert!(approx(rates[0], 5.0));
        assert!(approx(rates[1], 5.0));
    }

    #[test]
    fn no_flows_is_empty() {
        assert!(max_min_rates(&[10.0], &[]).is_empty());
    }

    #[test]
    fn flat_solve_matches_sliced_solve_bitwise() {
        let caps = [50.0, 30.0, 70.0, 10.0];
        let routes: Vec<Vec<usize>> = vec![vec![0, 1], vec![1, 2], vec![0, 2, 3], vec![], vec![2]];
        let refs: Vec<&[usize]> = routes.iter().map(Vec::as_slice).collect();
        let mut flat = Vec::new();
        let mut spans = Vec::new();
        for r in &routes {
            let lo = flat.len() as u32;
            flat.extend_from_slice(r);
            spans.push((lo, flat.len() as u32));
        }
        let sliced = MaxMinScratch::new().solve_dedup(&caps, &refs).to_vec();
        let flat_rates = MaxMinScratch::new()
            .solve_flat(&caps, &flat, &spans)
            .to_vec();
        for (a, b) in sliced.iter().zip(&flat_rates) {
            assert_eq!(a.to_bits(), b.to_bits(), "flat solve drifted: {a} vs {b}");
        }
    }

    #[test]
    fn capacities_never_exceeded() {
        // Random-ish fixed topology, verify feasibility.
        let caps = [50.0, 30.0, 70.0, 10.0];
        let routes = vec![
            vec![0, 1],
            vec![1, 2],
            vec![0, 2, 3],
            vec![3],
            vec![2],
            vec![0],
        ];
        let rates = max_min_rates(&caps, &routes);
        for (l, &cap) in caps.iter().enumerate() {
            let load: f64 = routes
                .iter()
                .zip(&rates)
                .filter(|(r, _)| r.contains(&l))
                .map(|(_, rate)| *rate)
                .sum();
            assert!(
                load <= cap * (1.0 + 1e-9),
                "link {l} overloaded: {load} > {cap}"
            );
        }
        // Every flow is bottlenecked somewhere: its rate equals the fair
        // share of at least one saturated link it crosses (max-min property
        // checked loosely: rate > 0).
        for r in &rates {
            assert!(*r > 0.0);
        }
    }
}
