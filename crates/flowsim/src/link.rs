//! Link definitions.
//!
//! A [`Link`] is a bandwidth resource with a propagation latency: a PCIe
//! lane, the shared PCIe host fabric, an NVLink port, an SSD, or a VM
//! network interface. Links are directionless capacity pools — callers that
//! want full-duplex behaviour model each direction as its own link.

use serde::{Deserialize, Serialize};
use stash_simkit::time::SimDuration;

/// Index of a link within a [`crate::net::FlowNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub(crate) u32);

impl LinkId {
    /// Raw index (stable for the lifetime of the owning network).
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// What kind of hardware a link models; used for reporting only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkClass {
    /// Dedicated PCIe lanes between one device and the host fabric.
    PcieLane,
    /// The shared PCIe host fabric / root-complex aggregate.
    PcieHostBus,
    /// An NVLink port on a GPU.
    NvLink,
    /// NVSwitch fabric (P4-class instances).
    NvSwitch,
    /// Instance network interface (inter-VM Ethernet).
    Network,
    /// Attached SSD volume.
    Storage,
    /// Host DRAM bandwidth (used by the page cache).
    Dram,
    /// Anything else.
    Other,
}

impl LinkClass {
    /// Short lowercase label for reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            LinkClass::PcieLane => "pcie-lane",
            LinkClass::PcieHostBus => "pcie-host",
            LinkClass::NvLink => "nvlink",
            LinkClass::NvSwitch => "nvswitch",
            LinkClass::Network => "network",
            LinkClass::Storage => "storage",
            LinkClass::Dram => "dram",
            LinkClass::Other => "other",
        }
    }
}

/// A bandwidth resource shared (max-min fairly) by concurrent flows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Human-readable name for diagnostics (e.g. `"p2.16xlarge/hostbus"`).
    pub name: String,
    /// Capacity in bytes per second.
    pub capacity_bps: f64,
    /// One-way propagation latency contributed by this hop.
    pub latency: SimDuration,
    /// Hardware class (reporting only).
    pub class: LinkClass,
}

impl Link {
    /// Creates a link.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bps` is not finite and positive.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        capacity_bps: f64,
        latency: SimDuration,
        class: LinkClass,
    ) -> Self {
        assert!(
            capacity_bps.is_finite() && capacity_bps > 0.0,
            "link capacity must be positive and finite"
        );
        Link {
            name: name.into(),
            capacity_bps,
            latency,
            class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_construction() {
        let l = Link::new("x", 1e9, SimDuration::from_micros(5), LinkClass::NvLink);
        assert_eq!(l.capacity_bps, 1e9);
        assert_eq!(l.class.label(), "nvlink");
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Link::new("bad", 0.0, SimDuration::ZERO, LinkClass::Other);
    }

    #[test]
    fn class_labels_are_distinct() {
        use LinkClass::*;
        let all = [
            PcieLane,
            PcieHostBus,
            NvLink,
            NvSwitch,
            Network,
            Storage,
            Dram,
            Other,
        ];
        let mut labels: Vec<_> = all.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), all.len());
    }
}
