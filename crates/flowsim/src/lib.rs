//! # stash-flowsim — flow-level bandwidth-sharing simulator
//!
//! Models interconnects, storage and networks as capacity pools ("links")
//! shared by concurrent transfers ("flows") under **max-min fairness** —
//! the standard flow-level abstraction of bandwidth sharing (cf. SimGrid).
//! This is the substrate that stands in for the PCIe buses, NVLink
//! crossbars, SSD volumes and VM networks of the paper's AWS testbed:
//! contention (e.g. 16 GPUs "slicing" one PCIe fabric on p2.16xlarge) falls
//! out of the fair-share model instead of being hard-coded.
//!
//! * [`link`] — [`link::Link`] capacity/latency definitions;
//! * [`fairness`] — the water-filling max-min solver;
//! * [`net`] — [`net::FlowNet`], time-integrated flow state driven by an
//!   external event loop.
//!
//! # Examples
//!
//! ```
//! use stash_flowsim::prelude::*;
//! use stash_simkit::time::{SimDuration, SimTime};
//!
//! let mut net = FlowNet::new();
//! let bus = net.add_link(Link::new("bus", 1e9, SimDuration::ZERO, LinkClass::PcieHostBus));
//! // Two concurrent 1 GB transfers share the 1 GB/s bus → 2 s each.
//! net.start_flow(SimTime::ZERO, FlowSpec::new(vec![bus], 1e9, 0));
//! net.start_flow(SimTime::ZERO, FlowSpec::new(vec![bus], 1e9, 1));
//! let done = net.next_event_time(SimTime::ZERO).unwrap();
//! assert!((done.as_secs_f64() - 2.0).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fairness;
pub mod link;
pub mod net;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::fairness::{max_min_rates, MaxMinScratch};
    pub use crate::link::{Link, LinkClass, LinkId};
    pub use crate::net::{FlowId, FlowNet, FlowSpec};
}
