//! Retry with capped exponential backoff and per-job deadlines.
//!
//! The sweep's graceful-degradation contract lives here: transient
//! store I/O failures (`EINTR`-class blips, a momentarily full disk)
//! are retried with capped exponential backoff until a per-job
//! deadline; when retries run out the job fails with a typed
//! [`FailReason`] and the sweep *continues* — one sick cell is reported,
//! not allowed to poison the run. Simulation errors (OOM, no reference
//! instance) are permanent by construction and never enter the retry
//! loop.

use std::fmt;
use std::io;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

/// Retry/backoff parameters for one store-backed job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts, including the first (minimum 1).
    pub max_attempts: u32,
    /// Backoff before the first retry, milliseconds.
    pub base_backoff_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub max_backoff_ms: u64,
    /// Wall-clock budget for the whole job, milliseconds.
    pub deadline_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 4,
            base_backoff_ms: 10,
            max_backoff_ms: 500,
            deadline_ms: 30_000,
        }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `retry` (1-based), capped.
    #[must_use]
    pub fn backoff(&self, retry: u32) -> Duration {
        let exp = retry.saturating_sub(1).min(16);
        let ms = self
            .base_backoff_ms
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_ms);
        Duration::from_millis(ms)
    }
}

/// Why a sweep cell failed permanently. Serialized into the journal's
/// `fail` lines and the results CSV `status` column.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailReason {
    /// Store I/O kept failing until retries ran out.
    RetriesExhausted {
        /// Attempts made (== policy `max_attempts`).
        attempts: u32,
        /// The last I/O error, stringified.
        last_error: String,
    },
    /// The per-job deadline elapsed before an attempt succeeded.
    DeadlineExceeded {
        /// Wall-clock spent, milliseconds.
        elapsed_ms: u64,
        /// The last I/O error, stringified.
        last_error: String,
    },
    /// The simulation itself rejected the cell (OOM, no reference
    /// instance) — permanent, never retried.
    Profile {
        /// The profiler error, stringified.
        error: String,
    },
}

impl FailReason {
    /// Short machine-readable code for CSV columns and exit summaries.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            FailReason::RetriesExhausted { .. } => "retries-exhausted",
            FailReason::DeadlineExceeded { .. } => "deadline-exceeded",
            FailReason::Profile { .. } => "profile-error",
        }
    }

    /// JSON form for journal `fail` lines.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).unwrap_or_else(|_| format!("\"{}\"", self.code()))
    }
}

impl fmt::Display for FailReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailReason::RetriesExhausted {
                attempts,
                last_error,
            } => write!(
                f,
                "retries exhausted after {attempts} attempts: {last_error}"
            ),
            FailReason::DeadlineExceeded {
                elapsed_ms,
                last_error,
            } => write!(f, "deadline exceeded after {elapsed_ms} ms: {last_error}"),
            FailReason::Profile { error } => write!(f, "profile error: {error}"),
        }
    }
}

/// Runs `op` under `policy`: every [`io::Error`] is treated as
/// transient and retried with capped exponential backoff until attempts
/// or the deadline run out. Each retry increments the
/// `stash_store_retries_total` counter.
///
/// # Errors
///
/// [`FailReason::RetriesExhausted`] or [`FailReason::DeadlineExceeded`],
/// carrying the last underlying error.
pub fn with_retry<T>(
    policy: &RetryPolicy,
    mut op: impl FnMut() -> io::Result<T>,
) -> Result<T, FailReason> {
    let started = Instant::now();
    let attempts = policy.max_attempts.max(1);
    let mut last_error = String::new();
    for attempt in 1..=attempts {
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => last_error = e.to_string(),
        }
        if attempt == attempts {
            break;
        }
        let backoff = policy.backoff(attempt);
        let elapsed = started.elapsed();
        if elapsed + backoff > Duration::from_millis(policy.deadline_ms) {
            return Err(FailReason::DeadlineExceeded {
                elapsed_ms: elapsed.as_millis() as u64,
                last_error,
            });
        }
        stash_telemetry::metrics::STORE_RETRIES.inc();
        std::thread::sleep(backoff);
    }
    Err(FailReason::RetriesExhausted {
        attempts,
        last_error,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use std::cell::Cell;

    fn fast() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            deadline_ms: 10_000,
        }
    }

    #[test]
    fn first_try_success_needs_no_retry() {
        let calls = Cell::new(0u32);
        let out = with_retry(&fast(), || {
            calls.set(calls.get() + 1);
            Ok::<_, io::Error>(7)
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn transient_failure_is_retried_to_success() {
        let calls = Cell::new(0u32);
        let out = with_retry(&fast(), || {
            calls.set(calls.get() + 1);
            if calls.get() < 3 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "blip"))
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(calls.get(), 3);
    }

    #[test]
    fn exhaustion_reports_attempts_and_last_error() {
        let out: Result<(), _> = with_retry(&fast(), || Err(io::Error::other("still broken")));
        match out.unwrap_err() {
            FailReason::RetriesExhausted {
                attempts,
                last_error,
            } => {
                assert_eq!(attempts, 3);
                assert!(last_error.contains("still broken"));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn deadline_cuts_the_loop_short() {
        let policy = RetryPolicy {
            max_attempts: 100,
            base_backoff_ms: 50,
            max_backoff_ms: 50,
            deadline_ms: 1,
        };
        let out: Result<(), _> = with_retry(&policy, || Err(io::Error::other("x")));
        assert!(matches!(
            out.unwrap_err(),
            FailReason::DeadlineExceeded { .. }
        ));
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = RetryPolicy {
            max_attempts: 8,
            base_backoff_ms: 10,
            max_backoff_ms: 45,
            deadline_ms: 1_000,
        };
        assert_eq!(p.backoff(1), Duration::from_millis(10));
        assert_eq!(p.backoff(2), Duration::from_millis(20));
        assert_eq!(p.backoff(3), Duration::from_millis(40));
        assert_eq!(p.backoff(4), Duration::from_millis(45));
        assert_eq!(p.backoff(30), Duration::from_millis(45));
    }

    #[test]
    fn fail_reason_codes_and_json_round_trip() {
        let r = FailReason::Profile {
            error: "model does not fit".to_string(),
        };
        assert_eq!(r.code(), "profile-error");
        let back: FailReason = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(back, r);
        assert!(r.to_string().contains("model does not fit"));
    }
}
