//! The record frame: length + checksum around every stored payload.
//!
//! A record file is a single frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"SRF1"
//! 4       8     payload length, u64 little-endian
//! 12      16    FNV-1a-128 checksum of the payload, little-endian
//! 28      len   payload bytes
//! ```
//!
//! The frame turns every physical failure mode into a *detected* one:
//! a torn or truncated write fails the length check, a bit flip fails
//! the checksum, a foreign file fails the magic. Decoding has exactly
//! two outcomes — the original payload or a typed [`FrameError`] — which
//! is what the round-trip property test asserts: there is no third
//! outcome where corrupt bytes decode silently.

use std::error::Error;
use std::fmt;

use crate::fnv128;

/// Frame magic: "Stash Record Frame v1".
pub const MAGIC: [u8; 4] = *b"SRF1";
/// Bytes of header before the payload.
pub const HEADER_LEN: usize = 4 + 8 + 16;

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than a frame header — a torn write or a truncated
    /// read caught it mid-header.
    TruncatedHeader {
        /// Bytes actually present.
        have: usize,
    },
    /// The first four bytes are not the record magic.
    BadMagic {
        /// The bytes found instead.
        found: [u8; 4],
    },
    /// The header promises more payload than the file holds (torn write)
    /// or less (trailing garbage appended).
    LengthMismatch {
        /// Payload length the header declares.
        declared: u64,
        /// Payload bytes actually present.
        have: u64,
    },
    /// Length is right but the payload does not hash to the stored
    /// checksum — bit rot or an in-place overwrite.
    ChecksumMismatch {
        /// Checksum the header declares.
        declared: u128,
        /// Checksum of the payload as read.
        computed: u128,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::TruncatedHeader { have } => {
                write!(f, "truncated frame header: {have} bytes, need {HEADER_LEN}")
            }
            FrameError::BadMagic { found } => {
                write!(f, "bad record magic {found:02x?}, want {MAGIC:02x?}")
            }
            FrameError::LengthMismatch { declared, have } => {
                write!(f, "payload length mismatch: header declares {declared} bytes, found {have}")
            }
            FrameError::ChecksumMismatch { declared, computed } => write!(
                f,
                "payload checksum mismatch: header declares {declared:032x}, computed {computed:032x}"
            ),
        }
    }
}

impl Error for FrameError {}

/// Wraps `payload` in a checksummed frame.
#[must_use]
pub fn encode(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv128(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Recovers the payload from a framed record, or reports exactly how the
/// record is corrupt.
///
/// # Errors
///
/// A typed [`FrameError`] for every way the bytes can fail to be a
/// well-formed frame; never panics, never returns partial payloads.
pub fn decode(bytes: &[u8]) -> Result<Vec<u8>, FrameError> {
    if bytes.len() < HEADER_LEN {
        return Err(FrameError::TruncatedHeader { have: bytes.len() });
    }
    let (magic, rest) = bytes.split_at(4);
    if magic != MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(magic);
        return Err(FrameError::BadMagic { found });
    }
    let (len_bytes, rest) = rest.split_at(8);
    let mut len_arr = [0u8; 8];
    len_arr.copy_from_slice(len_bytes);
    let declared = u64::from_le_bytes(len_arr);
    let (sum_bytes, payload) = rest.split_at(16);
    let mut sum_arr = [0u8; 16];
    sum_arr.copy_from_slice(sum_bytes);
    let declared_sum = u128::from_le_bytes(sum_arr);
    if payload.len() as u64 != declared {
        return Err(FrameError::LengthMismatch {
            declared,
            have: payload.len() as u64,
        });
    }
    let computed = fnv128(payload);
    if computed != declared_sum {
        return Err(FrameError::ChecksumMismatch {
            declared: declared_sum,
            computed,
        });
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_identity() {
        for payload in [&b""[..], b"x", b"{\"a\":1}", &[0u8; 4096][..]] {
            assert_eq!(decode(&encode(payload)).unwrap(), payload);
        }
    }

    #[test]
    fn truncation_is_detected_at_every_length() {
        let framed = encode(b"the payload that must not tear silently");
        for cut in 0..framed.len() {
            let err = decode(&framed[..cut]).unwrap_err();
            match err {
                FrameError::TruncatedHeader { .. } | FrameError::LengthMismatch { .. } => {}
                other => panic!("cut at {cut}: unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let framed = encode(b"bit rot test");
        for byte in 0..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[byte] ^= 1 << bit;
                assert!(decode(&bad).is_err(), "flip at {byte}:{bit} undetected");
            }
        }
    }

    #[test]
    fn trailing_garbage_is_detected() {
        let mut framed = encode(b"payload");
        framed.push(0);
        assert!(matches!(
            decode(&framed),
            Err(FrameError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn foreign_files_fail_the_magic() {
        assert!(matches!(
            decode(b"{\"json\": \"not a frame, but long enough to pass the header check\"}"),
            Err(FrameError::BadMagic { .. })
        ));
    }
}
