//! The store's I/O boundary: one trait, two backends.
//!
//! Every byte the store reads or writes goes through [`StoreIo`], so the
//! durability logic above it (frames, journal, fsck, retries) can be
//! exercised against failures without touching a real disk's failure
//! modes. [`StdFs`] is production: atomic write-temp-fsync-rename
//! record writes on `std::fs`. [`FaultFs`] is the same backend with a
//! deterministic, planned fault layer in front — the I/O counterpart of
//! the PR 5 `FaultPlan` chaos engine: torn writes, short reads,
//! transient `EIO`, `ENOSPC`, silent bit flips and mid-write stalls fire
//! at planned operation indices, so every recovery branch in the store
//! is reachable from a test, on purpose, repeatably.

use std::fmt;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// The operations a result store needs from a filesystem.
///
/// Implementations must make [`StoreIo::write_atomic`] all-or-nothing on
/// clean shutdown: after it returns `Ok`, the full bytes are durable at
/// `path`; if the process dies before it returns, `path` holds either
/// its old content or (for injected tears) a detectably short prefix —
/// never silently mixed bytes that decode.
pub trait StoreIo: fmt::Debug {
    /// Reads the entire file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Durably replaces `path` with `bytes` (write temp, fsync, rename).
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Appends `bytes` to `path`, creating it if missing, syncing after.
    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// The files directly inside `dir`, sorted by filename.
    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>>;
    /// Renames `from` to `to` (same filesystem).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove(&self, path: &Path) -> io::Result<()>;
    /// Creates `dir` and its parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Whether `path` exists.
    fn exists(&self, path: &Path) -> bool;
}

/// The production backend: `std::fs` with write-temp-fsync-rename
/// atomicity for record writes.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdFs;

impl StdFs {
    /// A new production backend.
    #[must_use]
    pub fn new() -> StdFs {
        StdFs
    }
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("record"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".tmp");
    path.with_file_name(name)
}

/// Best-effort fsync of the directory containing `path`, so the rename
/// itself is durable. Some filesystems refuse directory fsync; that only
/// weakens crash-durability of the *rename*, never atomicity, so errors
/// are deliberately ignored.
fn sync_parent_dir(path: &Path) {
    if let Some(dir) = path.parent() {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
}

impl StoreIo for StdFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let tmp = tmp_sibling(path);
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        sync_parent_dir(path);
        Ok(())
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
            .collect::<io::Result<Vec<_>>>()?
            .into_iter()
            .map(|e| e.path())
            .filter(|p| p.is_file())
            .collect();
        paths.sort();
        Ok(paths)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)?;
        sync_parent_dir(to);
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        fs::create_dir_all(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// Which operation class a planned fault targets. Class-scoped indices
/// ("the 2nd write") survive incidental reads being added around them,
/// unlike a single global op counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoOpClass {
    /// Any operation, counted globally.
    Any,
    /// Whole-file reads.
    Read,
    /// Atomic record writes.
    Write,
    /// Journal appends.
    Append,
    /// Renames (quarantine moves).
    Rename,
}

/// What happens when a planned fault fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IoFaultKind {
    /// A write crashes mid-stream: only the first `keep` bytes land at
    /// the destination, and the operation reports an I/O error — the
    /// on-disk state a power cut leaves behind.
    TornWrite {
        /// Bytes that survive at the destination.
        keep: u64,
    },
    /// A read silently returns only a prefix, dropping the final `drop`
    /// bytes — a torn page without an error code.
    ShortRead {
        /// Bytes removed from the tail of the read.
        drop: u64,
    },
    /// The operation fails once with a retryable error (`EINTR`-like);
    /// the retry takes a fresh op index and succeeds.
    TransientErr,
    /// The operation fails with `ENOSPC` (disk full) once.
    Enospc,
    /// The write completes and *reports success*, but one bit of the
    /// destination file is flipped afterwards — silent corruption for
    /// the checksum layer to catch.
    BitFlip {
        /// Byte offset (mod file length) whose low bit is flipped.
        byte: u64,
    },
    /// The write lands `keep` bytes at the destination, announces itself
    /// on stdout, then stalls forever — the hook the crash-kill
    /// integration test uses to SIGKILL a sweep mid-write.
    StallMidWrite {
        /// Bytes that land before the stall.
        keep: u64,
    },
}

/// One planned fault: fire `kind` on the `index`-th operation of class
/// `op` (0-based, counted per class). Each fault fires exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoFault {
    /// Operation class the index counts.
    pub op: IoOpClass,
    /// 0-based index within that class.
    pub index: u64,
    /// The failure to inject.
    pub kind: IoFaultKind,
}

/// A deterministic I/O fault schedule.
///
/// # Examples
///
/// ```
/// use stash_store::io::IoFaultPlan;
/// let plan = IoFaultPlan::seeded(7);
/// assert_eq!(plan, IoFaultPlan::seeded(7));
/// let back = IoFaultPlan::from_json(&plan.to_json()).unwrap();
/// assert_eq!(back, plan);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IoFaultPlan {
    /// The planned faults, in no particular order.
    pub faults: Vec<IoFault>,
}

/// Splitmix64 step, the same generator the chaos `FaultPlan` seeds with.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl IoFaultPlan {
    /// An empty plan (no faults — the differential baseline).
    #[must_use]
    pub fn none() -> IoFaultPlan {
        IoFaultPlan::default()
    }

    /// A deterministic schedule of *recoverable* faults: transient
    /// errors, a torn write, a short read and one `ENOSPC`, spread over
    /// the first few dozen operations. A sweep running under a seeded
    /// plan must converge to the same bytes as a clean run — every fault
    /// here is one the retry/quarantine machinery recovers from.
    #[must_use]
    pub fn seeded(seed: u64) -> IoFaultPlan {
        let mut s = seed ^ 0x5741_4c5f_494f_5f31; // "WAL_IO_1"
        let faults = vec![
            // Two transient errors on early writes and one on an append.
            IoFault {
                op: IoOpClass::Write,
                index: splitmix(&mut s) % 3,
                kind: IoFaultKind::TransientErr,
            },
            IoFault {
                op: IoOpClass::Write,
                index: 4 + splitmix(&mut s) % 4,
                kind: IoFaultKind::TransientErr,
            },
            IoFault {
                op: IoOpClass::Append,
                index: splitmix(&mut s) % 6,
                kind: IoFaultKind::TransientErr,
            },
            // One torn record write (destination left with a short prefix).
            IoFault {
                op: IoOpClass::Write,
                index: 8 + splitmix(&mut s) % 4,
                kind: IoFaultKind::TornWrite {
                    keep: 7 + splitmix(&mut s) % 40,
                },
            },
            // One short read and one disk-full blip.
            IoFault {
                op: IoOpClass::Read,
                index: splitmix(&mut s) % 8,
                kind: IoFaultKind::ShortRead {
                    drop: 1 + splitmix(&mut s) % 24,
                },
            },
            IoFault {
                op: IoOpClass::Write,
                index: 13 + splitmix(&mut s) % 4,
                kind: IoFaultKind::Enospc,
            },
        ];
        IoFaultPlan { faults }
    }

    /// Serializes the plan to pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{\"faults\":[]}".to_string())
    }

    /// Parses a plan previously written by [`IoFaultPlan::to_json`].
    ///
    /// # Errors
    ///
    /// A description of the malformed input.
    pub fn from_json(s: &str) -> Result<IoFaultPlan, String> {
        serde_json::from_str(s).map_err(|e| format!("invalid I/O fault plan: {e}"))
    }
}

#[derive(Debug)]
struct FaultState {
    /// Pending faults; fired entries are tombstoned to `None`.
    pending: Vec<Option<IoFault>>,
    /// Per-class operation counters, indexed by [`IoOpClass`] discriminant
    /// order: any, read, write, append, rename.
    counts: [u64; 5],
}

/// [`StdFs`] behind a deterministic fault-injection layer.
///
/// Operation indices count per class (and globally for
/// [`IoOpClass::Any`]); when an index matches a pending fault, the fault
/// fires once and is consumed. All bookkeeping sits behind a mutex so a
/// `FaultFs` can serve the same call-sites a [`StdFs`] does.
#[derive(Debug)]
pub struct FaultFs {
    inner: StdFs,
    state: Mutex<FaultState>,
}

impl FaultFs {
    /// A faulting backend over the production filesystem.
    #[must_use]
    pub fn new(plan: IoFaultPlan) -> FaultFs {
        FaultFs {
            inner: StdFs,
            state: Mutex::new(FaultState {
                pending: plan.faults.into_iter().map(Some).collect(),
                counts: [0; 5],
            }),
        }
    }

    /// Faults not yet fired (tests assert a plan was fully exercised).
    ///
    /// # Panics
    ///
    /// Panics if the fault-state mutex was poisoned.
    #[must_use]
    pub fn pending_faults(&self) -> usize {
        match self.state.lock() {
            Ok(s) => s.pending.iter().flatten().count(),
            Err(_) => panic!("fault state poisoned"),
        }
    }

    /// Advances the class and global counters for one operation of
    /// `class` and returns the fault to fire, if any.
    fn next_fault(&self, class: IoOpClass) -> Option<IoFaultKind> {
        let mut s = match self.state.lock() {
            Ok(s) => s,
            Err(_) => panic!("fault state poisoned"),
        };
        let class_slot = match class {
            IoOpClass::Any => 0,
            IoOpClass::Read => 1,
            IoOpClass::Write => 2,
            IoOpClass::Append => 3,
            IoOpClass::Rename => 4,
        };
        let global_index = s.counts[0];
        let class_index = s.counts[class_slot];
        s.counts[0] = global_index + 1;
        if class_slot != 0 {
            s.counts[class_slot] = class_index + 1;
        }
        for slot in &mut s.pending {
            let Some(fault) = slot else { continue };
            let hit = match fault.op {
                IoOpClass::Any => fault.index == global_index,
                op if op == class => fault.index == class_index,
                _ => false,
            };
            if hit {
                let kind = fault.kind;
                *slot = None;
                return Some(kind);
            }
        }
        None
    }
}

fn transient_err() -> io::Error {
    io::Error::new(io::ErrorKind::Interrupted, "injected transient I/O error")
}

fn enospc_err() -> io::Error {
    // Raw ENOSPC so callers see the real "No space left on device".
    io::Error::from_raw_os_error(28)
}

impl StoreIo for FaultFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.next_fault(IoOpClass::Read) {
            Some(IoFaultKind::TransientErr) => Err(transient_err()),
            Some(IoFaultKind::Enospc) => Err(enospc_err()),
            Some(IoFaultKind::ShortRead { drop }) => {
                let mut bytes = self.inner.read(path)?;
                let keep = bytes.len().saturating_sub(drop as usize);
                bytes.truncate(keep);
                Ok(bytes)
            }
            _ => self.inner.read(path),
        }
    }

    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.next_fault(IoOpClass::Write) {
            Some(IoFaultKind::TransientErr) => Err(transient_err()),
            Some(IoFaultKind::Enospc) => Err(enospc_err()),
            Some(IoFaultKind::TornWrite { keep }) => {
                // The tear bypasses the temp file on purpose: this is the
                // post-crash state where the destination holds a prefix.
                let keep = (keep as usize).min(bytes.len());
                fs::write(path, &bytes[..keep])?;
                Err(io::Error::other("injected torn write"))
            }
            Some(IoFaultKind::BitFlip { byte }) => {
                self.inner.write_atomic(path, bytes)?;
                let mut on_disk = fs::read(path)?;
                if !on_disk.is_empty() {
                    let i = (byte as usize) % on_disk.len();
                    on_disk[i] ^= 1;
                    fs::write(path, &on_disk)?;
                }
                Ok(())
            }
            Some(IoFaultKind::StallMidWrite { keep }) => {
                let keep = (keep as usize).min(bytes.len());
                fs::write(path, &bytes[..keep])?;
                // Handshake line for the crash-kill test: the parent
                // waits for it, then SIGKILLs this process mid-write.
                println!("stash-store: stalled mid-write of {}", path.display());
                let _ = io::stdout().flush();
                loop {
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
            }
            _ => self.inner.write_atomic(path, bytes),
        }
    }

    fn append(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.next_fault(IoOpClass::Append) {
            Some(IoFaultKind::TransientErr) => Err(transient_err()),
            Some(IoFaultKind::Enospc) => Err(enospc_err()),
            Some(IoFaultKind::TornWrite { keep }) => {
                let keep = (keep as usize).min(bytes.len());
                self.inner.append(path, &bytes[..keep])?;
                Err(io::Error::other("injected torn append"))
            }
            _ => self.inner.append(path, bytes),
        }
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<PathBuf>> {
        match self.next_fault(IoOpClass::Any) {
            Some(IoFaultKind::TransientErr) => Err(transient_err()),
            _ => self.inner.list(dir),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.next_fault(IoOpClass::Rename) {
            Some(IoFaultKind::TransientErr) => Err(transient_err()),
            Some(IoFaultKind::Enospc) => Err(enospc_err()),
            _ => self.inner.rename(from, to),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stash_store_io_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn stdfs_write_atomic_round_trips_and_replaces() {
        let dir = tmpdir("atomic");
        let path = dir.join("a.rec");
        let io = StdFs::new();
        io.write_atomic(&path, b"first").unwrap();
        assert_eq!(io.read(&path).unwrap(), b"first");
        io.write_atomic(&path, b"second, longer").unwrap();
        assert_eq!(io.read(&path).unwrap(), b"second, longer");
        assert!(!tmp_sibling(&path).exists(), "temp file must not linger");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stdfs_append_accumulates() {
        let dir = tmpdir("append");
        let path = dir.join("j.log");
        let io = StdFs::new();
        io.append(&path, b"one\n").unwrap();
        io.append(&path, b"two\n").unwrap();
        assert_eq!(io.read(&path).unwrap(), b"one\ntwo\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn faultfs_injects_at_planned_class_indices() {
        let dir = tmpdir("faults");
        let plan = IoFaultPlan {
            faults: vec![
                IoFault {
                    op: IoOpClass::Write,
                    index: 1,
                    kind: IoFaultKind::TransientErr,
                },
                IoFault {
                    op: IoOpClass::Read,
                    index: 0,
                    kind: IoFaultKind::ShortRead { drop: 3 },
                },
            ],
        };
        let io = FaultFs::new(plan);
        io.write_atomic(&dir.join("a"), b"aaaa").unwrap(); // write #0: clean
        let err = io.write_atomic(&dir.join("b"), b"bbbb").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        io.write_atomic(&dir.join("b"), b"bbbb").unwrap(); // retry: clean
        assert_eq!(io.read(&dir.join("a")).unwrap(), b"a"); // short read
        assert_eq!(io.read(&dir.join("a")).unwrap(), b"aaaa"); // clean again
        assert_eq!(io.pending_faults(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_write_leaves_a_detectable_prefix() {
        let dir = tmpdir("torn");
        let io = FaultFs::new(IoFaultPlan {
            faults: vec![IoFault {
                op: IoOpClass::Write,
                index: 0,
                kind: IoFaultKind::TornWrite { keep: 4 },
            }],
        });
        let path = dir.join("t.rec");
        assert!(io.write_atomic(&path, b"0123456789").is_err());
        assert_eq!(io.read(&path).unwrap(), b"0123");
        io.write_atomic(&path, b"0123456789").unwrap();
        assert_eq!(io.read(&path).unwrap(), b"0123456789");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn bit_flip_reports_success_but_corrupts() {
        let dir = tmpdir("flip");
        let io = FaultFs::new(IoFaultPlan {
            faults: vec![IoFault {
                op: IoOpClass::Write,
                index: 0,
                kind: IoFaultKind::BitFlip { byte: 2 },
            }],
        });
        let path = dir.join("f.rec");
        io.write_atomic(&path, b"abcd").unwrap();
        let bytes = io.read(&path).unwrap();
        assert_eq!(bytes.len(), 4);
        assert_ne!(bytes, b"abcd");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn enospc_surfaces_the_real_errno() {
        let dir = tmpdir("enospc");
        let io = FaultFs::new(IoFaultPlan {
            faults: vec![IoFault {
                op: IoOpClass::Write,
                index: 0,
                kind: IoFaultKind::Enospc,
            }],
        });
        let err = io.write_atomic(&dir.join("e"), b"x").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seeded_plans_are_deterministic_and_round_trip() {
        let a = IoFaultPlan::seeded(42);
        assert_eq!(a, IoFaultPlan::seeded(42));
        assert_ne!(a, IoFaultPlan::seeded(43));
        assert_eq!(IoFaultPlan::from_json(&a.to_json()).unwrap(), a);
        assert!(IoFaultPlan::from_json("{ not json").is_err());
    }
}
