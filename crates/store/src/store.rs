//! The content-addressed result store.
//!
//! Layout under a store root:
//!
//! ```text
//! <root>/records/<32-hex key>.rec   framed payloads (see `frame`)
//! <root>/quarantine/                corrupt records, moved aside on detection
//! <root>/journal.log                write-ahead sweep journal (see `journal`)
//! ```
//!
//! Records are keyed by the profiler's FNV-128 canonical config keys, so
//! the store is content-addressed the same way the `MeasurementCache` is
//! memoized: equal configurations share a key, and the engine being
//! deterministic, equal keys hold bit-identical payloads. Writes are
//! atomic (write-temp-fsync-rename); reads verify the frame and
//! *quarantine* anything corrupt instead of aborting, so one rotten
//! record costs one recomputation, never the sweep.

use std::error::Error;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::frame;
use crate::io::StoreIo;
use crate::journal::Journal;
use crate::{key_hex, parse_key_hex};

/// Record filename extension.
pub const RECORD_EXT: &str = "rec";

/// A typed, path-qualified store failure.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O operation failed after any retries the caller ran.
    Io {
        /// The operation ("read", "write", "list", "rename", "mkdir").
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error, stringified.
        error: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { op, path, error } => {
                write!(f, "store {op} failed for {}: {error}", path.display())
            }
        }
    }
}

impl Error for StoreError {}

fn io_err(op: &'static str, path: &Path, e: &std::io::Error) -> StoreError {
    StoreError::Io {
        op,
        path: path.to_path_buf(),
        error: e.to_string(),
    }
}

/// Outcome of a keyed lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fetch {
    /// A verified record; the payload decoded clean.
    Hit(Vec<u8>),
    /// No record for this key.
    Miss,
    /// A record existed but failed verification; it has been moved to
    /// quarantine and the caller should recompute.
    Quarantined {
        /// Where the corrupt bytes now live.
        quarantined_to: PathBuf,
        /// How verification failed.
        error: frame::FrameError,
    },
}

/// One problem `fsck` found (and what it did about it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsckIssue {
    /// A record failed frame verification and was quarantined.
    Corrupt {
        /// The record's 32-hex key.
        key: String,
        /// Original record path.
        path: PathBuf,
        /// Where the bytes were moved.
        quarantined_to: PathBuf,
        /// The verification failure, stringified.
        error: String,
    },
    /// A file in `records/` whose name is not `<32 hex>.rec`; left in
    /// place (it is not ours to judge).
    ForeignFile {
        /// The offending path.
        path: PathBuf,
    },
    /// A leftover `.tmp` from an interrupted atomic write; removed.
    StaleTemp {
        /// The removed path.
        path: PathBuf,
    },
}

impl fmt::Display for FsckIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsckIssue::Corrupt {
                key,
                path,
                quarantined_to,
                error,
            } => write!(
                f,
                "corrupt record {key} at {}: {error}; quarantined to {}",
                path.display(),
                quarantined_to.display()
            ),
            FsckIssue::ForeignFile { path } => {
                write!(f, "foreign file in records dir: {}", path.display())
            }
            FsckIssue::StaleTemp { path } => {
                write!(f, "removed stale temp file {}", path.display())
            }
        }
    }
}

/// What an `fsck` scan found.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Record files examined.
    pub scanned: usize,
    /// Records that verified clean.
    pub ok: usize,
    /// Everything that was wrong, in scan order.
    pub issues: Vec<FsckIssue>,
}

impl FsckReport {
    /// `true` when the scan found nothing wrong.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.issues.is_empty()
    }

    /// Keys of records that were quarantined by this scan.
    #[must_use]
    pub fn quarantined_keys(&self) -> Vec<String> {
        self.issues
            .iter()
            .filter_map(|i| match i {
                FsckIssue::Corrupt { key, .. } => Some(key.clone()),
                _ => None,
            })
            .collect()
    }
}

/// A content-addressed record store rooted at a directory, doing all its
/// I/O through a caller-chosen [`StoreIo`] backend.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    io: Box<dyn StoreIo>,
}

impl ResultStore {
    /// Opens (creating if needed) a store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the layout directories cannot be created.
    pub fn open(root: &Path, io: Box<dyn StoreIo>) -> Result<ResultStore, StoreError> {
        let store = ResultStore {
            root: root.to_path_buf(),
            io,
        };
        for dir in [store.records_dir(), store.quarantine_dir()] {
            store
                .io
                .create_dir_all(&dir)
                .map_err(|e| io_err("mkdir", &dir, &e))?;
        }
        Ok(store)
    }

    /// The store root.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The I/O backend (the journal shares it).
    #[must_use]
    pub fn io(&self) -> &dyn StoreIo {
        self.io.as_ref()
    }

    /// `<root>/records`.
    #[must_use]
    pub fn records_dir(&self) -> PathBuf {
        self.root.join("records")
    }

    /// `<root>/quarantine`.
    #[must_use]
    pub fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    /// The journal co-located with this store (`<root>/journal.log`).
    #[must_use]
    pub fn journal(&self) -> Journal {
        Journal::new(&self.root.join("journal.log"))
    }

    /// The record path for a key.
    #[must_use]
    pub fn record_path(&self, key: u128) -> PathBuf {
        self.records_dir()
            .join(format!("{}.{RECORD_EXT}", key_hex(key)))
    }

    /// First free quarantine destination for `name`.
    fn quarantine_slot(&self, name: &str) -> PathBuf {
        for n in 0.. {
            let candidate = self.quarantine_dir().join(format!("{name}.q{n}"));
            if !self.io.exists(&candidate) {
                return candidate;
            }
        }
        unreachable!("quarantine slots are unbounded")
    }

    /// Moves a failed record aside and reports where it went.
    fn quarantine(&self, path: &Path) -> Result<PathBuf, StoreError> {
        let name = path.file_name().map_or_else(
            || "record".to_string(),
            |n| n.to_string_lossy().into_owned(),
        );
        let dest = self.quarantine_slot(&name);
        self.io
            .rename(path, &dest)
            .map_err(|e| io_err("rename", path, &e))?;
        stash_telemetry::metrics::STORE_QUARANTINED.inc();
        Ok(dest)
    }

    /// Looks up `key`, verifying the record frame. Corrupt records are
    /// quarantined and reported as [`Fetch::Quarantined`] so the caller
    /// recomputes instead of trusting rot.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] only for real I/O failures; corruption is a
    /// normal [`Fetch`] outcome, not an error.
    pub fn get(&self, key: u128) -> Result<Fetch, StoreError> {
        let path = self.record_path(key);
        if !self.io.exists(&path) {
            stash_telemetry::metrics::STORE_MISSES.inc();
            return Ok(Fetch::Miss);
        }
        let bytes = self.io.read(&path).map_err(|e| io_err("read", &path, &e))?;
        match frame::decode(&bytes) {
            Ok(payload) => {
                stash_telemetry::metrics::STORE_HITS.inc();
                Ok(Fetch::Hit(payload))
            }
            Err(error) => {
                let quarantined_to = self.quarantine(&path)?;
                Ok(Fetch::Quarantined {
                    quarantined_to,
                    error,
                })
            }
        }
    }

    /// Durably stores `payload` under `key` (framed, atomic).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the atomic write fails.
    pub fn put(&self, key: u128, payload: &[u8]) -> Result<(), StoreError> {
        let path = self.record_path(key);
        let framed = frame::encode(payload);
        self.io
            .write_atomic(&path, &framed)
            .map_err(|e| io_err("write", &path, &e))?;
        stash_telemetry::metrics::STORE_WRITES.inc();
        Ok(())
    }

    /// Every key with a record file, sorted.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the records directory cannot be listed.
    pub fn keys(&self) -> Result<Vec<u128>, StoreError> {
        let dir = self.records_dir();
        let paths = self.io.list(&dir).map_err(|e| io_err("list", &dir, &e))?;
        let mut keys: Vec<u128> = paths.iter().filter_map(|p| key_of_record(p)).collect();
        keys.sort_unstable();
        Ok(keys)
    }

    /// Scans every record: verifies frames, quarantines corruption,
    /// removes stale temp files, flags foreign files. Never aborts on a
    /// bad record — that is the point.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] for real I/O failures during the scan.
    pub fn fsck(&self) -> Result<FsckReport, StoreError> {
        let dir = self.records_dir();
        let paths = self.io.list(&dir).map_err(|e| io_err("list", &dir, &e))?;
        let mut report = FsckReport::default();
        for path in paths {
            let name = path
                .file_name()
                .map_or_else(String::new, |n| n.to_string_lossy().into_owned());
            if name.ends_with(".tmp") {
                self.io
                    .remove(&path)
                    .map_err(|e| io_err("remove", &path, &e))?;
                report.issues.push(FsckIssue::StaleTemp { path });
                continue;
            }
            let Some(key) = key_of_record(&path) else {
                report.issues.push(FsckIssue::ForeignFile { path });
                continue;
            };
            report.scanned += 1;
            let bytes = self.io.read(&path).map_err(|e| io_err("read", &path, &e))?;
            match frame::decode(&bytes) {
                Ok(_) => report.ok += 1,
                Err(error) => {
                    let quarantined_to = self.quarantine(&path)?;
                    report.issues.push(FsckIssue::Corrupt {
                        key: key_hex(key),
                        path,
                        quarantined_to,
                        error: error.to_string(),
                    });
                }
            }
        }
        Ok(report)
    }
}

/// The key encoded in a record path's filename, when well-formed.
#[must_use]
pub fn key_of_record(path: &Path) -> Option<u128> {
    let name = path.file_name()?.to_str()?;
    let stem = name.strip_suffix(&format!(".{RECORD_EXT}"))?;
    parse_key_hex(stem)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::io::{FaultFs, IoFault, IoFaultKind, IoFaultPlan, IoOpClass, StdFs};
    use std::fs;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stash_store_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_round_trips() {
        let root = tmp("rt");
        let store = ResultStore::open(&root, Box::new(StdFs::new())).unwrap();
        assert_eq!(store.get(42).unwrap(), Fetch::Miss);
        store.put(42, b"{\"report\":1}").unwrap();
        assert_eq!(
            store.get(42).unwrap(),
            Fetch::Hit(b"{\"report\":1}".to_vec())
        );
        assert_eq!(store.keys().unwrap(), vec![42]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_record_is_quarantined_then_missing() {
        let root = tmp("quarantine");
        let store = ResultStore::open(&root, Box::new(StdFs::new())).unwrap();
        store.put(7, b"payload").unwrap();
        // Doctor the record in place: flip one payload bit.
        let path = store.record_path(7);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        fs::write(&path, &bytes).unwrap();
        match store.get(7).unwrap() {
            Fetch::Quarantined { quarantined_to, .. } => assert!(quarantined_to.exists()),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(store.get(7).unwrap(), Fetch::Miss);
        // Recompute and re-put restores the key.
        store.put(7, b"payload").unwrap();
        assert_eq!(store.get(7).unwrap(), Fetch::Hit(b"payload".to_vec()));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn fsck_quarantines_corruption_and_sweeps_temps() {
        let root = tmp("fsck");
        let store = ResultStore::open(&root, Box::new(StdFs::new())).unwrap();
        store.put(1, b"one").unwrap();
        store.put(2, b"two").unwrap();
        // Truncate record 2 to a torn prefix and drop a stale temp file.
        let p2 = store.record_path(2);
        let bytes = fs::read(&p2).unwrap();
        fs::write(&p2, &bytes[..10]).unwrap();
        fs::write(store.records_dir().join("x.rec.tmp"), b"junk").unwrap();
        fs::write(store.records_dir().join("README"), b"hello").unwrap();

        let report = store.fsck().unwrap();
        assert_eq!(report.scanned, 2);
        assert_eq!(report.ok, 1);
        assert!(!report.clean());
        assert_eq!(report.quarantined_keys(), vec![key_hex(2)]);
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, FsckIssue::StaleTemp { .. })));
        assert!(report
            .issues
            .iter()
            .any(|i| matches!(i, FsckIssue::ForeignFile { .. })));
        // Quarantined record is out of the way; a clean rescan follows.
        assert_eq!(store.get(2).unwrap(), Fetch::Miss);
        let report2 = store.fsck().unwrap();
        assert_eq!(report2.scanned, 1);
        assert!(report2
            .issues
            .iter()
            .all(|i| matches!(i, FsckIssue::ForeignFile { .. })));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn quarantine_slots_never_collide() {
        let root = tmp("slots");
        let store = ResultStore::open(&root, Box::new(StdFs::new())).unwrap();
        for round in 0..3 {
            store.put(9, b"fresh").unwrap();
            let path = store.record_path(9);
            fs::write(&path, b"garbage that is long enough to pass nothing").unwrap();
            match store.get(9).unwrap() {
                Fetch::Quarantined { quarantined_to, .. } => {
                    assert!(quarantined_to
                        .to_string_lossy()
                        .ends_with(&format!(".q{round}")));
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn bit_flip_injected_by_faultfs_is_caught_on_read() {
        let root = tmp("faultflip");
        let plan = IoFaultPlan {
            faults: vec![IoFault {
                op: IoOpClass::Write,
                index: 0,
                kind: IoFaultKind::BitFlip { byte: 30 },
            }],
        };
        let store = ResultStore::open(&root, Box::new(FaultFs::new(plan))).unwrap();
        store.put(5, b"silently corrupted after the ack").unwrap();
        assert!(matches!(store.get(5).unwrap(), Fetch::Quarantined { .. }));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn key_of_record_rejects_foreign_names() {
        assert_eq!(
            key_of_record(Path::new(&format!("/x/{}.rec", key_hex(77)))),
            Some(77)
        );
        assert_eq!(key_of_record(Path::new("/x/short.rec")), None);
        assert_eq!(key_of_record(Path::new("/x/README")), None);
    }
}
