//! The write-ahead sweep journal.
//!
//! One append-only text file (`journal.log` in the store root) records
//! the sweep's intent and progress: a `plan` line before any work on a
//! cell, a `done` line after its record is durably in the store, a
//! `fail` line when retries were exhausted. Each line carries its own
//! checksum:
//!
//! ```text
//! <fnv128-low-64-bits, 16 hex> <entry JSON>\n
//! ```
//!
//! so replay can tell a torn tail (the line being appended when the
//! process died) from good history: replay stops at the first corrupt
//! line and reports it, and everything before it is trusted. The journal
//! is an *optimization hint*, not the source of truth — resume always
//! re-verifies `done` claims against the checksummed records themselves,
//! so a lost tail only costs recomputation, never correctness.

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::fnv128;
use crate::io::StoreIo;

/// Cell planned: emitted before any work on the cell starts.
pub const OP_PLAN: &str = "plan";
/// Cell complete: its record is durable in the store.
pub const OP_DONE: &str = "done";
/// Cell failed permanently (retries/deadline exhausted).
pub const OP_FAIL: &str = "fail";

/// One journal line: an operation on a store key, with an opaque
/// JSON detail (the cell descriptor for `plan`, the typed failure
/// reason for `fail`, empty for `done`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// [`OP_PLAN`], [`OP_DONE`] or [`OP_FAIL`].
    pub op: String,
    /// The 32-hex store key the entry is about.
    pub key: String,
    /// Operation-specific JSON payload (or empty).
    pub detail: String,
}

impl JournalEntry {
    /// A `plan` entry carrying the cell descriptor JSON.
    #[must_use]
    pub fn plan(key: &str, detail: &str) -> JournalEntry {
        JournalEntry {
            op: OP_PLAN.to_string(),
            key: key.to_string(),
            detail: detail.to_string(),
        }
    }

    /// A `done` entry.
    #[must_use]
    pub fn done(key: &str) -> JournalEntry {
        JournalEntry {
            op: OP_DONE.to_string(),
            key: key.to_string(),
            detail: String::new(),
        }
    }

    /// A `fail` entry carrying the typed failure reason.
    #[must_use]
    pub fn fail(key: &str, reason: &str) -> JournalEntry {
        JournalEntry {
            op: OP_FAIL.to_string(),
            key: key.to_string(),
            detail: reason.to_string(),
        }
    }
}

/// The replayed state of a journal file.
#[derive(Debug, Clone, Default)]
pub struct JournalReplay {
    /// Every verified entry, in append order.
    pub entries: Vec<JournalEntry>,
    /// `true` when replay stopped at a torn or corrupt line — the state
    /// a crash mid-append leaves behind. Entries before the tear are
    /// intact (each line checks its own sum).
    pub torn_tail: bool,
}

impl JournalReplay {
    /// The planned cell descriptor for `key`, if a `plan` line was
    /// recorded (last write wins).
    #[must_use]
    pub fn plan_for(&self, key: &str) -> Option<&str> {
        self.entries
            .iter()
            .rev()
            .find(|e| e.op == OP_PLAN && e.key == key)
            .map(|e| e.detail.as_str())
    }

    /// Keys whose *latest* status line is `done`. Resume treats these as
    /// hints and still re-verifies the record bytes.
    #[must_use]
    pub fn done_keys(&self) -> Vec<String> {
        let mut last: BTreeMap<&str, &str> = BTreeMap::new();
        for e in &self.entries {
            if e.op == OP_DONE || e.op == OP_FAIL {
                last.insert(e.key.as_str(), e.op.as_str());
            }
        }
        last.iter()
            .filter(|(_, op)| **op == OP_DONE)
            .map(|(k, _)| (*k).to_string())
            .collect()
    }

    /// All planned cells in first-planned order, deduplicated by key.
    #[must_use]
    pub fn planned_cells(&self) -> Vec<(String, String)> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out = Vec::new();
        for e in &self.entries {
            if e.op == OP_PLAN && seen.insert(e.key.clone()) {
                out.push((e.key.clone(), e.detail.clone()));
            }
        }
        out
    }
}

/// Handle to a journal file; all I/O goes through the caller's
/// [`StoreIo`] backend so faults reach the journal too.
#[derive(Debug, Clone)]
pub struct Journal {
    path: PathBuf,
}

fn line_for(entry: &JournalEntry) -> Option<String> {
    let json = serde_json::to_string(entry).ok()?;
    let sum = (fnv128(json.as_bytes()) & u128::from(u64::MAX)) as u64;
    Some(format!("{sum:016x} {json}\n"))
}

fn parse_line(line: &str) -> Option<JournalEntry> {
    let (sum_hex, json) = line.split_once(' ')?;
    if sum_hex.len() != 16 {
        return None;
    }
    let declared = u64::from_str_radix(sum_hex, 16).ok()?;
    let computed = (fnv128(json.as_bytes()) & u128::from(u64::MAX)) as u64;
    if declared != computed {
        return None;
    }
    serde_json::from_str(json).ok()
}

impl Journal {
    /// A journal at `path` (typically `<store>/journal.log`).
    #[must_use]
    pub fn new(path: &Path) -> Journal {
        Journal {
            path: path.to_path_buf(),
        }
    }

    /// Where the journal lives.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one checksummed entry line.
    ///
    /// # Errors
    ///
    /// Propagates backend I/O errors (callers retry via the store's
    /// retry policy).
    pub fn append(&self, io: &dyn StoreIo, entry: &JournalEntry) -> io::Result<()> {
        let Some(line) = line_for(entry) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "journal entry not serializable",
            ));
        };
        io.append(&self.path, line.as_bytes())
    }

    /// Replays the journal, stopping at the first torn or corrupt line.
    /// A missing journal replays as empty — a fresh sweep.
    ///
    /// # Errors
    ///
    /// Propagates backend read errors other than not-found.
    pub fn replay(&self, io: &dyn StoreIo) -> io::Result<JournalReplay> {
        if !io.exists(&self.path) {
            return Ok(JournalReplay::default());
        }
        let bytes = io.read(&self.path)?;
        let text = String::from_utf8_lossy(&bytes);
        let mut replay = JournalReplay::default();
        for line in text.split('\n') {
            if line.is_empty() {
                continue;
            }
            match parse_line(line) {
                Some(entry) => replay.entries.push(entry),
                None => {
                    replay.torn_tail = true;
                    break;
                }
            }
        }
        Ok(replay)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::io::StdFs;
    use std::fs;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("stash_journal_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("journal.log")
    }

    #[test]
    fn append_then_replay_round_trips() {
        let path = tmp("rt");
        let io = StdFs::new();
        let j = Journal::new(&path);
        j.append(&io, &JournalEntry::plan("00ab", "{\"m\":1}"))
            .unwrap();
        j.append(&io, &JournalEntry::done("00ab")).unwrap();
        j.append(&io, &JournalEntry::fail("00cd", "deadline"))
            .unwrap();
        let replay = j.replay(&io).unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.entries.len(), 3);
        assert_eq!(replay.plan_for("00ab"), Some("{\"m\":1}"));
        assert_eq!(replay.done_keys(), vec!["00ab".to_string()]);
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn missing_journal_replays_empty() {
        let path = tmp("missing");
        let replay = Journal::new(&path).replay(&StdFs::new()).unwrap();
        assert!(replay.entries.is_empty());
        assert!(!replay.torn_tail);
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_tail_is_detected_and_prefix_survives() {
        let path = tmp("torn");
        let io = StdFs::new();
        let j = Journal::new(&path);
        j.append(&io, &JournalEntry::plan("0001", "{}")).unwrap();
        j.append(&io, &JournalEntry::done("0001")).unwrap();
        // Simulate a crash mid-append: chop the file mid-line.
        let mut bytes = fs::read(&path).unwrap();
        let full = bytes.len();
        j.append(&io, &JournalEntry::plan("0002", "{}")).unwrap();
        bytes = fs::read(&path).unwrap();
        bytes.truncate(full + 9);
        fs::write(&path, &bytes).unwrap();
        let replay = j.replay(&io).unwrap();
        assert!(replay.torn_tail);
        assert_eq!(replay.entries.len(), 2);
        assert_eq!(replay.done_keys(), vec!["0001".to_string()]);
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn fail_after_done_wins_and_vice_versa() {
        let path = tmp("lastwins");
        let io = StdFs::new();
        let j = Journal::new(&path);
        j.append(&io, &JournalEntry::done("aaaa")).unwrap();
        j.append(&io, &JournalEntry::fail("aaaa", "io")).unwrap();
        j.append(&io, &JournalEntry::fail("bbbb", "io")).unwrap();
        j.append(&io, &JournalEntry::done("bbbb")).unwrap();
        let replay = j.replay(&io).unwrap();
        assert_eq!(replay.done_keys(), vec!["bbbb".to_string()]);
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn planned_cells_dedup_in_order() {
        let path = tmp("plans");
        let io = StdFs::new();
        let j = Journal::new(&path);
        j.append(&io, &JournalEntry::plan("b", "B")).unwrap();
        j.append(&io, &JournalEntry::plan("a", "A")).unwrap();
        j.append(&io, &JournalEntry::plan("b", "B2")).unwrap();
        let replay = j.replay(&io).unwrap();
        assert_eq!(
            replay.planned_cells(),
            vec![("b".into(), "B".into()), ("a".into(), "A".into())]
        );
        let _ = fs::remove_dir_all(path.parent().unwrap());
    }
}
