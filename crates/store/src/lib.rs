//! # stash-store — durable, crash-resumable measurement storage
//!
//! The paper's pay-once characterization economics (§IV) only hold if
//! measurement results survive the process that produced them. This crate
//! is the durability layer under the sweep runner: a content-addressed
//! on-disk result store keyed by the profiler's FNV-128 canonical config
//! keys, hardened against the ways cloud machines actually fail —
//! SIGKILL mid-write, full disks, torn and bit-flipped records.
//!
//! * [`io`] — the [`io::StoreIo`] trait every byte of store I/O goes
//!   through, with a production [`io::StdFs`] backend
//!   (write-temp-fsync-rename atomicity) and a seeded [`io::FaultFs`]
//!   backend that deterministically injects torn writes, short reads,
//!   transient `EIO`, `ENOSPC`, bit flips and mid-write stalls at planned
//!   operation indices — so every recovery path is exercised by tests;
//! * [`frame`] — the length+checksum record frame that makes torn,
//!   truncated or corrupted records *detected* instead of silently read;
//! * [`store`] — [`store::ResultStore`]: atomic record writes, verified
//!   reads, and an fsck-style scan that quarantines bad records instead
//!   of aborting;
//! * [`journal`] — the checksummed write-ahead sweep journal that makes
//!   `stash sweep --resume` replay completed work bit-identically;
//! * [`retry`] — capped exponential backoff with per-job deadlines and
//!   typed failure reasons for graceful degradation.
//!
//! The design mirrors the PR 5 `FaultPlan` chaos layer: every fault is
//! planned, seeded and deterministic, so the same plan always fails (and
//! recovers) the same way.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod frame;
pub mod io;
pub mod journal;
pub mod retry;
pub mod store;

/// FNV-1a (128-bit) over raw bytes — the same derivation the profiler's
/// `MeasurementCache` uses for canonical config keys, exposed here so the
/// store, the frame checksum and the sweep layer share one hash.
#[must_use]
pub fn fnv128(bytes: &[u8]) -> u128 {
    const OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
    const PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u128::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Renders a store key as the fixed-width lowercase hex used for record
/// filenames and journal entries.
#[must_use]
pub fn key_hex(key: u128) -> String {
    format!("{key:032x}")
}

/// Parses a [`key_hex`]-formatted key back to its value.
#[must_use]
pub fn parse_key_hex(s: &str) -> Option<u128> {
    if s.len() != 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    u128::from_str_radix(s, 16).ok()
}

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::frame::{decode, encode, FrameError};
    pub use crate::io::{FaultFs, IoFault, IoFaultKind, IoFaultPlan, IoOpClass, StdFs, StoreIo};
    pub use crate::journal::{Journal, JournalEntry, JournalReplay};
    pub use crate::retry::{with_retry, FailReason, RetryPolicy};
    pub use crate::store::{Fetch, FsckIssue, FsckReport, ResultStore, StoreError};
    pub use crate::{fnv128, key_hex, parse_key_hex};
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn fnv128_matches_reference_vectors() {
        // Same offset/prime as MeasurementCache::config_key: empty input
        // hashes to the offset basis.
        assert_eq!(fnv128(b""), 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d);
        assert_ne!(fnv128(b"a"), fnv128(b"b"));
    }

    #[test]
    fn key_hex_round_trips() {
        for k in [0u128, 1, u128::MAX, 0xdead_beef] {
            assert_eq!(parse_key_hex(&key_hex(k)), Some(k));
        }
        assert_eq!(parse_key_hex("zz"), None);
        assert_eq!(parse_key_hex(&"f".repeat(33)), None);
    }
}
