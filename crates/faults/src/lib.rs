//! Deterministic fault injection for the training-engine simulator.
//!
//! Public clouds are not the steady substrate the healthy-VM stall
//! characterization assumes: spot instances are preempted, individual GPUs
//! transiently straggle, network links flap, and shared storage volumes
//! brown out. This crate describes those disturbances as *data* — a
//! [`FaultPlan`]: a schedule of [`FaultEvent`]s plus a [`RecoveryPolicy`]
//! — so the engine can inject them through its ordinary event queue and
//! replay a faulted run bit-for-bit from a seed.
//!
//! Design rules:
//!
//! * **Plans are inert.** Nothing in this crate mutates a simulation; the
//!   plan is a value the engine interprets. An empty plan therefore
//!   guarantees (and the workspace differential tests enforce) behavior
//!   bit-identical to a fault-free run.
//! * **Determinism over realism.** Seeded generation uses the simulator's
//!   own [`DetRng`](stash_simkit::rng::DetRng); the same seed and cluster
//!   shape always produce the same plan, and fault *times* are quantized
//!   to whole microseconds so serialized plans survive a JSON round-trip
//!   exactly.
//! * **Validated up front.** [`FaultPlan::validate`] rejects hostile
//!   values (NaN factors, out-of-range ranks, zero-length windows) with a
//!   typed [`FaultError`] before the engine ever sees them.

#![warn(missing_docs)]

pub mod error;
pub mod plan;

pub use error::FaultError;
pub use plan::{FaultEvent, FaultKind, FaultPlan, RecoveryPolicy};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::error::FaultError;
    pub use crate::plan::{FaultEvent, FaultKind, FaultPlan, RecoveryPolicy};
}
