//! Typed errors for fault-plan construction and validation.

use std::error::Error;
use std::fmt;

/// Why a [`FaultPlan`](crate::plan::FaultPlan) was rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultError {
    /// A fault referenced a rank outside the cluster's world.
    RankOutOfRange {
        /// Offending rank.
        rank: usize,
        /// World size of the target cluster.
        world: usize,
    },
    /// A fault referenced a node outside the cluster.
    NodeOutOfRange {
        /// Offending node index.
        node: usize,
        /// Node count of the target cluster.
        nodes: usize,
    },
    /// A numeric knob was NaN, infinite, or outside its legal range.
    InvalidValue {
        /// Which knob was bad.
        what: &'static str,
        /// The hostile value, rendered for the message.
        value: f64,
    },
    /// A fault window had zero duration.
    EmptyWindow {
        /// Which fault kind carried the empty window.
        what: &'static str,
    },
    /// The plan's JSON encoding could not be parsed.
    Parse(String),
    /// The plan is structurally impossible to execute (e.g. every node
    /// preempted with no survivors and no restart).
    Unrecoverable(String),
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::RankOutOfRange { rank, world } => {
                write!(
                    f,
                    "fault targets rank {rank} but the world has {world} ranks"
                )
            }
            FaultError::NodeOutOfRange { node, nodes } => {
                write!(
                    f,
                    "fault targets node {node} but the cluster has {nodes} nodes"
                )
            }
            FaultError::InvalidValue { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
            FaultError::EmptyWindow { what } => {
                write!(f, "{what} window has zero duration")
            }
            FaultError::Parse(msg) => write!(f, "invalid fault plan JSON: {msg}"),
            FaultError::Unrecoverable(msg) => write!(f, "unrecoverable fault plan: {msg}"),
        }
    }
}

impl Error for FaultError {}
