//! Fault plans: deterministic schedules of cloud-substrate disturbances.

use serde::{Deserialize, Serialize};
use stash_simkit::rng::DetRng;
use stash_simkit::time::{SimDuration, SimTime};

use crate::error::FaultError;

/// One kind of disturbance, with its parameters.
///
/// All windows are half-open `[at, at + duration)` on the simulation
/// clock; node and rank indices refer to the cluster the plan is applied
/// to (validated by [`FaultPlan::validate`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A node is revoked (spot preemption). Training pauses at the next
    /// iteration boundary; with `restart_after` the node rejoins after
    /// that delay and the iterations since the last checkpoint are
    /// replayed, otherwise the survivors re-form an elastic cluster and
    /// continue without the node.
    Preemption {
        /// Node that is revoked.
        node: usize,
        /// Replacement-capacity delay before the node rejoins; `None`
        /// means the node never comes back (elastic re-formation).
        restart_after: Option<SimDuration>,
    },
    /// One GPU runs slow for a window (thermal throttling, a noisy
    /// neighbor on the host): its compute intervals are stretched by
    /// `slowdown` while the window is open.
    StragglerWindow {
        /// Affected global rank.
        rank: usize,
        /// Window length.
        duration: SimDuration,
        /// Compute-time multiplier, `>= 1`.
        slowdown: f64,
    },
    /// A node's NIC degrades for a window (link flap / congested fabric):
    /// both directions keep only `factor` of their nominal capacity.
    LinkDegradation {
        /// Node whose NIC degrades.
        node: usize,
        /// Window length.
        duration: SimDuration,
        /// Remaining fraction of nominal bandwidth, in `(0, 1]`.
        factor: f64,
    },
    /// A node's storage volume browns out for a window: the SSD link
    /// keeps only `factor` of its nominal throughput and in-window
    /// fetches are retried once by the loader.
    DiskBrownout {
        /// Node whose volume browns out.
        node: usize,
        /// Window length.
        duration: SimDuration,
        /// Remaining fraction of nominal throughput, in `(0, 1]`.
        factor: f64,
    },
}

impl FaultKind {
    /// Short stable label for reports.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Preemption { .. } => "preemption",
            FaultKind::StragglerWindow { .. } => "straggler_window",
            FaultKind::LinkDegradation { .. } => "link_degradation",
            FaultKind::DiskBrownout { .. } => "disk_brownout",
        }
    }
}

/// A fault and the instant it fires.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// When the fault fires on the simulation clock.
    pub at: SimTime,
    /// What happens.
    pub kind: FaultKind,
}

/// How the engine reacts to faults.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// A checkpoint is taken every `checkpoint_every` iterations; on a
    /// preemption-with-restart the iterations since the last checkpoint
    /// are lost and replayed (billed as recovery stall).
    pub checkpoint_every: u64,
    /// Bucket-skew threshold for straggler detection on all-reduce: if
    /// the gap between the first and the last rank reaching a gradient
    /// bucket exceeds this, a detection is recorded.
    pub straggler_timeout: SimDuration,
    /// After each detection the timeout is multiplied by this backoff so
    /// a persistent straggler is flagged a bounded number of times rather
    /// than once per bucket.
    pub straggler_backoff: f64,
    /// Rendezvous + communicator-rebuild delay paid by the survivors when
    /// an elastic re-formation shrinks the cluster (a permanently
    /// preempted node), billed as recovery stall.
    pub reform_delay: SimDuration,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            checkpoint_every: 4,
            straggler_timeout: SimDuration::from_millis(20),
            straggler_backoff: 2.0,
            reform_delay: SimDuration::from_millis(500),
        }
    }
}

/// A deterministic schedule of faults plus the recovery policy.
///
/// # Examples
///
/// ```
/// use stash_faults::prelude::*;
/// use stash_simkit::time::SimDuration;
///
/// let plan = FaultPlan::seeded(7, 8, 2, SimDuration::from_secs(60));
/// assert!(!plan.is_empty());
/// assert_eq!(plan, FaultPlan::seeded(7, 8, 2, SimDuration::from_secs(60)));
/// plan.validate(8, 2).expect("seeded plans are always valid");
/// let json = plan.to_json();
/// assert_eq!(FaultPlan::from_json(&json).unwrap(), plan);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Scheduled faults, sorted by firing time.
    pub events: Vec<FaultEvent>,
    /// Recovery knobs.
    pub recovery: RecoveryPolicy,
}

/// Quantize to whole microseconds so JSON round-trips are exact and the
/// engine never sees sub-event-resolution jitter from float math.
fn quantize(d: SimDuration) -> SimDuration {
    SimDuration::from_micros(d.as_nanos() / 1_000)
}

impl FaultPlan {
    /// A plan with no faults: the engine must behave bit-identically to a
    /// fault-free run (enforced by the workspace differential tests).
    #[must_use]
    pub fn empty() -> FaultPlan {
        FaultPlan::default()
    }

    /// `true` when no faults are scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a representative plan from a seed: one straggler window,
    /// one NIC degradation, one disk brownout, and one preemption (with a
    /// seed-chosen restart-or-elastic outcome), all placed inside
    /// `horizon`. The same `(seed, world, nodes, horizon)` always yields
    /// the same plan; multi-node clusters never preempt node 0 so the
    /// reporting rank survives elastic re-formation.
    #[must_use]
    pub fn seeded(seed: u64, world: usize, nodes: usize, horizon: SimDuration) -> FaultPlan {
        let world = world.max(1);
        let nodes = nodes.max(1);
        let mut rng = DetRng::new(seed);
        let at = |rng: &mut DetRng, lo: f64, hi: f64| {
            SimTime::ZERO + quantize(horizon.mul_f64(rng.uniform(lo, hi)))
        };
        let span = |rng: &mut DetRng, lo: f64, hi: f64| {
            quantize(horizon.mul_f64(rng.uniform(lo, hi))).max(SimDuration::from_micros(1))
        };
        let mut events = vec![
            FaultEvent {
                at: at(&mut rng, 0.10, 0.30),
                kind: FaultKind::StragglerWindow {
                    rank: rng.next_below(world as u64) as usize,
                    duration: span(&mut rng, 0.10, 0.20),
                    slowdown: round3(rng.uniform(1.3, 2.5)),
                },
            },
            FaultEvent {
                at: at(&mut rng, 0.30, 0.45),
                kind: FaultKind::LinkDegradation {
                    node: rng.next_below(nodes as u64) as usize,
                    duration: span(&mut rng, 0.05, 0.15),
                    factor: round3(rng.uniform(0.2, 0.6)),
                },
            },
            FaultEvent {
                at: at(&mut rng, 0.45, 0.60),
                kind: FaultKind::DiskBrownout {
                    node: rng.next_below(nodes as u64) as usize,
                    duration: span(&mut rng, 0.05, 0.15),
                    factor: round3(rng.uniform(0.2, 0.5)),
                },
            },
        ];
        let restart = nodes == 1 || rng.next_u64() & 1 == 0;
        let node = if nodes == 1 {
            0
        } else {
            1 + rng.next_below(nodes as u64 - 1) as usize
        };
        events.push(FaultEvent {
            at: at(&mut rng, 0.60, 0.75),
            kind: FaultKind::Preemption {
                node,
                restart_after: restart.then(|| span(&mut rng, 0.02, 0.05)),
            },
        });
        events.sort_by_key(|e| e.at);
        FaultPlan {
            events,
            recovery: RecoveryPolicy::default(),
        }
    }

    /// Checks every event against the target cluster shape and rejects
    /// hostile values with a typed error.
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultError`] found: out-of-range rank/node,
    /// non-finite or out-of-range multipliers, zero-length windows, a
    /// node preempted twice, all nodes permanently preempted, or a
    /// malformed recovery policy.
    pub fn validate(&self, world: usize, nodes: usize) -> Result<(), FaultError> {
        let policy = &self.recovery;
        if policy.checkpoint_every == 0 {
            return Err(FaultError::InvalidValue {
                what: "checkpoint_every",
                value: 0.0,
            });
        }
        if !policy.straggler_backoff.is_finite() || policy.straggler_backoff < 1.0 {
            return Err(FaultError::InvalidValue {
                what: "straggler_backoff",
                value: policy.straggler_backoff,
            });
        }
        let mut preempted = vec![false; nodes];
        let mut permanent = 0usize;
        for ev in &self.events {
            match &ev.kind {
                FaultKind::Preemption {
                    node,
                    restart_after,
                } => {
                    if *node >= nodes {
                        return Err(FaultError::NodeOutOfRange { node: *node, nodes });
                    }
                    if preempted[*node] {
                        return Err(FaultError::Unrecoverable(format!(
                            "node {node} is preempted more than once"
                        )));
                    }
                    preempted[*node] = true;
                    if restart_after.is_none() {
                        permanent += 1;
                    }
                }
                FaultKind::StragglerWindow {
                    rank,
                    duration,
                    slowdown,
                } => {
                    if *rank >= world {
                        return Err(FaultError::RankOutOfRange { rank: *rank, world });
                    }
                    if duration.is_zero() {
                        return Err(FaultError::EmptyWindow { what: "straggler" });
                    }
                    if !slowdown.is_finite() || *slowdown < 1.0 {
                        return Err(FaultError::InvalidValue {
                            what: "straggler slowdown",
                            value: *slowdown,
                        });
                    }
                }
                FaultKind::LinkDegradation {
                    node,
                    duration,
                    factor,
                } => {
                    if *node >= nodes {
                        return Err(FaultError::NodeOutOfRange { node: *node, nodes });
                    }
                    if duration.is_zero() {
                        return Err(FaultError::EmptyWindow {
                            what: "link degradation",
                        });
                    }
                    check_factor("link degradation factor", *factor)?;
                }
                FaultKind::DiskBrownout {
                    node,
                    duration,
                    factor,
                } => {
                    if *node >= nodes {
                        return Err(FaultError::NodeOutOfRange { node: *node, nodes });
                    }
                    if duration.is_zero() {
                        return Err(FaultError::EmptyWindow {
                            what: "disk brownout",
                        });
                    }
                    check_factor("disk brownout factor", *factor)?;
                }
            }
        }
        if permanent >= nodes && permanent > 0 {
            return Err(FaultError::Unrecoverable(
                "every node is permanently preempted; no survivors remain".to_string(),
            ));
        }
        Ok(())
    }

    /// Serializes the plan as pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// Parses a plan from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`FaultError::Parse`] on truncated or malformed input.
    pub fn from_json(s: &str) -> Result<FaultPlan, FaultError> {
        serde_json::from_str(s).map_err(|e| FaultError::Parse(e.to_string()))
    }
}

fn check_factor(what: &'static str, factor: f64) -> Result<(), FaultError> {
    if !factor.is_finite() || factor <= 0.0 || factor > 1.0 {
        return Err(FaultError::InvalidValue {
            what,
            value: factor,
        });
    }
    Ok(())
}

/// Round a generated multiplier to 3 decimals so the JSON encoding of a
/// seeded plan is short and round-trips exactly.
fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_valid() {
        let plan = FaultPlan::empty();
        assert!(plan.is_empty());
        plan.validate(8, 2).expect("empty plan is valid");
    }

    #[test]
    fn seeded_plans_are_deterministic() {
        let horizon = SimDuration::from_secs(100);
        let a = FaultPlan::seeded(42, 16, 2, horizon);
        let b = FaultPlan::seeded(42, 16, 2, horizon);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(43, 16, 2, horizon);
        assert_ne!(a, c, "different seeds should produce different plans");
    }

    #[test]
    fn seeded_plans_validate_and_sort() {
        for seed in 0..32 {
            for (world, nodes) in [(1, 1), (8, 1), (16, 2), (32, 4)] {
                let plan = FaultPlan::seeded(seed, world, nodes, SimDuration::from_secs(30));
                plan.validate(world, nodes).expect("seeded plan valid");
                assert!(plan.events.windows(2).all(|w| w[0].at <= w[1].at));
            }
        }
    }

    #[test]
    fn seeded_multi_node_plans_never_preempt_node_zero() {
        for seed in 0..64 {
            let plan = FaultPlan::seeded(seed, 16, 4, SimDuration::from_secs(30));
            for ev in &plan.events {
                if let FaultKind::Preemption { node, .. } = ev.kind {
                    assert_ne!(node, 0, "seed {seed} preempted the reporting node");
                }
            }
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let plan = FaultPlan::seeded(7, 8, 2, SimDuration::from_secs(60));
        let back = FaultPlan::from_json(&plan.to_json()).expect("round trip");
        assert_eq!(back, plan);
    }

    #[test]
    fn truncated_json_is_a_typed_error() {
        let json = FaultPlan::seeded(7, 8, 2, SimDuration::from_secs(60)).to_json();
        let cut = &json[..json.len() / 2];
        match FaultPlan::from_json(cut) {
            Err(FaultError::Parse(_)) => {}
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn hostile_values_are_rejected() {
        let mk = |kind| FaultPlan {
            events: vec![FaultEvent {
                at: SimTime::ZERO,
                kind,
            }],
            recovery: RecoveryPolicy::default(),
        };
        // NaN slowdown.
        assert!(mk(FaultKind::StragglerWindow {
            rank: 0,
            duration: SimDuration::from_secs(1),
            slowdown: f64::NAN,
        })
        .validate(8, 2)
        .is_err());
        // Slowdown below 1 would speed the GPU up.
        assert!(mk(FaultKind::StragglerWindow {
            rank: 0,
            duration: SimDuration::from_secs(1),
            slowdown: 0.5,
        })
        .validate(8, 2)
        .is_err());
        // Zero-length window.
        assert!(mk(FaultKind::LinkDegradation {
            node: 0,
            duration: SimDuration::ZERO,
            factor: 0.5,
        })
        .validate(8, 2)
        .is_err());
        // Factor outside (0, 1].
        assert!(mk(FaultKind::DiskBrownout {
            node: 0,
            duration: SimDuration::from_secs(1),
            factor: 0.0,
        })
        .validate(8, 2)
        .is_err());
        assert!(mk(FaultKind::DiskBrownout {
            node: 0,
            duration: SimDuration::from_secs(1),
            factor: 1.5,
        })
        .validate(8, 2)
        .is_err());
        // Out-of-range targets.
        assert!(matches!(
            mk(FaultKind::StragglerWindow {
                rank: 99,
                duration: SimDuration::from_secs(1),
                slowdown: 1.5,
            })
            .validate(8, 2),
            Err(FaultError::RankOutOfRange { rank: 99, world: 8 })
        ));
        assert!(matches!(
            mk(FaultKind::Preemption {
                node: 9,
                restart_after: None,
            })
            .validate(8, 2),
            Err(FaultError::NodeOutOfRange { node: 9, nodes: 2 })
        ));
    }

    #[test]
    fn preempting_every_node_permanently_is_unrecoverable() {
        let plan = FaultPlan {
            events: vec![
                FaultEvent {
                    at: SimTime::from_nanos(1),
                    kind: FaultKind::Preemption {
                        node: 0,
                        restart_after: None,
                    },
                },
                FaultEvent {
                    at: SimTime::from_nanos(2),
                    kind: FaultKind::Preemption {
                        node: 1,
                        restart_after: None,
                    },
                },
            ],
            recovery: RecoveryPolicy::default(),
        };
        assert!(matches!(
            plan.validate(16, 2),
            Err(FaultError::Unrecoverable(_))
        ));
    }

    #[test]
    fn bad_recovery_policy_is_rejected() {
        let mut plan = FaultPlan::empty();
        plan.recovery.checkpoint_every = 0;
        assert!(plan.validate(8, 2).is_err());
        let mut plan = FaultPlan::empty();
        plan.recovery.straggler_backoff = 0.5;
        assert!(plan.validate(8, 2).is_err());
    }
}
