//! # stash-dnn — DNN model and dataset descriptions
//!
//! Reduces deep networks to the quantities that drive distributed-training
//! stalls: per-layer parameter counts (gradient traffic), FLOPs and memory
//! traffic (compute time), activation footprints (GPU memory), and dataset
//! size/cost metadata (input pipeline). Includes:
//!
//! * [`layer`] / [`model`] — the core cost-model types;
//! * [`zoo`] — the paper's Table II models with exact published gradient
//!   sizes;
//! * [`synth`] — parameterized ResNet/VGG generators for the §VI
//!   micro-characterization (depth sweeps, no-BN / no-residual ablations);
//! * [`dataset`] — ImageNet-1k and SQuAD 2.0 specs.
//!
//! # Examples
//!
//! ```
//! use stash_dnn::prelude::*;
//!
//! let m = zoo::resnet18();
//! assert_eq!(m.param_count(), 11_180_000); // Table II gradient size
//! assert!(m.trainable_layer_count() > 40);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dataset;
pub mod layer;
pub mod model;
pub mod synth;
pub mod zoo;

/// Convenient glob-import of the most used items.
pub mod prelude {
    pub use crate::dataset::DatasetSpec;
    pub use crate::layer::{Layer, LayerKind};
    pub use crate::model::Model;
    pub use crate::synth::{self, resnet, resnet_with, vgg, ResNetOptions};
    pub use crate::zoo::{self, ModelClass};
}
