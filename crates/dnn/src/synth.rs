//! Parameterized ResNet/VGG generators (paper §VI micro-characterization).
//!
//! The micro study varies the **number of layers** while watching
//! communication stalls, and ablates architecture features (batch
//! normalization, residual shortcuts). These generators build
//! torchvision-faithful layer structures for any standard depth, with
//! [`ResNetOptions`] toggling the ablated features.

use serde::{Deserialize, Serialize};

use crate::layer::Layer;
use crate::model::Model;

/// Bytes of one decoded 3x224x224 fp32 image.
#[must_use]
pub fn imagenet_input_bytes() -> f64 {
    3.0 * 224.0 * 224.0 * 4.0
}

/// Feature toggles for the ResNet generator (§VI-A3 ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResNetOptions {
    /// Emit batch-normalization layers (removing them shrinks the layer
    /// count and thus the latency-bound interconnect stall).
    pub batch_norm: bool,
    /// Emit residual shortcut additions (removing them barely changes
    /// communication: they carry no parameters).
    pub residual: bool,
}

impl Default for ResNetOptions {
    fn default() -> Self {
        ResNetOptions {
            batch_norm: true,
            residual: true,
        }
    }
}

/// Builds a VGG of the given standard depth (11, 13, 16 or 19).
///
/// # Panics
///
/// Panics on a non-standard depth.
#[must_use]
pub fn vgg(depth: usize) -> Model {
    let cfg: &[&[u64]] = match depth {
        11 => &[&[64], &[128], &[256, 256], &[512, 512], &[512, 512]],
        13 => &[
            &[64, 64],
            &[128, 128],
            &[256, 256],
            &[512, 512],
            &[512, 512],
        ],
        16 => &[
            &[64, 64],
            &[128, 128],
            &[256, 256, 256],
            &[512, 512, 512],
            &[512, 512, 512],
        ],
        19 => &[
            &[64, 64],
            &[128, 128],
            &[256, 256, 256, 256],
            &[512, 512, 512, 512],
            &[512, 512, 512, 512],
        ],
        other => panic!("unsupported VGG depth {other} (use 11/13/16/19)"),
    };
    let mut layers = Vec::new();
    let mut c_in = 3_u64;
    let mut hw = 224_u64;
    for (s, stage) in cfg.iter().enumerate() {
        for (i, &c_out) in stage.iter().enumerate() {
            layers.push(Layer::conv2d(
                format!("conv{}_{}", s + 1, i + 1),
                c_in,
                hw,
                hw,
                c_out,
                3,
                1,
            ));
            layers.push(Layer::activation(
                format!("relu{}_{}", s + 1, i + 1),
                c_out * hw * hw,
            ));
            c_in = c_out;
        }
        layers.push(Layer::pool(format!("pool{}", s + 1), c_in, hw, hw, 2));
        hw /= 2;
    }
    // Classifier: 512*7*7 -> 4096 -> 4096 -> 1000.
    layers.push(Layer::linear("fc6", c_in * hw * hw, 4096));
    layers.push(Layer::activation("relu6", 4096));
    layers.push(Layer::linear("fc7", 4096, 4096));
    layers.push(Layer::activation("relu7", 4096));
    layers.push(Layer::linear("fc8", 4096, 1000));
    Model::new(format!("VGG{depth}"), layers, imagenet_input_bytes())
}

/// Builds a ResNet of the given standard depth (18, 34, 50, 101 or 152)
/// with default options.
///
/// # Panics
///
/// Panics on a non-standard depth.
#[must_use]
pub fn resnet(depth: usize) -> Model {
    resnet_with(depth, ResNetOptions::default())
}

/// Builds a ResNet with explicit [`ResNetOptions`].
///
/// # Panics
///
/// Panics on a non-standard depth.
#[must_use]
pub fn resnet_with(depth: usize, opts: ResNetOptions) -> Model {
    let (bottleneck, blocks): (bool, [usize; 4]) = match depth {
        18 => (false, [2, 2, 2, 2]),
        34 => (false, [3, 4, 6, 3]),
        50 => (true, [3, 4, 6, 3]),
        101 => (true, [3, 4, 23, 3]),
        152 => (true, [3, 8, 36, 3]),
        other => panic!("unsupported ResNet depth {other} (use 18/34/50/101/152)"),
    };
    let mut layers = Vec::new();
    // Stem: 7x7/2 conv + pool -> 56x56.
    layers.push(Layer::conv2d("conv1", 3, 224, 224, 64, 7, 2));
    if opts.batch_norm {
        layers.push(Layer::batch_norm("bn1", 64, 112, 112));
    }
    layers.push(Layer::activation("relu1", 64 * 112 * 112));
    layers.push(Layer::pool("maxpool", 64, 112, 112, 2));

    let stage_channels = [64_u64, 128, 256, 512];
    let stage_hw = [56_u64, 28, 14, 7];
    let mut c_in = 64_u64;
    for (s, (&base_c, &n_blocks)) in stage_channels.iter().zip(blocks.iter()).enumerate() {
        let hw = stage_hw[s];
        for b in 0..n_blocks {
            let stride = if s > 0 && b == 0 { 2 } else { 1 };
            let in_hw = hw * stride;
            let prefix = format!("layer{}.{b}", s + 1);
            let c_out = if bottleneck { base_c * 4 } else { base_c };
            if bottleneck {
                layers.push(Layer::conv2d(
                    format!("{prefix}.conv1"),
                    c_in,
                    in_hw,
                    in_hw,
                    base_c,
                    1,
                    1,
                ));
                if opts.batch_norm {
                    layers.push(Layer::batch_norm(
                        format!("{prefix}.bn1"),
                        base_c,
                        in_hw,
                        in_hw,
                    ));
                }
                layers.push(Layer::activation(
                    format!("{prefix}.relu1"),
                    base_c * in_hw * in_hw,
                ));
                layers.push(Layer::conv2d(
                    format!("{prefix}.conv2"),
                    base_c,
                    in_hw,
                    in_hw,
                    base_c,
                    3,
                    stride,
                ));
                if opts.batch_norm {
                    layers.push(Layer::batch_norm(format!("{prefix}.bn2"), base_c, hw, hw));
                }
                layers.push(Layer::activation(
                    format!("{prefix}.relu2"),
                    base_c * hw * hw,
                ));
                layers.push(Layer::conv2d(
                    format!("{prefix}.conv3"),
                    base_c,
                    hw,
                    hw,
                    c_out,
                    1,
                    1,
                ));
                if opts.batch_norm {
                    layers.push(Layer::batch_norm(format!("{prefix}.bn3"), c_out, hw, hw));
                }
            } else {
                layers.push(Layer::conv2d(
                    format!("{prefix}.conv1"),
                    c_in,
                    in_hw,
                    in_hw,
                    base_c,
                    3,
                    stride,
                ));
                if opts.batch_norm {
                    layers.push(Layer::batch_norm(format!("{prefix}.bn1"), base_c, hw, hw));
                }
                layers.push(Layer::activation(
                    format!("{prefix}.relu1"),
                    base_c * hw * hw,
                ));
                layers.push(Layer::conv2d(
                    format!("{prefix}.conv2"),
                    base_c,
                    hw,
                    hw,
                    base_c,
                    3,
                    1,
                ));
                if opts.batch_norm {
                    layers.push(Layer::batch_norm(format!("{prefix}.bn2"), base_c, hw, hw));
                }
            }
            if b == 0 && (stride != 1 || c_in != c_out) {
                // Projection shortcut.
                layers.push(Layer::conv2d(
                    format!("{prefix}.downsample"),
                    c_in,
                    in_hw,
                    in_hw,
                    c_out,
                    1,
                    stride,
                ));
                if opts.batch_norm {
                    layers.push(Layer::batch_norm(format!("{prefix}.bn_ds"), c_out, hw, hw));
                }
            }
            if opts.residual {
                layers.push(Layer::residual(format!("{prefix}.add"), c_out * hw * hw));
            }
            layers.push(Layer::activation(
                format!("{prefix}.relu_out"),
                c_out * hw * hw,
            ));
            c_in = c_out;
        }
    }
    layers.push(Layer::pool("avgpool", c_in, 7, 7, 7));
    layers.push(Layer::linear("fc", c_in, 1000));
    let mut name = format!("ResNet{depth}");
    if !opts.batch_norm {
        name.push_str("-noBN");
    }
    if !opts.residual {
        name.push_str("-noSkip");
    }
    Model::new(name, layers, imagenet_input_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::LayerKind;

    #[test]
    fn vgg_param_counts_match_torchvision() {
        // torchvision: VGG11 = 132,863,336; VGG16 = 138,357,544;
        // VGG19 = 143,667,240 (all within rounding of our builder, which
        // omits conv biases as in BN-less VGG they exist — accept 2%).
        let close = |m: &Model, expect: f64| {
            let got = m.param_count() as f64;
            assert!(
                (got - expect).abs() / expect < 0.02,
                "{}: got {got}, expected ~{expect}",
                m.name
            );
        };
        close(&vgg(11), 132_863_336.0);
        close(&vgg(13), 133_047_848.0);
        close(&vgg(16), 138_357_544.0);
        close(&vgg(19), 143_667_240.0);
    }

    #[test]
    fn resnet_param_counts_match_torchvision() {
        let close = |m: &Model, expect: f64| {
            let got = m.param_count() as f64;
            assert!(
                (got - expect).abs() / expect < 0.03,
                "{}: got {got}, expected ~{expect}",
                m.name
            );
        };
        close(&resnet(18), 11_689_512.0);
        close(&resnet(34), 21_797_672.0);
        close(&resnet(50), 25_557_032.0);
        close(&resnet(101), 44_549_160.0);
        close(&resnet(152), 60_192_808.0);
    }

    #[test]
    fn deeper_resnets_have_more_trainable_layers() {
        let depths = [18, 34, 50, 101, 152];
        let counts: Vec<usize> = depths
            .iter()
            .map(|d| resnet(*d).trainable_layer_count())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] < w[1]), "{counts:?}");
    }

    #[test]
    fn resnet_has_many_more_layers_than_vgg_but_fewer_params() {
        // The §VI observation: ResNet152 has ~4.7x the layers of VGG16 with
        // ~0.43x the parameters.
        let r = resnet(152);
        let v = vgg(16);
        assert!(r.trainable_layer_count() > 3 * v.trainable_layer_count());
        assert!(r.param_count() < v.param_count() / 2);
    }

    #[test]
    fn no_bn_removes_all_batchnorm_and_shrinks_layer_count() {
        let with = resnet(50);
        let without = resnet_with(
            50,
            ResNetOptions {
                batch_norm: false,
                residual: true,
            },
        );
        assert_eq!(without.count_kind(LayerKind::BatchNorm), 0);
        assert!(with.count_kind(LayerKind::BatchNorm) > 0);
        assert!(without.trainable_layer_count() < with.trainable_layer_count());
        assert_eq!(without.name, "ResNet50-noBN");
    }

    #[test]
    fn no_residual_keeps_gradient_size() {
        let with = resnet(50);
        let without = resnet_with(
            50,
            ResNetOptions {
                batch_norm: true,
                residual: false,
            },
        );
        assert_eq!(without.count_kind(LayerKind::Residual), 0);
        assert_eq!(without.param_count(), with.param_count());
        assert_eq!(
            without.trainable_layer_count(),
            with.trainable_layer_count()
        );
    }

    #[test]
    #[should_panic(expected = "unsupported VGG depth")]
    fn bad_vgg_depth_panics() {
        let _ = vgg(12);
    }

    #[test]
    #[should_panic(expected = "unsupported ResNet depth")]
    fn bad_resnet_depth_panics() {
        let _ = resnet(42);
    }
}
