//! The model zoo of the paper's Table II.
//!
//! Eight models: five "small" vision models (AlexNet, MobileNet-v2,
//! SqueezeNet, ShuffleNet, ResNet18), two "large" vision models (ResNet50,
//! VGG11) and BERT-large. Layer structures follow the published
//! architectures; total parameter counts are then normalized to the exact
//! "gradient size" column of Table II (see
//! [`Model::with_params_normalized_to`]) so the communication volumes the
//! profiler reproduces are the paper's.

use serde::{Deserialize, Serialize};

use crate::layer::Layer;
use crate::model::Model;
use crate::synth::{imagenet_input_bytes, resnet, vgg};

/// Size class used throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelClass {
    /// Table II "Small" vision models.
    SmallVision,
    /// Table II "Large" vision models.
    LargeVision,
    /// NLP (BERT-large).
    Nlp,
}

/// Table II gradient sizes (parameter counts) as published.
pub mod table2 {
    /// AlexNet gradient size.
    pub const ALEXNET: u64 = 9_630_000;
    /// MobileNet-v2 gradient size.
    pub const MOBILENET_V2: u64 = 3_400_000;
    /// SqueezeNet gradient size.
    pub const SQUEEZENET: u64 = 730_000;
    /// ShuffleNet gradient size.
    pub const SHUFFLENET: u64 = 1_800_000;
    /// ResNet18 gradient size.
    pub const RESNET18: u64 = 11_180_000;
    /// ResNet50 gradient size.
    pub const RESNET50: u64 = 23_590_000;
    /// VGG11 gradient size.
    pub const VGG11: u64 = 132_800_000;
    /// BERT-large gradient size.
    pub const BERT_LARGE: u64 = 345_000_000;
}

/// AlexNet (Table II: 9.63M gradients).
#[must_use]
pub fn alexnet() -> Model {
    let mut layers = vec![
        Layer::conv2d("conv1", 3, 224, 224, 64, 11, 4),
        Layer::activation("relu1", 64 * 56 * 56),
        Layer::pool("pool1", 64, 56, 56, 2),
        Layer::conv2d("conv2", 64, 28, 28, 192, 5, 1),
        Layer::activation("relu2", 192 * 28 * 28),
        Layer::pool("pool2", 192, 28, 28, 2),
        Layer::conv2d("conv3", 192, 14, 14, 384, 3, 1),
        Layer::activation("relu3", 384 * 14 * 14),
        Layer::conv2d("conv4", 384, 14, 14, 256, 3, 1),
        Layer::activation("relu4", 256 * 14 * 14),
        Layer::conv2d("conv5", 256, 14, 14, 256, 3, 1),
        Layer::activation("relu5", 256 * 14 * 14),
        Layer::pool("pool5", 256, 14, 14, 2),
    ];
    layers.push(Layer::linear("fc6", 256 * 7 * 7, 4096));
    layers.push(Layer::activation("relu6", 4096));
    layers.push(Layer::linear("fc7", 4096, 4096));
    layers.push(Layer::activation("relu7", 4096));
    layers.push(Layer::linear("fc8", 4096, 1000));
    Model::new("AlexNet", layers, imagenet_input_bytes()).with_params_normalized_to(table2::ALEXNET)
}

fn inverted_residual(
    layers: &mut Vec<Layer>,
    idx: usize,
    c_in: u64,
    c_out: u64,
    hw_in: u64,
    stride: u64,
    expand: u64,
) -> u64 {
    let hidden = c_in * expand;
    let hw_out = hw_in / stride;
    let p = format!("ir{idx}");
    if expand != 1 {
        layers.push(Layer::conv2d(
            format!("{p}.expand"),
            c_in,
            hw_in,
            hw_in,
            hidden,
            1,
            1,
        ));
        layers.push(Layer::batch_norm(format!("{p}.bn0"), hidden, hw_in, hw_in));
        layers.push(Layer::activation(
            format!("{p}.relu0"),
            hidden * hw_in * hw_in,
        ));
    }
    layers.push(Layer::conv2d_grouped(
        format!("{p}.dw"),
        hidden,
        hw_in,
        hw_in,
        hidden,
        3,
        stride,
        hidden,
    ));
    layers.push(Layer::batch_norm(
        format!("{p}.bn1"),
        hidden,
        hw_out,
        hw_out,
    ));
    layers.push(Layer::activation(
        format!("{p}.relu1"),
        hidden * hw_out * hw_out,
    ));
    layers.push(Layer::conv2d(
        format!("{p}.project"),
        hidden,
        hw_out,
        hw_out,
        c_out,
        1,
        1,
    ));
    layers.push(Layer::batch_norm(format!("{p}.bn2"), c_out, hw_out, hw_out));
    if stride == 1 && c_in == c_out {
        layers.push(Layer::residual(format!("{p}.add"), c_out * hw_out * hw_out));
    }
    hw_out
}

/// MobileNet-v2 (Table II: 3.4M gradients).
#[must_use]
pub fn mobilenet_v2() -> Model {
    let mut layers = vec![
        Layer::conv2d("conv1", 3, 224, 224, 32, 3, 2),
        Layer::batch_norm("bn1", 32, 112, 112),
        Layer::activation("relu1", 32 * 112 * 112),
    ];
    // (expansion t, channels c, repeats n, stride s) per the paper.
    let cfg: [(u64, u64, usize, u64); 7] = [
        (1, 16, 1, 1),
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ];
    let mut c_in = 32_u64;
    let mut hw = 112_u64;
    let mut idx = 0;
    for (t, c, n, s) in cfg {
        for rep in 0..n {
            let stride = if rep == 0 { s } else { 1 };
            hw = inverted_residual(&mut layers, idx, c_in, c, hw, stride, t);
            c_in = c;
            idx += 1;
        }
    }
    layers.push(Layer::conv2d("conv_last", c_in, hw, hw, 1280, 1, 1));
    layers.push(Layer::batch_norm("bn_last", 1280, hw, hw));
    layers.push(Layer::activation("relu_last", 1280 * hw * hw));
    layers.push(Layer::pool("avgpool", 1280, hw, hw, hw));
    layers.push(Layer::linear("fc", 1280, 1000));
    Model::new("MobileNet-v2", layers, imagenet_input_bytes())
        .with_params_normalized_to(table2::MOBILENET_V2)
}

fn fire(layers: &mut Vec<Layer>, idx: usize, c_in: u64, hw: u64, s1: u64, e1: u64, e3: u64) -> u64 {
    let p = format!("fire{idx}");
    layers.push(Layer::conv2d(
        format!("{p}.squeeze"),
        c_in,
        hw,
        hw,
        s1,
        1,
        1,
    ));
    layers.push(Layer::activation(format!("{p}.relu_s"), s1 * hw * hw));
    layers.push(Layer::conv2d(format!("{p}.expand1"), s1, hw, hw, e1, 1, 1));
    layers.push(Layer::conv2d(format!("{p}.expand3"), s1, hw, hw, e3, 3, 1));
    layers.push(Layer::activation(
        format!("{p}.relu_e"),
        (e1 + e3) * hw * hw,
    ));
    e1 + e3
}

/// SqueezeNet (Table II: 0.73M gradients).
#[must_use]
pub fn squeezenet() -> Model {
    let mut layers = vec![
        Layer::conv2d("conv1", 3, 224, 224, 96, 7, 2),
        Layer::activation("relu1", 96 * 112 * 112),
        Layer::pool("pool1", 96, 112, 112, 2),
    ];
    let mut c = 96_u64;
    let mut hw = 56_u64;
    let cfg: [(u64, u64, u64); 8] = [
        (16, 64, 64),
        (16, 64, 64),
        (32, 128, 128),
        (32, 128, 128),
        (48, 192, 192),
        (48, 192, 192),
        (64, 256, 256),
        (64, 256, 256),
    ];
    for (i, (s1, e1, e3)) in cfg.into_iter().enumerate() {
        c = fire(&mut layers, i + 2, c, hw, s1, e1, e3);
        if i == 2 || i == 6 {
            layers.push(Layer::pool(format!("pool{}", i + 2), c, hw, hw, 2));
            hw /= 2;
        }
    }
    layers.push(Layer::conv2d("conv10", c, hw, hw, 1000, 1, 1));
    layers.push(Layer::pool("avgpool", 1000, hw, hw, hw));
    Model::new("SqueezeNet", layers, imagenet_input_bytes())
        .with_params_normalized_to(table2::SQUEEZENET)
}

fn shuffle_unit(layers: &mut Vec<Layer>, idx: usize, c: u64, hw_in: u64, stride: u64) -> u64 {
    let p = format!("su{idx}");
    let hw_out = hw_in / stride;
    let branch = c / 2;
    layers.push(Layer::conv2d(
        format!("{p}.pw1"),
        branch,
        hw_in,
        hw_in,
        branch,
        1,
        1,
    ));
    layers.push(Layer::batch_norm(format!("{p}.bn1"), branch, hw_in, hw_in));
    layers.push(Layer::activation(
        format!("{p}.relu1"),
        branch * hw_in * hw_in,
    ));
    layers.push(Layer::conv2d_grouped(
        format!("{p}.dw"),
        branch,
        hw_in,
        hw_in,
        branch,
        3,
        stride,
        branch,
    ));
    layers.push(Layer::batch_norm(
        format!("{p}.bn2"),
        branch,
        hw_out,
        hw_out,
    ));
    layers.push(Layer::conv2d(
        format!("{p}.pw2"),
        branch,
        hw_out,
        hw_out,
        branch,
        1,
        1,
    ));
    layers.push(Layer::batch_norm(
        format!("{p}.bn3"),
        branch,
        hw_out,
        hw_out,
    ));
    layers.push(Layer::activation(
        format!("{p}.relu2"),
        branch * hw_out * hw_out,
    ));
    // Channel split at entry and concat + channel-shuffle at exit: cheap
    // but real kernels that dominate ShuffleNet's runtime on fast GPUs.
    layers.push(Layer::activation(format!("{p}.split"), c * hw_in * hw_in));
    layers.push(Layer::activation(
        format!("{p}.shuffle"),
        c * hw_out * hw_out,
    ));
    hw_out
}

/// ShuffleNet-v2 (Table II: 1.8M gradients).
#[must_use]
pub fn shufflenet() -> Model {
    let mut layers = vec![
        Layer::conv2d("conv1", 3, 224, 224, 24, 3, 2),
        Layer::batch_norm("bn1", 24, 112, 112),
        Layer::activation("relu1", 24 * 112 * 112),
        Layer::pool("maxpool", 24, 112, 112, 2),
    ];
    let mut hw = 56_u64;
    let mut idx = 0;
    for (c, n) in [(116_u64, 4_usize), (232, 8), (464, 4)] {
        for rep in 0..n {
            let stride = if rep == 0 { 2 } else { 1 };
            hw = shuffle_unit(&mut layers, idx, c, hw, stride);
            idx += 1;
        }
    }
    layers.push(Layer::conv2d("conv5", 464, hw, hw, 1024, 1, 1));
    layers.push(Layer::batch_norm("bn5", 1024, hw, hw));
    layers.push(Layer::activation("relu5", 1024 * hw * hw));
    layers.push(Layer::pool("avgpool", 1024, hw, hw, hw));
    layers.push(Layer::linear("fc", 1024, 1000));
    Model::new("ShuffleNet", layers, imagenet_input_bytes())
        .with_params_normalized_to(table2::SHUFFLENET)
}

/// ResNet18 (Table II: 11.18M gradients).
#[must_use]
pub fn resnet18() -> Model {
    let mut m = resnet(18).with_params_normalized_to(table2::RESNET18);
    m.name = "ResNet18".into();
    m
}

/// ResNet50 (Table II: 23.59M gradients).
#[must_use]
pub fn resnet50() -> Model {
    let mut m = resnet(50).with_params_normalized_to(table2::RESNET50);
    m.name = "ResNet50".into();
    m
}

/// VGG11 (Table II: 132.8M gradients).
#[must_use]
pub fn vgg11() -> Model {
    let mut m = vgg(11).with_params_normalized_to(table2::VGG11);
    m.name = "VGG11".into();
    m
}

/// BERT-large on SQuAD (Table II: 345M gradients; sequence length 384).
#[must_use]
pub fn bert_large() -> Model {
    let seq = 384_u64;
    let hidden = 1024_u64;
    let mut layers = vec![
        Layer::embedding("tok_emb", 30522, hidden, seq),
        Layer::embedding("pos_emb", 512, hidden, seq),
        Layer::embedding("seg_emb", 2, hidden, seq),
        Layer::layer_norm("emb_ln", seq, hidden),
    ];
    for i in 0..24 {
        layers.push(Layer::attention(
            format!("encoder{i}"),
            hidden,
            4096,
            16,
            seq,
        ));
    }
    layers.push(Layer::linear("qa_outputs", hidden, 2));
    // Decoded sample: 384 token ids + mask + segment ids, int32.
    let input_bytes = (seq * 3 * 4) as f64;
    Model::new("BERT-large", layers, input_bytes).with_params_normalized_to(table2::BERT_LARGE)
}

/// DLRM-style recommendation model (NOT part of Table II): embedding
/// tables dominate its footprint. The paper excludes it because "cheaper
/// VMs from the public cloud are infeasible for them" — such models "may
/// best be run on large dedicated instances such as the AWS P4" (§IV-A).
/// This builder exists to reproduce exactly that infeasibility.
#[must_use]
pub fn dlrm() -> Model {
    let emb_dim = 128_u64;
    let mut layers = Vec::new();
    // 26 categorical features (Criteo-style): several large hashed tables
    // plus a tail of small ones.
    let mut table_rows = vec![4_000_000_u64; 4];
    table_rows.extend([2_000_000; 4]);
    table_rows.extend([1_000_000; 6]);
    table_rows.extend([250_000; 6]);
    table_rows.extend([50_000; 6]);
    for (i, rows) in table_rows.into_iter().enumerate() {
        layers.push(Layer::embedding(format!("emb{i}"), rows, emb_dim, 26));
    }
    // Bottom MLP over 13 dense features, top MLP over feature interactions.
    for (i, (a, b)) in [(13, 512), (512, 256), (256, emb_dim)]
        .into_iter()
        .enumerate()
    {
        layers.push(Layer::linear(format!("bot{i}"), a, b));
        layers.push(Layer::activation(format!("bot{i}.relu"), b));
    }
    for (i, (a, b)) in [(479_u64, 1024_u64), (1024, 1024), (1024, 512), (512, 1)]
        .into_iter()
        .enumerate()
    {
        layers.push(Layer::linear(format!("top{i}"), a, b));
        layers.push(Layer::activation(format!("top{i}.relu"), b));
    }
    // One training sample: 13 dense fp32 + 26 categorical ids.
    Model::new("DLRM", layers, (13 * 4 + 26 * 4) as f64).with_params_normalized_to(4_000_000_000)
}

/// All eight Table II models with their size class, in the paper's order.
#[must_use]
pub fn all_models() -> Vec<(Model, ModelClass)> {
    vec![
        (alexnet(), ModelClass::SmallVision),
        (mobilenet_v2(), ModelClass::SmallVision),
        (squeezenet(), ModelClass::SmallVision),
        (shufflenet(), ModelClass::SmallVision),
        (resnet18(), ModelClass::SmallVision),
        (resnet50(), ModelClass::LargeVision),
        (vgg11(), ModelClass::LargeVision),
        (bert_large(), ModelClass::Nlp),
    ]
}

/// The five small vision models.
#[must_use]
pub fn small_models() -> Vec<Model> {
    all_models()
        .into_iter()
        .filter(|(_, c)| *c == ModelClass::SmallVision)
        .map(|(m, _)| m)
        .collect()
}

/// The two large vision models.
#[must_use]
pub fn large_vision_models() -> Vec<Model> {
    all_models()
        .into_iter()
        .filter(|(_, c)| *c == ModelClass::LargeVision)
        .map(|(m, _)| m)
        .collect()
}

/// Finds a zoo model by (case-insensitive) name.
#[must_use]
pub fn by_name(name: &str) -> Option<Model> {
    all_models()
        .into_iter()
        .map(|(m, _)| m)
        .find(|m| m.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    #[test]
    fn gradient_sizes_match_table2_exactly() {
        assert_eq!(alexnet().param_count(), table2::ALEXNET);
        assert_eq!(mobilenet_v2().param_count(), table2::MOBILENET_V2);
        assert_eq!(squeezenet().param_count(), table2::SQUEEZENET);
        assert_eq!(shufflenet().param_count(), table2::SHUFFLENET);
        assert_eq!(resnet18().param_count(), table2::RESNET18);
        assert_eq!(resnet50().param_count(), table2::RESNET50);
        assert_eq!(vgg11().param_count(), table2::VGG11);
        assert_eq!(bert_large().param_count(), table2::BERT_LARGE);
    }

    #[test]
    fn zoo_has_eight_models() {
        assert_eq!(all_models().len(), 8);
        assert_eq!(small_models().len(), 5);
        assert_eq!(large_vision_models().len(), 2);
    }

    #[test]
    fn vgg_vs_resnet_shape_for_section6() {
        // VGG11: few trainable layers, huge gradients. ResNet18: many
        // trainable layers, small gradients. This asymmetry is the crux of
        // the paper's §VI analysis.
        let v = vgg11();
        let r = resnet18();
        assert!(v.param_count() > 10 * r.param_count());
        assert!(r.trainable_layer_count() > 2 * v.trainable_layer_count());
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert!(by_name("resnet18").is_some());
        assert!(by_name("BERT-LARGE").is_some());
        assert!(by_name("gpt4").is_none());
    }

    #[test]
    fn bert_is_the_biggest_model() {
        let max = all_models()
            .iter()
            .max_by_key(|(m, _)| m.param_count())
            .map(|(m, _)| m.name.clone())
            .unwrap();
        assert_eq!(max, "BERT-large");
    }

    #[test]
    fn vision_models_share_input_size() {
        for m in small_models() {
            assert_eq!(m.input_sample_bytes, 3.0 * 224.0 * 224.0 * 4.0);
        }
    }

    #[test]
    fn dlrm_is_embedding_dominated_and_huge() {
        let m = dlrm();
        assert_eq!(m.param_count(), 4_000_000_000);
        let emb_params: u64 = m
            .layers
            .iter()
            .filter(|l| l.kind == crate::layer::LayerKind::Embedding)
            .map(|l| l.params)
            .sum();
        assert!(emb_params as f64 / m.param_count() as f64 > 0.95);
        // Not part of the Table II sweep.
        assert!(by_name("dlrm").is_none());
    }

    #[test]
    fn shufflenet_is_tiny_in_flops() {
        // §V-C: ShuffleNet cannot exploit a V100 — it is far lighter than
        // ResNet18 in compute.
        assert!(shufflenet().flops_fwd() < resnet18().flops_fwd() / 5.0);
    }
}
