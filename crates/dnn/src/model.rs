//! Whole-model descriptions.
//!
//! A [`Model`] is an ordered list of [`Layer`]s plus input metadata. Order
//! matters: the backward pass walks the list in reverse, releasing each
//! layer's gradients for synchronisation as it goes (this drives the
//! compute/communication overlap the paper's §VI analysis depends on).

use serde::{Deserialize, Serialize};

use crate::layer::{Layer, LayerKind};

/// A DNN reduced to its cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Model {
    /// Display name, e.g. `"ResNet18"`.
    pub name: String,
    /// Layers in forward order.
    pub layers: Vec<Layer>,
    /// Bytes of one decoded input sample as uploaded to the GPU.
    pub input_sample_bytes: f64,
}

impl Model {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>, layers: Vec<Layer>, input_sample_bytes: f64) -> Model {
        assert!(!layers.is_empty(), "a model needs at least one layer");
        Model {
            name: name.into(),
            layers,
            input_sample_bytes,
        }
    }

    /// Total trainable parameters (the paper's "gradient size", Table II).
    #[must_use]
    pub fn param_count(&self) -> u64 {
        self.layers.iter().map(|l| l.params).sum()
    }

    /// Total gradient bytes exchanged per synchronisation (fp32).
    #[must_use]
    pub fn gradient_bytes(&self) -> f64 {
        self.param_count() as f64 * 4.0
    }

    /// Number of layers in the PyTorch sense (all module layers).
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Number of layers carrying parameters — i.e. the number of gradient
    /// buckets under per-layer bucketing.
    #[must_use]
    pub fn trainable_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| l.has_params()).count()
    }

    /// Total per-sample forward FLOPs.
    #[must_use]
    pub fn flops_fwd(&self) -> f64 {
        self.layers.iter().map(|l| l.flops_fwd).sum()
    }

    /// Total per-sample activation bytes kept alive for backward.
    #[must_use]
    pub fn activation_bytes(&self) -> f64 {
        self.layers.iter().map(|l| l.activation_bytes).sum()
    }

    /// Number of layers of a given kind.
    #[must_use]
    pub fn count_kind(&self, kind: LayerKind) -> usize {
        self.layers.iter().filter(|l| l.kind == kind).count()
    }

    /// Scales every layer's parameter count by `target / current` so the
    /// total matches a published figure (used to pin the zoo to the exact
    /// "gradient size" column of the paper's Table II while keeping the
    /// layer structure architectural). FLOPs and activations are left
    /// untouched.
    ///
    /// # Panics
    ///
    /// Panics if the model currently has zero parameters.
    #[must_use]
    pub fn with_params_normalized_to(mut self, target_params: u64) -> Model {
        let current = self.param_count();
        assert!(current > 0, "cannot normalize a parameterless model");
        let k = target_params as f64 / current as f64;
        for l in &mut self.layers {
            l.params = (l.params as f64 * k).round() as u64;
        }
        // Fix rounding drift on the largest layer so the total is exact.
        let drift = target_params as i64 - self.param_count() as i64;
        if drift != 0 {
            let Some(largest) = self
                .layers
                .iter_mut()
                .filter(|l| l.params > 0)
                .max_by_key(|l| l.params)
            else {
                unreachable!("non-zero drift implies a layer with parameters")
            };
            largest.params = (largest.params as i64 + drift).max(1) as u64;
        }
        self
    }

    /// Returns a copy with all layers of `kind` removed (the §VI "remove
    /// batch norm" / "remove residual" ablations).
    ///
    /// # Panics
    ///
    /// Panics if removal would leave the model empty.
    #[must_use]
    pub fn without_kind(&self, kind: LayerKind) -> Model {
        let layers: Vec<Layer> = self
            .layers
            .iter()
            .filter(|l| l.kind != kind)
            .cloned()
            .collect();
        assert!(!layers.is_empty(), "removal emptied the model");
        Model {
            name: format!("{}-no{}", self.name, kind_suffix(kind)),
            layers,
            input_sample_bytes: self.input_sample_bytes,
        }
    }
}

fn kind_suffix(kind: LayerKind) -> &'static str {
    match kind {
        LayerKind::BatchNorm => "BN",
        LayerKind::Residual => "Skip",
        LayerKind::Conv2d => "Conv",
        LayerKind::Linear => "FC",
        LayerKind::LayerNorm => "LN",
        LayerKind::Activation => "Act",
        LayerKind::Pool => "Pool",
        LayerKind::Embedding => "Emb",
        LayerKind::Attention => "Attn",
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;

    fn toy() -> Model {
        Model::new(
            "toy",
            vec![
                Layer::conv2d("c1", 3, 32, 32, 16, 3, 1),
                Layer::batch_norm("bn1", 16, 32, 32),
                Layer::activation("relu1", 16 * 32 * 32),
                Layer::residual("skip", 16 * 32 * 32),
                Layer::linear("fc", 16 * 32 * 32, 10),
            ],
            3.0 * 32.0 * 32.0 * 4.0,
        )
    }

    #[test]
    fn aggregates_sum_layers() {
        let m = toy();
        assert_eq!(m.layer_count(), 5);
        assert_eq!(m.trainable_layer_count(), 3); // conv, bn, fc
        assert_eq!(
            m.param_count(),
            3 * 16 * 9 + 2 * 16 + (16 * 32 * 32 * 10 + 10)
        );
        assert!(m.flops_fwd() > 0.0);
        assert!(m.activation_bytes() > 0.0);
    }

    #[test]
    fn normalization_hits_target_exactly() {
        let m = toy().with_params_normalized_to(1_000_000);
        assert_eq!(m.param_count(), 1_000_000);
        // Structure preserved.
        assert_eq!(m.layer_count(), 5);
        assert_eq!(m.trainable_layer_count(), 3);
    }

    #[test]
    fn without_kind_strips_layers() {
        let m = toy();
        let no_bn = m.without_kind(LayerKind::BatchNorm);
        assert_eq!(no_bn.count_kind(LayerKind::BatchNorm), 0);
        assert_eq!(no_bn.layer_count(), 4);
        assert!(no_bn.param_count() < m.param_count());
        assert_eq!(no_bn.name, "toy-noBN");
        let no_skip = m.without_kind(LayerKind::Residual);
        // Residuals have no params: same gradient size, fewer layers.
        assert_eq!(no_skip.param_count(), m.param_count());
        assert_eq!(no_skip.layer_count(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_model_rejected() {
        let _ = Model::new("empty", vec![], 0.0);
    }

    #[test]
    fn gradient_bytes_are_fp32() {
        let m = toy();
        assert_eq!(m.gradient_bytes(), m.param_count() as f64 * 4.0);
    }
}
